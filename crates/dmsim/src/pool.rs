//! The persistent worker-pool SPMD engine: long-lived workers driven by
//! broadcast phase descriptors through a two-phase epoch barrier.
//!
//! [`ThreadedBackend`](crate::backend::ThreadedBackend) spawns one scoped OS
//! thread per rank per phase — tens of microseconds each, which dominates
//! small and medium phases now that the compute inside them is cheap
//! (CSR schedules, compiled kernels). [`PooledBackend`] removes that cost
//! structurally:
//!
//! * **Workers are created once** (at pool construction) and live until the
//!   backend is dropped. The driver thread itself doubles as the last lane,
//!   so a pool of `w` workers spawns only `w - 1` OS threads — and a
//!   single-worker pool runs everything inline with no synchronization at
//!   all.
//! * **Phases are broadcast, not spawned.** Each `run_*` call publishes one
//!   type-erased phase descriptor (a borrowed closure, made to outlive the
//!   call through the pool's epoch protocol) and releases the workers by
//!   bumping an epoch counter — the monotonic generalization of a
//!   sense-reversing barrier flag: a worker's "sense" is the last epoch it
//!   completed, and the release test is simply `epoch != seen`.
//! * **The barrier has two phases.** Release: workers spin briefly on the
//!   epoch, then park on a condvar (spin-then-park keeps back-to-back
//!   phases off the scheduler while letting an idle pool consume no CPU).
//!   Completion: each worker arrives at an atomic counter; the last arrival
//!   wakes the (also spin-then-park) driver. Only after the completion
//!   barrier does the driver touch the descriptor slot again, which is what
//!   makes lending the borrowed closure to the workers sound.
//! * **Ranks are striped statically.** Rank `r` always runs on lane
//!   `r % workers`, so more ranks than workers fold onto the pool without
//!   rebalancing, and a rank's charges always land in the same lane-local
//!   arena.
//! * **Scratch is per-worker and reusable.** Each lane owns a
//!   `ChargeArena` — a small CSR log (flat event vector + one offset per
//!   processed rank) cleared, not freed, every phase. Steady state records
//!   and replays charges with zero allocation.
//!
//! Determinism is inherited from the [`Backend`](crate::backend) contract
//! unchanged: kernels write only rank-disjoint state, charge only through
//! their [`RankCtx`], and the recorded events are replayed against the
//! machine **in ascending rank order** after the barrier — the exact
//! sequence the sequential [`Machine`] oracle performs, so clocks,
//! statistics and values are bit-identical by construction, for any worker
//! count, on any core count.

use crate::backend::{
    close_phase, metrics_phase_kind, metrics_replay_end, metrics_span_begin, replay_events,
    trace_replay_begin, trace_replay_end, Backend, ChargeEvent, Inbox, Outbox, PhaseEnd, RankCtx,
    FUSED_SWEEP_LABEL,
};
use crate::config::MachineConfig;
use crate::fault::{self, CaughtPanic, PanicBundle, PhaseError};
use crate::machine::{Machine, PhaseCharge};
use crate::metrics::{Counter, EngineKind, SpanKind};
use crate::trace::TraceEventKind;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long each side of the barrier spins before parking on its condvar.
/// Back-to-back phases (the executor's steady state) stay in the spin
/// window; an idle pool parks and costs nothing.
const SPIN_ROUNDS: u32 = 1 << 14;

/// How long [`WorkerPool`]'s `Drop` waits for the lanes to exit before
/// detaching them (see [`WorkerPool::shutdown_with_deadline`]).
const DEFAULT_SHUTDOWN_DEADLINE: Duration = Duration::from_secs(5);

/// What the driver learned when a completion-barrier deadline passed: which
/// lane had not arrived, how long it had waited, and how many ranks each
/// lane had completed by then.
struct StragglerReport {
    lane: usize,
    waited: Duration,
    progress: Vec<u64>,
}

/// A type-erased phase descriptor: the closure every lane runs once per
/// phase, handed its lane index and whether the lane had to park (fall off
/// the spin window onto the condvar) while waiting for this release — the
/// flight recorder turns that flag into a `WorkerRelease` annotation. The
/// `'static` in the pointee type is a lie the pool is structured to keep
/// harmless — the driver never returns from [`WorkerPool::run`] until every
/// worker has passed the completion barrier, so the borrow the pointer was
/// created from is still live whenever a worker dereferences it.
type Job = *const (dyn Fn(usize, bool) + Sync);

/// State shared between the driver and the spawned workers.
struct PoolShared {
    /// Phase counter, bumped (Release) by the driver to publish a phase.
    epoch: AtomicU64,
    /// The current phase descriptor. Written by the driver strictly before
    /// the epoch bump, cleared strictly after the completion barrier; in
    /// between, read-only.
    job: UnsafeCell<Option<Job>>,
    /// Completion barrier: how many workers have finished the current phase.
    arrived: AtomicUsize,
    /// Set (before a final epoch bump) to make the workers exit.
    shutdown: AtomicBool,
    /// Park support for workers waiting on a new epoch.
    wake_lock: Mutex<()>,
    wake_cv: Condvar,
    /// Park support for the driver waiting on the completion barrier.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// Backstop: every panic payload that escaped a lane's phase closure,
    /// with the lane it was caught on and the pool epoch it happened in.
    panics: Mutex<Vec<CaughtPanic>>,
    /// Ranks completed per lane during the current phase (the straggler
    /// diagnostic). Reset by the driver while the pool is quiescent.
    progress: Vec<AtomicU64>,
    /// Per-lane completion flags for the current phase, so a blown barrier
    /// deadline can name the lane that has not arrived. Driver lane included
    /// (set by the driver itself).
    lane_done: Vec<AtomicBool>,
    /// Number of spawned workers (lanes excluding the driver's).
    spawned: usize,
}

// Safety: `job` is the only non-Sync field. It is written by the driver only
// while every worker is quiescent (before the epoch release / after the
// completion barrier) and read by workers only between those two points.
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

impl PoolShared {
    /// Release side of the barrier: wait until the epoch moves past `seen`.
    /// The second return is `true` when the wait fell out of the spin window
    /// and parked on the condvar (the flight recorder's park-vs-spin signal).
    fn wait_for_epoch(&self, seen: u64) -> (u64, bool) {
        for _ in 0..SPIN_ROUNDS {
            let e = self.epoch.load(Ordering::Acquire);
            if e != seen {
                return (e, false);
            }
            std::hint::spin_loop();
        }
        let mut guard = self.wake_lock.lock().unwrap();
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e != seen {
                return (e, true);
            }
            guard = self.wake_cv.wait(guard).unwrap();
        }
    }

    /// Completion side, worker half: arrive, waking the driver on last.
    fn arrive(&self, lane: usize) {
        self.lane_done[lane].store(true, Ordering::Release);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.spawned {
            let _guard = self.done_lock.lock().unwrap();
            self.done_cv.notify_one();
        }
    }

    /// Completion side, driver half: wait for every worker to arrive.
    ///
    /// With a `deadline`, a worker that has not arrived by then is reported
    /// as a straggler (with the per-lane progress counters at that moment)
    /// — but the driver still waits out the real arrival, because the
    /// workers hold borrowed pointers into the driver's stack; surfacing
    /// the hang must not make lending the phase descriptor unsound.
    fn wait_for_workers(&self, deadline: Option<Duration>) -> Option<StragglerReport> {
        for _ in 0..SPIN_ROUNDS {
            if self.arrived.load(Ordering::Acquire) == self.spawned {
                return None;
            }
            std::hint::spin_loop();
        }
        let start = Instant::now();
        let mut report = None;
        let mut guard = self.done_lock.lock().unwrap();
        while self.arrived.load(Ordering::Acquire) != self.spawned {
            match deadline {
                Some(d) if report.is_none() => {
                    let remaining = d.saturating_sub(start.elapsed());
                    if remaining.is_zero() {
                        let progress: Vec<u64> = self
                            .progress
                            .iter()
                            .map(|p| p.load(Ordering::Acquire))
                            .collect();
                        let lane = self
                            .lane_done
                            .iter()
                            .take(self.spawned)
                            .position(|done| !done.load(Ordering::Acquire))
                            .unwrap_or(0);
                        report = Some(StragglerReport {
                            lane,
                            waited: start.elapsed(),
                            progress,
                        });
                        continue;
                    }
                    guard = self.done_cv.wait_timeout(guard, remaining).unwrap().0;
                }
                _ => guard = self.done_cv.wait(guard).unwrap(),
            }
        }
        report
    }
}

/// Long-lived worker loop: wait for a phase, run the lane's share, arrive.
fn worker_main(shared: Arc<PoolShared>, lane: usize) {
    let mut seen = 0u64;
    loop {
        let (epoch, parked) = shared.wait_for_epoch(seen);
        seen = epoch;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Safety: the driver published the descriptor before this epoch and
        // keeps the underlying closure alive until after `arrive`.
        let job = unsafe { (*shared.job.get()).expect("pool epoch bumped with no job") };
        let job = unsafe { &*job };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(lane, parked))) {
            // Backstop for panics that escape the phase closure's own
            // per-rank catch: keep *every* payload, tagged with its lane and
            // pool epoch, so multi-lane failures lose nothing.
            shared.panics.lock().unwrap().push(CaughtPanic {
                epoch: seen,
                rank: None,
                lane: Some(lane),
                payload,
            });
        }
        shared.arrive(lane);
    }
}

/// The pool of long-lived workers. One lane per worker; the driver thread
/// executes the last lane itself during every phase.
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl WorkerPool {
    /// Spawn `lanes - 1` workers (the driver is the final lane).
    fn new(lanes: usize) -> Self {
        assert!(lanes >= 1, "a pool needs at least one lane");
        let spawned = lanes - 1;
        let shared = Arc::new(PoolShared {
            epoch: AtomicU64::new(0),
            job: UnsafeCell::new(None),
            arrived: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            wake_lock: Mutex::new(()),
            wake_cv: Condvar::new(),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            panics: Mutex::new(Vec::new()),
            progress: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            lane_done: (0..lanes).map(|_| AtomicBool::new(false)).collect(),
            spawned,
        });
        let handles = (0..spawned)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("chaos-pool-{lane}"))
                    .spawn(move || worker_main(shared, lane))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            lanes,
        }
    }

    /// Run `job(lane)` once per lane — spawned workers take lanes
    /// `0..lanes-1`, the driver takes the last — returning only after every
    /// lane has finished. Worker panics are re-raised here, after the
    /// barrier, so the borrowed descriptor is never outlived; when several
    /// lanes panicked, *all* their payloads are re-raised together as one
    /// [`PanicBundle`]. A blown `deadline` on the completion barrier is
    /// returned as a straggler report (the phase still completes).
    fn run(
        &self,
        job: &(dyn Fn(usize, bool) + Sync),
        deadline: Option<Duration>,
    ) -> Option<StragglerReport> {
        let shared = &*self.shared;
        let driver_lane = shared.spawned;
        if shared.spawned == 0 {
            // Single-lane pool: no synchronization, no catch — just run.
            job(driver_lane, false);
            return None;
        }
        // Reset the per-phase diagnostics while every worker is quiescent.
        for p in &shared.progress {
            p.store(0, Ordering::Relaxed);
        }
        for d in &shared.lane_done {
            d.store(false, Ordering::Relaxed);
        }
        // Publish, then release. Safety: every worker is quiescent between
        // phases (the previous completion barrier has passed), so the slot
        // is ours to write.
        unsafe {
            *shared.job.get() = Some(std::mem::transmute::<
                *const (dyn Fn(usize, bool) + Sync),
                Job,
            >(job));
        }
        shared.arrived.store(0, Ordering::Relaxed);
        shared.epoch.fetch_add(1, Ordering::Release);
        drop(shared.wake_lock.lock().unwrap());
        shared.wake_cv.notify_all();
        // The driver is a lane too: run its stripe while the workers run
        // theirs (never parked — it released this epoch itself). A panic
        // here must still wait out the barrier (the workers hold pointers
        // into the driver's stack), hence the catch.
        let mine = catch_unwind(AssertUnwindSafe(|| job(driver_lane, false)));
        shared.lane_done[driver_lane].store(true, Ordering::Release);
        let straggler = shared.wait_for_workers(deadline);
        // Safety: completion barrier passed; the slot is quiescent again.
        unsafe {
            *shared.job.get() = None;
        }
        let mut caught: Vec<CaughtPanic> = std::mem::take(&mut *shared.panics.lock().unwrap());
        match mine {
            Err(payload) if !caught.is_empty() => caught.push(CaughtPanic {
                epoch: shared.epoch.load(Ordering::Acquire),
                rank: None,
                lane: Some(driver_lane),
                payload,
            }),
            Err(payload) => resume_unwind(payload),
            Ok(()) => {}
        }
        if !caught.is_empty() {
            resume_unwind(Box::new(PanicBundle { panics: caught }));
        }
        straggler
    }

    /// Explicit bounded shutdown: wake every parked lane, then join each
    /// worker, polling up to `deadline` overall. A worker that still has
    /// not exited by then is detached rather than joined — safe because
    /// workers check the shutdown flag before dereferencing the job slot,
    /// and no phase is in flight when this runs (every `run` waits out its
    /// completion barrier). Returns `true` when every worker was joined.
    fn shutdown_with_deadline(&mut self, deadline: Duration) -> bool {
        if self.handles.is_empty() {
            return true;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        drop(self.shared.wake_lock.lock().unwrap());
        self.shared.wake_cv.notify_all();
        let start = Instant::now();
        let mut all_joined = true;
        for handle in self.handles.drain(..) {
            while !handle.is_finished() && start.elapsed() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                // Detach: the worker holds only an Arc of the shared state.
                all_joined = false;
            }
        }
        all_joined
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_with_deadline(DEFAULT_SHUTDOWN_DEADLINE);
    }
}

/// One lane's reusable charge scratch: every event the lane's ranks recorded
/// this phase, stored contiguously, with one start offset per processed rank
/// (CSR-style; a trailing sentinel closes the last span). Cleared — never
/// freed — each phase, so steady-state phases record without allocating.
///
/// The fused sweep generalizes the layout to multiple *stages* per phase:
/// stage `s`'s span for the lane's `i`-th stripe rank is span
/// `s * stripe_len + i`, with inactive stages contributing empty spans so
/// the indexing stays uniform.
#[derive(Debug, Default)]
struct ChargeArena {
    events: Vec<ChargeEvent>,
    starts: Vec<u32>,
}

/// A reusable sense-reversing spin barrier for the lanes *inside* one pool
/// job — the fused sweep uses it to separate the compute stage (lanes write
/// their own ranks' posted areas) from the combine stages (lanes read
/// everyone's). Spins briefly then yields, so a stalled peer degrades to
/// timesharing instead of burning a core.
struct StageBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    parties: usize,
}

impl StageBarrier {
    fn new(parties: usize) -> Self {
        StageBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            parties,
        }
    }

    /// Arrive and wait for all parties. The last arrival resets the counter
    /// (visible before the generation bump releases the waiters), so the
    /// barrier is immediately reusable.
    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut rounds = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                rounds = rounds.saturating_add(1);
                if rounds < SPIN_ROUNDS {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A `&mut [T]` smuggled to the pool's lanes as disjointly-indexed cells.
///
/// Safety contract: during one phase, each index is touched by at most one
/// lane (the rank → lane striping is a partition), and the driver does not
/// touch the slice until the phase's completion barrier has passed.
struct RawCells<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for RawCells<T> {}
unsafe impl<T: Send> Sync for RawCells<T> {}

impl<T> RawCells<T> {
    fn new(slice: &mut [T]) -> Self {
        RawCells {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Safety: `i < len`, and no other lane touches index `i` this phase.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }

    /// A shared view of the whole slice. Safety: no lane holds a `&mut`
    /// into the slice for as long as the view is read — in the fused sweep
    /// the stage barrier separates the mutating compute stage from the
    /// read-only combine stages.
    unsafe fn as_slice(&self) -> &[T] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }
}

/// The persistent-pool engine: like
/// [`ThreadedBackend`](crate::backend::ThreadedBackend) but with long-lived
/// workers, a broadcast-descriptor phase protocol, per-worker reusable
/// charge arenas and static rank → worker striping (see the module docs).
/// Byte-identical to the sequential [`Machine`] engine by construction.
pub struct PooledBackend {
    machine: Machine,
    pool: WorkerPool,
    arenas: Vec<ChargeArena>,
    /// Completion-barrier deadline; `None` disables straggler detection.
    deadline: Option<Duration>,
    /// Straggler detected during the last completed region, surfaced
    /// through [`Backend::take_phase_flaw`].
    pending_flaw: Option<PhaseError>,
    /// Degraded mode: run every region inline on the sequential oracle path
    /// (see [`Backend::degrade`]).
    inline: bool,
}

impl std::fmt::Debug for PooledBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBackend")
            .field("machine", &self.machine)
            .field("workers", &self.pool.lanes)
            .finish()
    }
}

impl PooledBackend {
    /// Wrap a machine in a pool sized to `min(nprocs, available cores)`
    /// workers (one of which is the driver thread itself).
    pub fn new(machine: Machine) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let lanes = machine.nprocs().min(cores).max(1);
        Self::with_workers(machine, lanes)
    }

    /// Wrap a machine in a pool of exactly `workers` lanes. The driver
    /// thread doubles as the last lane, so `workers - 1` OS threads are
    /// spawned; `workers` may exceed both the rank count and the hardware
    /// core count (results never depend on it).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_workers(machine: Machine, workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        let arenas = (0..workers).map(|_| ChargeArena::default()).collect();
        PooledBackend {
            machine,
            pool: WorkerPool::new(workers),
            arenas,
            deadline: None,
            pending_flaw: None,
            inline: false,
        }
    }

    /// Enable straggler detection: a worker lane that has not reached the
    /// completion barrier within `deadline` (measured after the spin window)
    /// is reported as a [`PhaseError::Straggler`] through
    /// [`Backend::take_phase_flaw`] / the `try_run_*` methods. The phase
    /// itself still completes — the driver waits out the real arrival so
    /// the borrowed phase descriptor stays sound.
    pub fn with_barrier_deadline(mut self, deadline: Duration) -> Self {
        self.set_barrier_deadline(deadline);
        self
    }

    /// In-place form of [`PooledBackend::with_barrier_deadline`].
    pub fn set_barrier_deadline(&mut self, deadline: Duration) {
        self.deadline = Some(deadline);
    }

    /// Build a pooled engine over a fresh machine with this configuration.
    pub fn from_config(cfg: MachineConfig) -> Self {
        Self::new(Machine::new(cfg))
    }

    /// [`PooledBackend::from_config`] with an explicit worker count.
    pub fn from_config_with_workers(cfg: MachineConfig, workers: usize) -> Self {
        Self::with_workers(Machine::new(cfg), workers)
    }

    /// Number of worker lanes (including the driver's).
    pub fn workers(&self) -> usize {
        self.pool.lanes
    }

    /// Unwrap the underlying machine (the pool's workers are joined).
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// Explicit bounded shutdown of the worker lanes (the satellite of
    /// [`PooledBackend::into_machine`] for callers that need to know the
    /// join succeeded): wakes every parked lane and joins each worker,
    /// waiting at most `deadline` overall; stuck workers are detached.
    /// Returns the machine and whether every worker was joined.
    pub fn shutdown(mut self, deadline: Duration) -> (Machine, bool) {
        let joined = self.pool.shutdown_with_deadline(deadline);
        (self.machine, joined)
    }

    /// Broadcast one phase over the pool: lane `w` runs ranks `w`,
    /// `w + workers`, `w + 2*workers`, … (static striping), recording each
    /// rank's charges as one span in the lane's arena.
    ///
    /// Rank panics (organic or injected) are caught per rank, aggregated,
    /// and re-raised as one [`PanicBundle`] naming every failing rank; in
    /// that case the arenas are never replayed, so the machine is untouched
    /// by the failed region. A blown barrier deadline is parked in
    /// `pending_flaw` as a [`PhaseError::Straggler`].
    fn fan_out_ranks<F>(&mut self, in_phase: bool, run_rank: F)
    where
        F: Fn(&mut RankCtx<'_>, usize) + Sync,
    {
        let nprocs = self.machine.nprocs();
        let lanes = self.pool.lanes;
        let epoch = self.machine.epoch();
        let plan = self.machine.fault_plan().cloned();
        let plan = plan.as_deref();
        let trace = self.machine.tracer().cloned();
        let trace = trace.as_deref();
        let metrics = self.machine.metrics().cloned();
        let metrics = metrics.as_deref();
        let kind = metrics_phase_kind(&self.machine);
        let caught: Mutex<Vec<CaughtPanic>> = Mutex::new(Vec::new());
        let progress = &self.pool.shared.progress;
        let arenas = RawCells::new(&mut self.arenas);
        let straggler = self.pool.run(
            &|lane: usize, parked: bool| {
                if let Some(t) = trace {
                    t.record(lane, TraceEventKind::WorkerRelease, parked as u32);
                }
                if let Some(m) = metrics {
                    m.incr(Some(lane), Counter::WorkerReleases, 1);
                    if parked {
                        m.incr(Some(lane), Counter::WorkerParks, 1);
                    }
                }
                // Safety: lane indices are distinct across the pool's lanes.
                let arena = unsafe { arenas.get_mut(lane) };
                arena.events.clear();
                arena.starts.clear();
                let kt0 = metrics.map(|_| Instant::now());
                let mut ran = 0u64;
                let mut rank = lane;
                while rank < nprocs {
                    arena.starts.push(arena.events.len() as u32);
                    if let Some(t) = trace {
                        t.record(lane, TraceEventKind::KernelEnter, rank as u32);
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        fault::fire_traced(plan, epoch, rank, trace, metrics, Some(lane));
                        let mut ctx = RankCtx::recording(rank, nprocs, &mut arena.events, in_phase);
                        run_rank(&mut ctx, rank);
                    }));
                    if let Some(t) = trace {
                        t.record(lane, TraceEventKind::KernelExit, rank as u32);
                    }
                    if let Err(payload) = result {
                        caught.lock().unwrap().push(CaughtPanic {
                            epoch,
                            rank: Some(rank),
                            lane: Some(lane),
                            payload,
                        });
                    }
                    progress[lane].fetch_add(1, Ordering::Release);
                    ran += 1;
                    rank += lanes;
                }
                arena.starts.push(arena.events.len() as u32);
                if let (Some(m), Some(t0)) = (metrics, kt0) {
                    m.incr(Some(lane), Counter::KernelRuns, ran);
                    m.record_span(
                        Some(lane),
                        EngineKind::Pooled,
                        SpanKind::Kernel,
                        kind,
                        t0.elapsed().as_nanos() as u64,
                    );
                }
                if let Some(t) = trace {
                    t.record(lane, TraceEventKind::BarrierArrive, lane as u32);
                }
                if let Some(m) = metrics {
                    m.incr(Some(lane), Counter::BarrierWaits, 1);
                }
            },
            self.deadline,
        );
        if let Some(report) = straggler {
            // The straggling lane was executing (or about to execute) the
            // rank its progress counter points at in its stripe.
            let done = report.progress[report.lane] as usize;
            let rank = (report.lane + done * lanes).min(nprocs.saturating_sub(1));
            self.pending_flaw = Some(PhaseError::Straggler {
                epoch,
                rank,
                lane: report.lane,
                waited: report.waited,
                progress: report.progress,
            });
        }
        let mut panics = caught.into_inner().unwrap();
        if !panics.is_empty() {
            panics.sort_by_key(|p| p.rank);
            resume_unwind(Box::new(PanicBundle { panics }));
        }
    }

    /// Replay the lanes' arenas against the machine in ascending **rank**
    /// order (interleaving across lanes per the stripe map) — the exact
    /// charge sequence the sequential engine would have produced.
    fn replay(&mut self, mut phase: Option<&mut PhaseCharge>) {
        let lanes = self.pool.lanes;
        for rank in 0..self.machine.nprocs() {
            let arena = &self.arenas[rank % lanes];
            let i = rank / lanes;
            let (start, end) = (arena.starts[i] as usize, arena.starts[i + 1] as usize);
            replay_events(
                &mut self.machine,
                phase.as_deref_mut(),
                &arena.events[start..end],
            );
        }
    }

    /// Number of ranks striped onto `lane` (`rank % lanes == lane`).
    fn stripe_len(nprocs: usize, lanes: usize, lane: usize) -> usize {
        if lane >= nprocs {
            0
        } else {
            (nprocs - lane).div_ceil(lanes)
        }
    }

    /// Replay one fused-sweep stage's spans in ascending rank order (stage
    /// `0` is compute, stage `1 + j` is scatter buffer `j`'s combine — see
    /// the span layout note on [`ChargeArena`]).
    fn replay_stage(&mut self, stage: usize, mut phase: Option<&mut PhaseCharge>) {
        let lanes = self.pool.lanes;
        let nprocs = self.machine.nprocs();
        for rank in 0..nprocs {
            let lane = rank % lanes;
            let arena = &self.arenas[lane];
            let i = stage * Self::stripe_len(nprocs, lanes, lane) + rank / lanes;
            let (start, end) = (arena.starts[i] as usize, arena.starts[i + 1] as usize);
            replay_events(
                &mut self.machine,
                phase.as_deref_mut(),
                &arena.events[start..end],
            );
        }
    }

    /// Collect a state iterator into per-rank slots, checking arity.
    fn collect_states<St, I: IntoIterator<Item = St>>(&self, state: I) -> Vec<Option<St>> {
        let states: Vec<Option<St>> = state.into_iter().map(Some).collect();
        assert_eq!(
            states.len(),
            self.machine.nprocs(),
            "state must yield one item per rank"
        );
        states
    }

    /// The compute-region body shared by `run_compute` and the unpack half
    /// of `run_phase` — factored out so each public `run_*` entry point
    /// advances the machine epoch exactly once.
    fn compute_impl<St, I, F>(&mut self, state: I, kernel: F)
    where
        St: Send,
        I: IntoIterator<Item = St>,
        F: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        let mut states = self.collect_states(state);
        {
            let cells = RawCells::new(&mut states);
            self.fan_out_ranks(false, |ctx, rank| {
                // Safety: each rank index is visited exactly once per phase.
                let st = unsafe { cells.get_mut(rank) }.take().expect("state slot");
                kernel(ctx, st);
            });
        }
        let trace = self.machine.tracer().cloned();
        let metrics = self.machine.metrics().cloned();
        let kind = metrics_phase_kind(&self.machine);
        let mt0 = metrics_span_begin(&metrics);
        trace_replay_begin(&trace);
        self.replay(None);
        trace_replay_end(&trace, &self.machine);
        metrics_replay_end(&metrics, EngineKind::Pooled, kind, mt0);
    }
}

impl Backend for PooledBackend {
    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn run_compute<St, I, F>(&mut self, state: I, kernel: F)
    where
        St: Send,
        I: IntoIterator<Item = St>,
        F: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        if self.inline {
            return self.machine.run_compute(state, kernel);
        }
        self.machine.advance_epoch();
        self.compute_impl(state, kernel);
    }

    fn run_phase<St, I, A, B>(&mut self, end: PhaseEnd<'_>, pack: A, state: I, unpack: B)
    where
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>) + Sync,
        B: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        if self.inline {
            return self.machine.run_phase(end, pack, state, unpack);
        }
        let epoch = self.machine.advance_epoch();
        // The pack stage only charges (it moves no data): run it inline on
        // the driver, exactly as the threaded engine does — by construction
        // the same charge sequence a record + replay would produce.
        let nprocs = self.machine.nprocs();
        let plan = self.machine.fault_plan().cloned();
        let trace = self.machine.tracer().cloned();
        let metrics = self.machine.metrics().cloned();
        let mut phase = PhaseCharge::new();
        for rank in 0..nprocs {
            fault::fire_traced(
                plan.as_deref(),
                epoch,
                rank,
                trace.as_deref(),
                metrics.as_deref(),
                None,
            );
            let mut ctx = RankCtx::direct(rank, nprocs, &mut self.machine, Some(&mut phase));
            pack(&mut ctx);
        }
        close_phase(&mut self.machine, end, phase);
        // The unpack stage does the real data movement: broadcast it.
        self.compute_impl(state, unpack);
    }

    fn run_exchange<T, St, I, A, B>(&mut self, end: PhaseEnd<'_>, pack: A, state: I, unpack: B)
    where
        T: Send + Sync,
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>, &mut Outbox<'_, T>) + Sync,
        B: Fn(&mut RankCtx<'_>, St, &Inbox<'_, T>) + Sync,
    {
        if self.inline {
            return self.machine.run_exchange(end, pack, state, unpack);
        }
        self.machine.advance_epoch();
        let nprocs = self.machine.nprocs();
        let mut matrix: Vec<Vec<Vec<T>>> = (0..nprocs)
            .map(|_| (0..nprocs).map(|_| Vec::new()).collect())
            .collect();
        // Pack: rank r owns row r of the mailbox matrix.
        {
            let rows = RawCells::new(&mut matrix);
            self.fan_out_ranks(true, |ctx, rank| {
                // Safety: row `rank` is written only by rank `rank`'s lane.
                let row = unsafe { rows.get_mut(rank) };
                pack(ctx, &mut Outbox::new(row));
            });
        }
        let trace = self.machine.tracer().cloned();
        let metrics = self.machine.metrics().cloned();
        let kind = metrics_phase_kind(&self.machine);
        let mut phase = PhaseCharge::new();
        let mt0 = metrics_span_begin(&metrics);
        trace_replay_begin(&trace);
        self.replay(Some(&mut phase));
        trace_replay_end(&trace, &self.machine);
        metrics_replay_end(&metrics, EngineKind::Pooled, kind, mt0);
        close_phase(&mut self.machine, end, phase);
        // Unpack: rank r reads column r of the (now frozen) matrix.
        let mut states = self.collect_states(state);
        {
            let cells = RawCells::new(&mut states);
            let matrix = &matrix;
            self.fan_out_ranks(false, |ctx, rank| {
                // Safety: each rank index is visited exactly once per phase.
                let st = unsafe { cells.get_mut(rank) }.take().expect("state slot");
                unpack(ctx, st, &Inbox::new(matrix, rank));
            });
        }
        let mt0 = metrics_span_begin(&metrics);
        trace_replay_begin(&trace);
        self.replay(None);
        trace_replay_end(&trace, &self.machine);
        metrics_replay_end(&metrics, EngineKind::Pooled, kind, mt0);
    }

    fn run_sweep<Sc, Px, C, A, P, S>(
        &mut self,
        scratch: &mut [Sc],
        posted: &mut [Px],
        compute: C,
        nscatter: usize,
        scatter_active: A,
        scatter_pack: P,
        combine: S,
    ) where
        Sc: Send,
        Px: Send + Sync,
        C: Fn(&mut RankCtx<'_>, &mut Sc, &mut Px) + Sync,
        A: Fn(&[Px], usize) -> bool + Sync,
        P: Fn(&mut RankCtx<'_>, usize),
        S: Fn(&mut RankCtx<'_>, usize, &mut Sc, &[Px]) + Sync,
    {
        if self.inline {
            return self.machine.run_sweep(
                scratch,
                posted,
                compute,
                nscatter,
                scatter_active,
                scatter_pack,
                combine,
            );
        }
        let epoch = self.machine.advance_epoch();
        let nprocs = self.machine.nprocs();
        assert_eq!(scratch.len(), nprocs, "one scratch item per rank");
        assert_eq!(posted.len(), nprocs, "one posted area per rank");
        let lanes = self.pool.lanes;
        let plan = self.machine.fault_plan().cloned();
        let plan = plan.as_deref();
        let trace = self.machine.tracer().cloned();
        let trace = trace.as_deref();
        let metrics = self.machine.metrics().cloned();
        let metrics = metrics.as_deref();
        let kind = metrics_phase_kind(&self.machine);
        let caught: Mutex<Vec<CaughtPanic>> = Mutex::new(Vec::new());
        let panicked = AtomicBool::new(false);
        let barrier = StageBarrier::new(lanes);
        let progress = &self.pool.shared.progress;
        let arenas = RawCells::new(&mut self.arenas);
        let scratch_cells = RawCells::new(&mut *scratch);
        let posted_cells = RawCells::new(&mut *posted);
        // One broadcast release runs the whole sweep: every lane computes
        // its stripe, crosses the stage barrier (after which the posted
        // areas are frozen), then records every combine stage.
        let straggler = self.pool.run(
            &|lane: usize, parked: bool| {
                if let Some(t) = trace {
                    t.record(lane, TraceEventKind::WorkerRelease, parked as u32);
                }
                if let Some(m) = metrics {
                    m.incr(Some(lane), Counter::WorkerReleases, 1);
                    if parked {
                        m.incr(Some(lane), Counter::WorkerParks, 1);
                    }
                }
                // Safety: lane indices are distinct across the pool's lanes.
                let arena = unsafe { arenas.get_mut(lane) };
                arena.events.clear();
                arena.starts.clear();
                // Compute stage: per-rank caught, the sweep's only
                // fault-injection points.
                let kt0 = metrics.map(|_| Instant::now());
                let mut ran = 0u64;
                let pre = catch_unwind(AssertUnwindSafe(|| {
                    let mut rank = lane;
                    while rank < nprocs {
                        arena.starts.push(arena.events.len() as u32);
                        if let Some(t) = trace {
                            t.record(lane, TraceEventKind::KernelEnter, rank as u32);
                        }
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            fault::fire_traced(plan, epoch, rank, trace, metrics, Some(lane));
                            let mut ctx =
                                RankCtx::recording(rank, nprocs, &mut arena.events, false);
                            // Safety: rank → lane striping is a partition.
                            let sc = unsafe { scratch_cells.get_mut(rank) };
                            let px = unsafe { posted_cells.get_mut(rank) };
                            compute(&mut ctx, sc, px);
                        }));
                        if let Some(t) = trace {
                            t.record(lane, TraceEventKind::KernelExit, rank as u32);
                        }
                        if let Err(payload) = result {
                            panicked.store(true, Ordering::Release);
                            caught.lock().unwrap().push(CaughtPanic {
                                epoch,
                                rank: Some(rank),
                                lane: Some(lane),
                                payload,
                            });
                        }
                        progress[lane].fetch_add(1, Ordering::Release);
                        ran += 1;
                        rank += lanes;
                    }
                }));
                if pre.is_err() {
                    panicked.store(true, Ordering::Release);
                }
                if let (Some(m), Some(t0)) = (metrics, kt0) {
                    m.incr(Some(lane), Counter::KernelRuns, ran);
                    m.record_span(
                        Some(lane),
                        EngineKind::Pooled,
                        SpanKind::Kernel,
                        kind,
                        t0.elapsed().as_nanos() as u64,
                    );
                }
                // Every lane must arrive — re-raising before the barrier
                // would deadlock the peers — so a pre-barrier escape is
                // deferred until after arrival (the lane-level backstop in
                // `worker_main` / `WorkerPool::run` keeps the payload).
                if let Some(t) = trace {
                    t.record(lane, TraceEventKind::StageWaitBegin, 0);
                }
                let bt0 = metrics.map(|_| Instant::now());
                barrier.wait();
                if let Some(t) = trace {
                    t.record(lane, TraceEventKind::StageWaitEnd, 0);
                }
                if let (Some(m), Some(t0)) = (metrics, bt0) {
                    m.incr(Some(lane), Counter::BarrierWaits, 1);
                    m.record_span(
                        Some(lane),
                        EngineKind::Pooled,
                        SpanKind::BarrierWait,
                        kind,
                        t0.elapsed().as_nanos() as u64,
                    );
                }
                if let Err(payload) = pre {
                    resume_unwind(payload);
                }
                if panicked.load(Ordering::Acquire) {
                    // Some rank failed: the sweep re-raises and never
                    // replays, so combine stages are skipped pool-wide.
                    return;
                }
                // Combine stages: the posted areas are frozen now; every
                // lane records one span per stripe rank per scatter buffer
                // (empty when the buffer is inactive) so span indexing
                // stays uniform for the replayer.
                // Safety: the barrier retired every `&mut` from compute.
                let posted_view = unsafe { posted_cells.as_slice() };
                for j in 0..nscatter {
                    let active = scatter_active(posted_view, j);
                    if active {
                        if let Some(t) = trace {
                            t.record(lane, TraceEventKind::CombineEnter, j as u32);
                        }
                    }
                    let ct0 = if active {
                        metrics.map(|_| Instant::now())
                    } else {
                        None
                    };
                    let mut ran = 0u64;
                    let mut rank = lane;
                    while rank < nprocs {
                        arena.starts.push(arena.events.len() as u32);
                        if active {
                            let mut ctx =
                                RankCtx::recording(rank, nprocs, &mut arena.events, false);
                            // Safety: striping partitions scratch too.
                            let sc = unsafe { scratch_cells.get_mut(rank) };
                            combine(&mut ctx, j, sc, posted_view);
                            ran += 1;
                        }
                        progress[lane].fetch_add(1, Ordering::Release);
                        rank += lanes;
                    }
                    if active {
                        if let Some(t) = trace {
                            t.record(lane, TraceEventKind::CombineExit, j as u32);
                        }
                        if let (Some(m), Some(t0)) = (metrics, ct0) {
                            m.incr(Some(lane), Counter::CombineRuns, ran);
                            m.record_span(
                                Some(lane),
                                EngineKind::Pooled,
                                SpanKind::Combine,
                                kind,
                                t0.elapsed().as_nanos() as u64,
                            );
                        }
                    }
                }
                arena.starts.push(arena.events.len() as u32);
                if let Some(t) = trace {
                    t.record(lane, TraceEventKind::BarrierArrive, lane as u32);
                }
                if let Some(m) = metrics {
                    m.incr(Some(lane), Counter::BarrierWaits, 1);
                }
            },
            self.deadline,
        );
        if let Some(report) = straggler {
            // Progress counts rank-executions across all stages; fold it
            // back onto the lane's stripe for the rank attribution.
            let stripe = Self::stripe_len(nprocs, lanes, report.lane);
            let done = report.progress[report.lane] as usize;
            let pos = if stripe == 0 { 0 } else { done % stripe };
            let rank = (report.lane + pos * lanes).min(nprocs.saturating_sub(1));
            self.pending_flaw = Some(PhaseError::Straggler {
                epoch,
                rank,
                lane: report.lane,
                waited: report.waited,
                progress: report.progress,
            });
        }
        let mut panics = caught.into_inner().unwrap();
        if !panics.is_empty() {
            panics.sort_by_key(|p| p.rank);
            resume_unwind(Box::new(PanicBundle { panics }));
        }
        // Replay compute, then per active buffer: a driver-side pack stage
        // (charges only, like `run_phase`'s), a labelled quiet close, and
        // the buffer's combine spans — ascending rank order throughout, the
        // exact sequence the sequential engine produces.
        let trace = self.machine.tracer().cloned();
        let metrics = self.machine.metrics().cloned();
        let mt0 = metrics_span_begin(&metrics);
        trace_replay_begin(&trace);
        self.replay_stage(0, None);
        trace_replay_end(&trace, &self.machine);
        metrics_replay_end(&metrics, EngineKind::Pooled, kind, mt0);
        for j in 0..nscatter {
            if !scatter_active(posted, j) {
                continue;
            }
            let mut phase = PhaseCharge::new();
            for rank in 0..nprocs {
                let mut ctx = RankCtx::direct(rank, nprocs, &mut self.machine, Some(&mut phase));
                scatter_pack(&mut ctx, j);
            }
            close_phase(
                &mut self.machine,
                PhaseEnd::QuietLabelled(FUSED_SWEEP_LABEL),
                phase,
            );
            let mt0 = metrics_span_begin(&metrics);
            trace_replay_begin(&trace);
            self.replay_stage(1 + j, None);
            trace_replay_end(&trace, &self.machine);
            metrics_replay_end(&metrics, EngineKind::Pooled, kind, mt0);
        }
    }

    fn take_phase_flaw(&mut self) -> Option<PhaseError> {
        self.pending_flaw.take()
    }

    fn degrade(&mut self) -> bool {
        self.inline = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ThreadedBackend;

    fn engines(p: usize, workers: usize) -> (Machine, PooledBackend) {
        (
            Machine::new(MachineConfig::ipsc860(p)),
            PooledBackend::from_config_with_workers(MachineConfig::ipsc860(p), workers),
        )
    }

    /// A phase whose pack charges a ring of messages and whose unpack writes
    /// rank-local state — exercised identically on both engines.
    fn ring_phase<B: Backend>(backend: &mut B, out: &mut [f64]) {
        backend.run_phase(
            PhaseEnd::Labelled("ring"),
            |ctx| {
                let r = ctx.rank();
                ctx.charge_memory(r, 3.0);
                ctx.charge_p2p(r, (r + 1) % ctx.nprocs(), 3);
            },
            out.iter_mut(),
            |ctx, slot| {
                ctx.charge_compute(ctx.rank(), 2.0);
                *slot = ctx.rank() as f64 * 10.0;
            },
        );
    }

    fn assert_bit_identical(seq: &Machine, pool: &PooledBackend) {
        let (ea, eb) = (seq.elapsed(), pool.machine().elapsed());
        for p in 0..seq.nprocs() {
            assert_eq!(ea.per_proc[p].to_bits(), eb.per_proc[p].to_bits());
            assert_eq!(ea.comm[p].to_bits(), eb.comm[p].to_bits());
            assert_eq!(ea.idle[p].to_bits(), eb.idle[p].to_bits());
        }
        let (sa, sb) = (
            seq.stats().grand_totals(),
            pool.machine().stats().grand_totals(),
        );
        assert_eq!(sa.messages, sb.messages);
        assert_eq!(sa.bytes, sb.bytes);
        assert_eq!(sa.phases, sb.phases);
        assert_eq!(sa.comm_seconds.to_bits(), sb.comm_seconds.to_bits());
        assert_eq!(seq.stats().records(), pool.machine().stats().records());
    }

    #[test]
    fn pooled_phase_is_bit_identical_to_sequential() {
        for workers in [1, 2, 3, 8] {
            let (mut seq, mut pool) = engines(8, workers);
            let mut out_a = vec![0.0; 8];
            let mut out_b = vec![0.0; 8];
            ring_phase(&mut seq, &mut out_a);
            ring_phase(&mut pool, &mut out_b);
            assert_eq!(out_a, out_b, "workers={workers}");
            assert_bit_identical(&seq, &pool);
        }
    }

    #[test]
    fn pooled_exchange_rotates_payloads() {
        fn rotate<B: Backend>(backend: &mut B) -> Vec<u64> {
            let n = backend.nprocs();
            let mut got = vec![0u64; n];
            backend.run_exchange(
                PhaseEnd::Labelled("rotate"),
                |ctx, outbox: &mut Outbox<'_, u64>| {
                    let r = ctx.rank();
                    let to = (r + 1) % ctx.nprocs();
                    outbox.post(to, [r as u64 * 100]);
                    ctx.charge_p2p(r, to, 1);
                },
                got.iter_mut(),
                |ctx, slot, inbox| {
                    let from = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
                    *slot = inbox.from_rank(from)[0];
                    ctx.charge_memory(ctx.rank(), 1.0);
                },
            );
            got
        }
        let (mut seq, mut pool) = engines(8, 3);
        let a = rotate(&mut seq);
        let b = rotate(&mut pool);
        assert_eq!(a, b);
        assert_bit_identical(&seq, &pool);
    }

    #[test]
    fn ranks_exceeding_workers_stripe_onto_the_pool() {
        // 16 ranks on 3 lanes: lane 0 runs ranks {0,3,6,...}, etc. Replay
        // must still interleave back to ascending rank order.
        let (mut seq, mut pool) = engines(16, 3);
        let mut a = vec![0u32; 16];
        let mut b = vec![0u32; 16];
        seq.run_compute(a.iter_mut(), |ctx, d| {
            ctx.charge_compute(ctx.rank(), 1.0 + ctx.rank() as f64);
            *d = ctx.rank() as u32;
        });
        pool.run_compute(b.iter_mut(), |ctx, d| {
            ctx.charge_compute(ctx.rank(), 1.0 + ctx.rank() as f64);
            *d = ctx.rank() as u32;
        });
        assert_eq!(a, (0..16).collect::<Vec<_>>());
        assert_eq!(a, b);
        assert_bit_identical(&seq, &pool);
    }

    #[test]
    fn workers_exceeding_ranks_and_cores_still_agree() {
        // More lanes (12) than ranks (4), and (on small containers) more
        // lanes than hardware cores: idle lanes run empty stripes, busy
        // lanes timeshare, results must not care.
        let (mut seq, mut pool) = engines(4, 12);
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        ring_phase(&mut seq, &mut a);
        ring_phase(&mut pool, &mut b);
        assert_eq!(a, b);
        assert_bit_identical(&seq, &pool);
    }

    #[test]
    fn many_phases_reuse_the_pool_and_stay_identical() {
        // 100 back-to-back phases through the same pool: the epoch barrier
        // must hand off cleanly every time (spin window and park path both
        // get exercised under scheduler noise), and the arenas must absorb
        // the recording without fresh allocation once grown.
        let mut seq = Machine::new(MachineConfig::unit(6));
        let mut pool = PooledBackend::from_config_with_workers(MachineConfig::unit(6), 3);
        let mut a = vec![0.0; 6];
        let mut b = vec![0.0; 6];
        for _ in 0..100 {
            ring_phase(&mut seq, &mut a);
            ring_phase(&mut pool, &mut b);
        }
        assert_eq!(a, b);
        assert_bit_identical(&seq, &pool);
        let arena_capacity: usize = pool.arenas.iter().map(|a| a.events.capacity()).sum();
        let mut c = vec![0.0; 6];
        ring_phase(&mut pool, &mut c);
        let after: usize = pool.arenas.iter().map(|a| a.events.capacity()).sum();
        assert_eq!(arena_capacity, after, "steady-state arenas must not grow");
    }

    #[test]
    fn pooled_engine_matches_threaded_engine() {
        let mut thr = ThreadedBackend::from_config(MachineConfig::ipsc860(8));
        let mut pool = PooledBackend::from_config_with_workers(MachineConfig::ipsc860(8), 4);
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        ring_phase(&mut thr, &mut a);
        ring_phase(&mut pool, &mut b);
        assert_eq!(a, b);
        assert_eq!(thr.machine().elapsed(), pool.machine().elapsed());
    }

    /// A fused sweep over two scatter buffers: compute posts per-rank
    /// contributions (buffer 1 stays untouched), the active buffer charges
    /// a ring of messages, and combine folds every rank's contribution into
    /// the local scratch.
    fn fused_sweep<B: Backend>(backend: &mut B, out: &mut [f64]) -> Vec<f64> {
        let n = backend.nprocs();
        let mut posted: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0; 2]).collect();
        backend.run_sweep(
            out,
            &mut posted,
            |ctx, sc: &mut f64, px: &mut Vec<f64>| {
                let r = ctx.rank();
                ctx.charge_compute(r, 1.0 + r as f64);
                px[0] = (r as f64 + 1.0) * 0.25;
                px[1] = 1.0;
                *sc = r as f64;
            },
            2,
            |posted, j| j == 0 && posted.iter().any(|p| p[1] != 0.0),
            |ctx, _j| {
                let r = ctx.rank();
                ctx.charge_memory(r, 2.0);
                ctx.charge_p2p(r, (r + 1) % ctx.nprocs(), 2);
            },
            |ctx, _j, sc, posted| {
                ctx.charge_compute(ctx.rank(), 0.5);
                *sc += posted.iter().map(|p| p[0]).sum::<f64>();
            },
        );
        posted.into_iter().map(|p| p[0]).collect()
    }

    #[test]
    fn pooled_fused_sweep_is_bit_identical_to_sequential() {
        for workers in [1, 2, 3, 8] {
            let (mut seq, mut pool) = engines(8, workers);
            let mut out_a = vec![0.0; 8];
            let mut out_b = vec![0.0; 8];
            let pa = fused_sweep(&mut seq, &mut out_a);
            let pb = fused_sweep(&mut pool, &mut out_b);
            assert_eq!(out_a, out_b, "workers={workers}");
            assert_eq!(pa, pb, "workers={workers}");
            assert_eq!(seq.epoch(), pool.machine().epoch(), "one epoch per sweep");
            assert_bit_identical(&seq, &pool);
        }
    }

    #[test]
    fn fused_sweep_stripes_ranks_onto_the_pool() {
        // 16 ranks on 3 lanes: the stage-major span layout must still
        // replay back in ascending rank order, across several sweeps so
        // the arenas are reused.
        let (mut seq, mut pool) = engines(16, 3);
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        for _ in 0..5 {
            fused_sweep(&mut seq, &mut a);
            fused_sweep(&mut pool, &mut b);
        }
        assert_eq!(a, b);
        assert_bit_identical(&seq, &pool);
    }

    #[test]
    fn fused_sweep_rank_panic_leaves_the_machine_untouched() {
        let mut pool = PooledBackend::from_config_with_workers(MachineConfig::unit(8), 3);
        let mut sc = vec![0.0f64; 8];
        let mut px = vec![0u8; 8];
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_sweep(
                &mut sc,
                &mut px,
                |ctx, _sc: &mut f64, _px: &mut u8| {
                    ctx.charge_compute(ctx.rank(), 1.0);
                    if ctx.rank() == 5 {
                        panic!("kernel exploded on rank 5");
                    }
                },
                1,
                |_, _| true,
                |_, _| {},
                |_, _, _, _| {},
            );
        }));
        let payload = result.expect_err("rank panic must reach the driver");
        let err = PhaseError::from_payload(1, payload);
        match err {
            PhaseError::RankPanic { failures, .. } => {
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].rank, Some(5));
            }
            other => panic!("expected RankPanic, got {other:?}"),
        }
        // Nothing replayed: the machine saw only the epoch advance.
        assert_eq!(pool.machine().epoch(), 1);
        assert_eq!(pool.machine().elapsed().max_seconds(), 0.0);
        // The pool is reusable: the next sweep completes and replays.
        let mut out = vec![0.0; 8];
        fused_sweep(&mut pool, &mut out);
        assert!(pool.machine().elapsed().max_seconds() > 0.0);
    }

    #[test]
    fn worker_panic_propagates_to_the_driver() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut pool = PooledBackend::from_config_with_workers(MachineConfig::unit(4), 4);
            let mut out = [0u8; 4];
            pool.run_compute(out.iter_mut(), |ctx, _| {
                if ctx.rank() == 1 {
                    panic!("kernel exploded on rank 1");
                }
            });
        }));
        let payload = result.expect_err("worker panic must reach the driver");
        let bundle = payload
            .downcast_ref::<PanicBundle>()
            .expect("pool re-raises an aggregated PanicBundle");
        assert_eq!(bundle.panics.len(), 1);
        let caught = &bundle.panics[0];
        assert_eq!(caught.rank, Some(1));
        let msg = caught
            .payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default();
        assert!(msg.contains("kernel exploded"), "unexpected payload: {msg}");
    }

    #[test]
    fn multi_rank_panics_name_every_failing_rank() {
        // Two ranks explode in the same phase on different lanes: the
        // aggregated bundle (and the typed error built from it) must name
        // both, sorted by rank — not just the first payload caught.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut pool = PooledBackend::from_config_with_workers(MachineConfig::unit(8), 3);
            let mut out = [0u8; 8];
            pool.run_compute(out.iter_mut(), |ctx, _| {
                if ctx.rank() == 2 || ctx.rank() == 5 {
                    panic!("boom on rank {}", ctx.rank());
                }
            });
        }));
        let payload = result.expect_err("worker panics must reach the driver");
        let err = PhaseError::from_payload(0, payload);
        match err {
            PhaseError::RankPanic { failures, .. } => {
                let ranks: Vec<_> = failures.iter().map(|f| f.rank).collect();
                assert_eq!(ranks, vec![Some(2), Some(5)]);
                for f in &failures {
                    assert!(f.lane.is_some(), "lane recorded with every payload");
                    assert!(
                        matches!(&f.cause, crate::fault::PhaseCause::Panic(m) if m.contains("boom"))
                    );
                }
            }
            other => panic!("expected RankPanic, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "one item per rank")]
    fn short_state_iterator_panics() {
        let mut pool = PooledBackend::from_config_with_workers(MachineConfig::unit(4), 2);
        let mut only_two = [0u8; 2];
        pool.run_compute(only_two.iter_mut(), |_, _| {});
    }

    #[test]
    fn dropping_the_backend_joins_the_workers() {
        let pool = PooledBackend::from_config_with_workers(MachineConfig::unit(2), 6);
        let machine = pool.into_machine();
        assert_eq!(machine.nprocs(), 2);
    }

    #[test]
    fn barrier_deadline_surfaces_a_straggler() {
        use crate::fault::{FaultKind, FaultPlan};
        use std::sync::Arc;
        use std::time::Duration;

        // Two lanes: the driver takes the last lane, so rank 0 runs on the
        // spawned worker (lane 0). Stall it well past the barrier deadline:
        // the phase still completes (a stall is a delay, not a crash) but the
        // typed error names the hung rank with its lane and progress.
        let mut pool = PooledBackend::from_config_with_workers(MachineConfig::unit(2), 2)
            .with_barrier_deadline(Duration::from_millis(5));
        let plan = FaultPlan::new()
            .with_stall(Duration::from_millis(120))
            .with_fault(1, 0, FaultKind::LaneStall);
        pool.machine_mut().install_fault_plan(Some(Arc::new(plan)));

        let mut out = [0u64; 2];
        let err = pool
            .try_run_compute(out.iter_mut(), |ctx, slot| *slot = ctx.rank() as u64 + 1)
            .unwrap_err();
        match err {
            PhaseError::Straggler {
                epoch,
                rank,
                lane,
                waited,
                ref progress,
            } => {
                assert_eq!(epoch, 1);
                assert_eq!(rank, 0);
                assert_eq!(lane, 0);
                assert!(waited >= Duration::from_millis(5));
                assert_eq!(progress.len(), 2);
            }
            other => panic!("expected Straggler, got {other:?}"),
        }
        // The stalled lane finished the work before the error was built.
        assert_eq!(out, [1, 2]);

        // The next phase is flaw-free: the fault was consumed.
        let mut out = [0u64; 2];
        pool.try_run_compute(out.iter_mut(), |ctx, slot| *slot = ctx.rank() as u64)
            .unwrap();
        assert_eq!(out, [0, 1]);
    }

    #[test]
    fn bounded_shutdown_joins_all_lanes() {
        use std::time::Duration;

        let mut pool = PooledBackend::from_config_with_workers(MachineConfig::unit(4), 3);
        let mut out = [0u8; 4];
        pool.run_compute(out.iter_mut(), |ctx, slot| *slot = ctx.rank() as u8);
        let (machine, all_joined) = pool.shutdown(Duration::from_secs(5));
        assert!(all_joined, "idle workers must join within the deadline");
        assert_eq!(machine.nprocs(), 4);
        assert_eq!(out, [0, 1, 2, 3]);
    }

    #[test]
    fn shutdown_after_caught_worker_panic_is_bounded() {
        use std::time::Duration;

        // Regression for the mid-epoch drop path: a worker panicked during a
        // phase, the driver caught the bundle, and the backend is then torn
        // down. The workers must still be parked at the next-epoch wait and
        // join promptly — the pool may not deadlock on the poisoned phase.
        let mut pool = PooledBackend::from_config_with_workers(MachineConfig::unit(4), 4);
        let mut out = [0u8; 4];
        let err = pool
            .try_run_compute(out.iter_mut(), |ctx, _| {
                if ctx.rank() == 3 {
                    panic!("mid-epoch failure");
                }
            })
            .unwrap_err();
        assert!(matches!(err, PhaseError::RankPanic { .. }));
        let (_, all_joined) = pool.shutdown(Duration::from_secs(5));
        assert!(all_joined, "workers must join after a caught panic");
    }
}
