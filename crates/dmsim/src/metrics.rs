//! Always-on runtime metrics and the cost-model auditor.
//!
//! [`MetricsRegistry`] is the aggregated, production-facing sibling of the
//! flight recorder ([`TraceSink`]): where the tracer keeps raw per-lane
//! event rings for post-mortem timelines, the registry keeps *aggregates* —
//! monotonic counters and fixed-bucket log2 latency histograms — cheap
//! enough to leave on in steady state and scrape from a long-running job.
//!
//! # Layout and the single-writer protocol
//!
//! The registry is a fixed, preallocated array of per-lane shards: one shard
//! per pool lane plus one for the driver thread (stored last). Exactly one
//! thread writes a given shard — pool lane `l` writes shard `l`, the
//! threaded engine maps rank `r` to lane `r`, and the driver writes the last
//! shard — so writes are plain (non-atomic) array increments. Events for
//! lanes outside the allocated range are *not* folded into another shard
//! (that would break the protocol); they bump the shared atomic
//! [`lane_events_lost`](MetricsRegistry::lane_events_lost) counter instead.
//! This is the same discipline [`TraceSink`] uses for its rings.
//!
//! Everything is preallocated at construction: recording a counter or a span
//! allocates nothing, and when no registry is installed every hook site
//! costs exactly one `Option` branch. Metrics are an **observer**: they read
//! wall clocks and counts but never touch machine state, so a
//! metrics-enabled run is bit-identical to a disabled one (values, modeled
//! clock bits, [`CommStats`]) — `tests/metrics_identity.rs` asserts this
//! across all three engines.
//!
//! # Histograms
//!
//! Span durations land in log2 nanosecond buckets: bucket 0 holds 0 ns,
//! bucket `i` holds `[2^(i-1), 2^i)` ns, and the last bucket is unbounded.
//! Each histogram cell is keyed by engine × span kind × [`PhaseKind`], so a
//! pooled-engine executor-phase kernel stage is distinguishable from a
//! threaded-engine inspector one.
//!
//! # The cost-model auditor
//!
//! The machine credits modeled critical-path seconds to the outgoing
//! [`PhaseKind`] every time the driver switches kinds; the registry rides
//! that same sampling point, pairing each modeled delta `x` with the wall
//! delta `y` the driver actually spent. Per kind it accumulates the moments
//! `(n, Σx, Σy, Σxx, Σxy, Σyy)`, from which [`AuditReport`] derives:
//!
//! * **drift** `Σy / Σx` — bulk wall-per-modeled ratio,
//! * **slope** `Σxy / Σxx` — the through-origin least-squares fit,
//! * **residual rms** `√((Σyy − 2·slope·Σxy + slope²·Σxx) / n)` — how far
//!   samples scatter around that fit.
//!
//! The report sorts worst offender first (largest `|ln drift|`), which is
//! the per-phase-kind baseline a future real-transport backend will be
//! validated against (see ROADMAP).
//!
//! # Exposition surfaces
//!
//! [`MetricsRegistry::snapshot`] aggregates the shards into a
//! [`MetricsSnapshot`], which exposes three read-side surfaces:
//!
//! 1. [`MetricsSnapshot::prometheus_text`] — Prometheus text exposition,
//! 2. [`MetricsSnapshot::to_json`] — a JSON object via the bench `ToValue`
//!    plumbing,
//! 3. `Display` on [`MetricsSnapshot`] / [`AuditReport`] — human-readable
//!    counter and audit tables.
//!
//! Take snapshots at quiescent points (between backend regions, or after a
//! run) — the shards are being written lock-free while a region is in
//! flight.

use crate::stats::{CommStats, PhaseKind};
use crate::trace::TraceSink;
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 buckets per histogram (bucket 0 = 0 ns, last unbounded).
pub const HIST_BUCKETS: usize = 32;

/// Which execution engine recorded a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EngineKind {
    /// The sequential oracle (driver-thread kernels).
    Machine,
    /// The scoped thread-per-rank engine.
    Threaded,
    /// The long-lived worker-pool engine.
    Pooled,
}

impl EngineKind {
    /// Every engine, in dense-index order.
    pub const ALL: [EngineKind; 3] = [
        EngineKind::Machine,
        EngineKind::Threaded,
        EngineKind::Pooled,
    ];

    /// Dense index within [`EngineKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Prometheus-friendly label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Machine => "machine",
            EngineKind::Threaded => "threaded",
            EngineKind::Pooled => "pooled",
        }
    }
}

/// Which stage of a backend region a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// A lane's kernel stage (compute / pack / unpack fan-out work).
    Kernel,
    /// A lane's combine stage of a fused sweep.
    Combine,
    /// A lane waiting on the stage barrier.
    BarrierWait,
    /// The driver replaying charge ledgers.
    Replay,
}

impl SpanKind {
    /// Every span kind, in dense-index order.
    pub const ALL: [SpanKind; 4] = [
        SpanKind::Kernel,
        SpanKind::Combine,
        SpanKind::BarrierWait,
        SpanKind::Replay,
    ];

    /// Dense index within [`SpanKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Prometheus-friendly label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::Combine => "combine",
            SpanKind::BarrierWait => "barrier_wait",
            SpanKind::Replay => "replay",
        }
    }
}

/// The monotonic event counters a shard keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// Machine epoch advances (one per backend region / fused sweep).
    Epochs,
    /// Rank-kernel invocations (compute, pack fan-out, unpack).
    KernelRuns,
    /// Rank combine-stage invocations of fused sweeps.
    CombineRuns,
    /// Driver-side charge-ledger replays.
    ReplayRuns,
    /// Stage-barrier arrivals.
    BarrierWaits,
    /// Pool worker releases (one per lane per broadcast job).
    WorkerReleases,
    /// Pool worker releases that had parked (futex/condvar wake, not spin).
    WorkerParks,
    /// Recovery checkpoint refreshes.
    CheckpointRefreshes,
    /// Injected faults fired (counted at the injection point, including
    /// fires inside regions that subsequently roll back).
    FaultsFired,
    /// Same-phase retry attempts taken by the recovery driver.
    RetryAttempts,
    /// Rollbacks to the last epoch checkpoint.
    Rollbacks,
    /// Engine degradations to the sequential oracle.
    Degrades,
    /// Phase errors diagnosed (typed and stamped into the recorders).
    ErrorsDiagnosed,
    /// Point-to-point messages charged through closed phases.
    PackMessages,
    /// Payload bytes charged through closed phases.
    PackBytes,
}

impl Counter {
    /// Every counter, in dense-index order.
    pub const ALL: [Counter; 15] = [
        Counter::Epochs,
        Counter::KernelRuns,
        Counter::CombineRuns,
        Counter::ReplayRuns,
        Counter::BarrierWaits,
        Counter::WorkerReleases,
        Counter::WorkerParks,
        Counter::CheckpointRefreshes,
        Counter::FaultsFired,
        Counter::RetryAttempts,
        Counter::Rollbacks,
        Counter::Degrades,
        Counter::ErrorsDiagnosed,
        Counter::PackMessages,
        Counter::PackBytes,
    ];

    /// Dense index within [`Counter::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Prometheus-friendly metric stem (`chaos_<name>_total`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Epochs => "epochs",
            Counter::KernelRuns => "kernel_runs",
            Counter::CombineRuns => "combine_runs",
            Counter::ReplayRuns => "replay_runs",
            Counter::BarrierWaits => "barrier_waits",
            Counter::WorkerReleases => "worker_releases",
            Counter::WorkerParks => "worker_parks",
            Counter::CheckpointRefreshes => "checkpoint_refreshes",
            Counter::FaultsFired => "faults_fired",
            Counter::RetryAttempts => "retry_attempts",
            Counter::Rollbacks => "rollbacks",
            Counter::Degrades => "degrades",
            Counter::ErrorsDiagnosed => "errors_diagnosed",
            Counter::PackMessages => "pack_messages",
            Counter::PackBytes => "pack_bytes",
        }
    }

    /// One-line help string for the Prometheus exposition.
    pub fn help(self) -> &'static str {
        match self {
            Counter::Epochs => "Machine epoch advances (one per backend region)",
            Counter::KernelRuns => "Rank-kernel invocations",
            Counter::CombineRuns => "Fused-sweep combine-stage invocations",
            Counter::ReplayRuns => "Driver-side charge-ledger replays",
            Counter::BarrierWaits => "Stage-barrier arrivals",
            Counter::WorkerReleases => "Pool worker releases",
            Counter::WorkerParks => "Pool worker releases that had parked",
            Counter::CheckpointRefreshes => "Recovery checkpoint refreshes",
            Counter::FaultsFired => "Injected faults fired",
            Counter::RetryAttempts => "Same-phase recovery retries",
            Counter::Rollbacks => "Rollbacks to the last checkpoint",
            Counter::Degrades => "Engine degradations to the sequential oracle",
            Counter::ErrorsDiagnosed => "Phase errors diagnosed",
            Counter::PackMessages => "Point-to-point messages charged",
            Counter::PackBytes => "Payload bytes charged",
        }
    }
}

const COUNTERS: usize = Counter::ALL.len();
const ENGINES: usize = EngineKind::ALL.len();
const SPANS: usize = SpanKind::ALL.len();
const CELLS: usize = ENGINES * SPANS * PhaseKind::COUNT;

#[inline]
fn cell_index(engine: EngineKind, span: SpanKind, phase: PhaseKind) -> usize {
    (engine.index() * SPANS + span.index()) * PhaseKind::COUNT + phase.index()
}

/// One log2-bucket latency histogram (nanoseconds).
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    /// Bucket `i` counts samples in `[2^(i-1), 2^i)` ns (bucket 0: 0 ns,
    /// last bucket: unbounded above).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all sampled durations, in nanoseconds.
    pub sum_ns: u64,
}

impl Histogram {
    const ZERO: Histogram = Histogram {
        buckets: [0; HIST_BUCKETS],
        count: 0,
        sum_ns: 0,
    };

    #[inline]
    fn record(&mut self, ns: u64) {
        let b = (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    fn merge(&mut self, other: &Histogram) {
        for (d, s) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *d += *s;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Mean sample duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of bucket `i` in nanoseconds
    /// (`u64::MAX` for the unbounded last bucket).
    pub fn bucket_bound_ns(i: usize) -> u64 {
        if i + 1 >= HIST_BUCKETS {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }
}

/// One lane's private slice of the registry.
struct LaneShard {
    counters: [u64; COUNTERS],
    cells: Box<[Histogram]>,
}

impl LaneShard {
    fn new() -> Self {
        LaneShard {
            counters: [0; COUNTERS],
            cells: vec![Histogram::ZERO; CELLS].into_boxed_slice(),
        }
    }
}

/// Running moments of one phase kind's modeled-vs-wall samples.
#[derive(Debug, Clone, Copy, Default)]
struct AuditMoments {
    n: u64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
    sum_yy: f64,
}

/// Driver-only auditor state (same single-writer discipline as the driver
/// shard: only the driver thread samples).
struct AuditState {
    last_wall: Option<Instant>,
    per_kind: [AuditMoments; PhaseKind::COUNT],
}

/// Sharded per-lane counters and latency histograms plus the cost-model
/// auditor — see the [module docs](crate::metrics) for layout, the
/// single-writer protocol, and the exposition surfaces.
pub struct MetricsRegistry {
    /// Worker-lane shards first, driver shard last.
    shards: Vec<UnsafeCell<LaneShard>>,
    lanes: usize,
    lost: AtomicU64,
    audit: UnsafeCell<AuditState>,
    trace_dropped_wrapped: AtomicU64,
    trace_dropped_lost: AtomicU64,
}

// SAFETY: shards follow the single-writer-per-lane protocol described in the
// module docs (worker lane `l` writes shard `l`, the driver writes the last
// shard and the audit state); cross-lane aggregation happens only at
// quiescent snapshot points. The shared `lost` / trace-gauge counters are
// atomics.
unsafe impl Send for MetricsRegistry {}
unsafe impl Sync for MetricsRegistry {}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("lanes", &self.lanes)
            .field("lost", &self.lost.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// A registry with `lanes` worker shards plus the driver's, everything
    /// preallocated — recording never allocates.
    pub fn new(lanes: usize) -> Self {
        MetricsRegistry {
            shards: (0..=lanes)
                .map(|_| UnsafeCell::new(LaneShard::new()))
                .collect(),
            lanes,
            lost: AtomicU64::new(0),
            audit: UnsafeCell::new(AuditState {
                last_wall: None,
                per_kind: [AuditMoments::default(); PhaseKind::COUNT],
            }),
            trace_dropped_wrapped: AtomicU64::new(0),
            trace_dropped_lost: AtomicU64::new(0),
        }
    }

    /// Number of worker lanes (the driver shard is extra).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Events aimed at lanes outside the allocated range, counted instead of
    /// recorded (see the module docs).
    pub fn lane_events_lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    #[inline]
    fn shard_index(&self, lane: Option<usize>) -> Option<usize> {
        match lane {
            None => Some(self.lanes),
            Some(l) if l < self.lanes => Some(l),
            Some(_) => {
                self.lost.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Add `by` to counter `c` on `lane` (`None` = the driver shard).
    ///
    /// Caller contract: the calling thread must be the single writer of that
    /// lane's shard (see the module docs).
    #[inline]
    pub fn incr(&self, lane: Option<usize>, c: Counter, by: u64) {
        if let Some(idx) = self.shard_index(lane) {
            // SAFETY: single writer per lane (caller contract above).
            unsafe { (*self.shards[idx].get()).counters[c.index()] += by };
        }
    }

    /// Record a span of `ns` nanoseconds into the `engine` × `span` ×
    /// `phase` histogram on `lane` (`None` = the driver shard). Same caller
    /// contract as [`MetricsRegistry::incr`].
    #[inline]
    pub fn record_span(
        &self,
        lane: Option<usize>,
        engine: EngineKind,
        span: SpanKind,
        phase: PhaseKind,
        ns: u64,
    ) {
        if let Some(idx) = self.shard_index(lane) {
            // SAFETY: single writer per lane (caller contract above).
            unsafe { (*self.shards[idx].get()).cells[cell_index(engine, span, phase)].record(ns) };
        }
    }

    /// Fold a closed phase's volume into the driver shard's pack counters.
    #[inline]
    pub fn note_phase_volume(&self, stats: &CommStats) {
        self.incr(None, Counter::PackMessages, stats.messages as u64);
        self.incr(None, Counter::PackBytes, stats.bytes as u64);
    }

    /// One auditor sample: `modeled_delta_s` modeled critical-path seconds
    /// were credited to `kind`; pair them with the wall time elapsed since
    /// the previous sample. Driver thread only (single-writer discipline).
    pub fn audit_sample(&self, kind: PhaseKind, modeled_delta_s: f64) {
        let now = Instant::now();
        // SAFETY: only the driver thread samples the auditor.
        let st = unsafe { &mut *self.audit.get() };
        let wall = match st.last_wall {
            Some(prev) => now.duration_since(prev).as_secs_f64(),
            None => 0.0,
        };
        st.last_wall = Some(now);
        if modeled_delta_s <= 0.0 && wall <= 0.0 {
            return;
        }
        let (x, y) = (modeled_delta_s, wall);
        let m = &mut st.per_kind[kind.index()];
        m.n += 1;
        m.sum_x += x;
        m.sum_y += y;
        m.sum_xx += x * x;
        m.sum_xy += x * y;
        m.sum_yy += y * y;
    }

    /// Copy the latest ring-drop split out of a trace sink into the
    /// registry's trace gauges, so one metrics scrape covers the recorder's
    /// health too. Call at the same quiescent points as
    /// [`MetricsRegistry::snapshot`].
    pub fn observe_trace(&self, sink: &TraceSink) {
        self.trace_dropped_wrapped
            .store(sink.dropped_wrapped(), Ordering::Relaxed);
        self.trace_dropped_lost
            .store(sink.dropped_lost(), Ordering::Relaxed);
    }

    /// Aggregate every shard into a read-side [`MetricsSnapshot`].
    ///
    /// Take snapshots at quiescent points (between backend regions or after
    /// a run): shards are written lock-free while a region is in flight.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = [0u64; COUNTERS];
        let mut cells = vec![Histogram::ZERO; CELLS];
        for shard in &self.shards {
            // SAFETY: quiescent read (caller contract above).
            let shard = unsafe { &*shard.get() };
            for (t, s) in counters.iter_mut().zip(shard.counters.iter()) {
                *t += *s;
            }
            for (t, s) in cells.iter_mut().zip(shard.cells.iter()) {
                t.merge(s);
            }
        }
        let spans = EngineKind::ALL
            .iter()
            .flat_map(|&engine| {
                SpanKind::ALL.iter().flat_map(move |&span| {
                    PhaseKind::ALL
                        .iter()
                        .map(move |&phase| (engine, span, phase))
                })
            })
            .filter_map(|(engine, span, phase)| {
                let h = cells[cell_index(engine, span, phase)];
                (h.count > 0).then_some(SpanCell {
                    engine,
                    span,
                    phase,
                    hist: h,
                })
            })
            .collect();
        MetricsSnapshot {
            lanes: self.lanes,
            counters,
            spans,
            lane_events_lost: self.lost.load(Ordering::Relaxed),
            trace_dropped_wrapped: self.trace_dropped_wrapped.load(Ordering::Relaxed),
            trace_dropped_lost: self.trace_dropped_lost.load(Ordering::Relaxed),
            audit: self.audit_report(),
        }
    }

    /// Build the cost-model [`AuditReport`] from the accumulated moments,
    /// worst offender first. Driver-quiescent like
    /// [`MetricsRegistry::snapshot`].
    pub fn audit_report(&self) -> AuditReport {
        // SAFETY: quiescent read (caller contract above).
        let st = unsafe { &*self.audit.get() };
        let mut rows: Vec<AuditRow> = PhaseKind::ALL
            .iter()
            .filter_map(|&kind| {
                let m = st.per_kind[kind.index()];
                if m.n == 0 {
                    return None;
                }
                let slope = if m.sum_xx > 0.0 {
                    m.sum_xy / m.sum_xx
                } else {
                    0.0
                };
                let drift = if m.sum_x > 0.0 {
                    m.sum_y / m.sum_x
                } else if m.sum_y > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                let var =
                    (m.sum_yy - 2.0 * slope * m.sum_xy + slope * slope * m.sum_xx) / m.n as f64;
                Some(AuditRow {
                    kind,
                    samples: m.n,
                    modeled_s: m.sum_x,
                    wall_s: m.sum_y,
                    drift,
                    slope,
                    residual_rms: var.max(0.0).sqrt(),
                })
            })
            .collect();
        rows.sort_by(|a, b| {
            b.offense()
                .total_cmp(&a.offense())
                .then(b.wall_s.total_cmp(&a.wall_s))
        });
        AuditReport { rows }
    }
}

/// One aggregated histogram cell of a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy)]
pub struct SpanCell {
    /// Engine that recorded the spans.
    pub engine: EngineKind,
    /// Stage the spans cover.
    pub span: SpanKind,
    /// Phase kind in effect when they were recorded.
    pub phase: PhaseKind,
    /// The merged histogram.
    pub hist: Histogram,
}

/// One phase kind's modeled-vs-wall correlation (see the
/// [module docs](crate::metrics) for the math).
#[derive(Debug, Clone, Copy)]
pub struct AuditRow {
    /// Phase kind the samples were credited to.
    pub kind: PhaseKind,
    /// Number of samples.
    pub samples: u64,
    /// Total modeled critical-path seconds (Σx).
    pub modeled_s: f64,
    /// Total driver wall seconds (Σy).
    pub wall_s: f64,
    /// Bulk wall-per-modeled ratio (Σy / Σx).
    pub drift: f64,
    /// Through-origin least-squares slope (Σxy / Σxx).
    pub slope: f64,
    /// Root-mean-square residual around that fit, in seconds.
    pub residual_rms: f64,
}

impl AuditRow {
    /// How badly this kind's model tracks: `|ln drift|`, with zero-modeled
    /// but nonzero-wall kinds ranked worst of all.
    pub fn offense(&self) -> f64 {
        if self.modeled_s <= 0.0 {
            if self.wall_s > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else if self.drift > 0.0 {
            self.drift.ln().abs()
        } else {
            f64::INFINITY
        }
    }
}

/// Per-phase-kind cost-model audit rows, worst offender first.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// The rows (kinds with no samples are omitted).
    pub rows: Vec<AuditRow>,
}

impl AuditReport {
    /// The worst-tracking phase kind, if any samples exist.
    pub fn worst(&self) -> Option<&AuditRow> {
        self.rows.first()
    }
}

fn fmt_ratio(v: f64) -> String {
    if !v.is_finite() {
        "inf".to_string()
    } else {
        format!("{v:.3e}")
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cost-model audit (wall vs modeled, worst offender first)"
        )?;
        writeln!(
            f,
            "{:<16} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "phase", "samples", "modeled s", "wall s", "drift", "slope", "resid rms"
        )?;
        if self.rows.is_empty() {
            writeln!(f, "  (no samples)")?;
        }
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>8} {:>12.6} {:>12.6} {:>12} {:>12} {:>12}",
                r.kind.label(),
                r.samples,
                r.modeled_s,
                r.wall_s,
                fmt_ratio(r.drift),
                fmt_ratio(r.slope),
                fmt_ratio(r.residual_rms),
            )?;
        }
        Ok(())
    }
}

/// An aggregated, read-side view of a [`MetricsRegistry`] (see
/// [`MetricsRegistry::snapshot`]).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Worker lanes the registry was built with.
    pub lanes: usize,
    /// Counters summed across every shard, indexed by [`Counter::index`].
    pub counters: [u64; COUNTERS],
    /// Non-empty histogram cells, aggregated across lanes.
    pub spans: Vec<SpanCell>,
    /// Events aimed at out-of-range lanes.
    pub lane_events_lost: u64,
    /// Trace-ring events dropped to wrap-around (gauge, see
    /// [`MetricsRegistry::observe_trace`]).
    pub trace_dropped_wrapped: u64,
    /// Trace events lost to out-of-range lanes (gauge).
    pub trace_dropped_lost: u64,
    /// The cost-model audit.
    pub audit: AuditReport,
}

impl MetricsSnapshot {
    /// Aggregated value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Prometheus text exposition of counters, gauges, span histograms and
    /// the audit rows.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            out.push_str(&format!(
                "# HELP chaos_{0}_total {1}\n# TYPE chaos_{0}_total counter\nchaos_{0}_total {2}\n",
                c.name(),
                c.help(),
                self.counter(c)
            ));
        }
        out.push_str(&format!(
            "# HELP chaos_metrics_lane_events_lost_total Metric events aimed at out-of-range lanes\n\
             # TYPE chaos_metrics_lane_events_lost_total counter\n\
             chaos_metrics_lane_events_lost_total {}\n",
            self.lane_events_lost
        ));
        out.push_str(&format!(
            "# HELP chaos_trace_ring_dropped Trace-ring events dropped, by cause\n\
             # TYPE chaos_trace_ring_dropped gauge\n\
             chaos_trace_ring_dropped{{cause=\"wrap\"}} {}\n\
             chaos_trace_ring_dropped{{cause=\"lost\"}} {}\n",
            self.trace_dropped_wrapped, self.trace_dropped_lost
        ));
        if !self.spans.is_empty() {
            out.push_str(
                "# HELP chaos_span_duration_seconds Stage wall time by engine, span and phase\n\
                 # TYPE chaos_span_duration_seconds histogram\n",
            );
            for cell in &self.spans {
                let labels = format!(
                    "engine=\"{}\",span=\"{}\",phase=\"{}\"",
                    cell.engine.label(),
                    cell.span.label(),
                    cell.phase.label().replace(' ', "_")
                );
                let mut cumulative = 0u64;
                for (i, b) in cell.hist.buckets.iter().enumerate() {
                    cumulative += b;
                    if *b == 0 && i + 1 < HIST_BUCKETS {
                        continue;
                    }
                    let le = if i + 1 >= HIST_BUCKETS {
                        "+Inf".to_string()
                    } else {
                        format!("{:e}", (1u64 << i) as f64 / 1e9)
                    };
                    out.push_str(&format!(
                        "chaos_span_duration_seconds_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
                    ));
                }
                out.push_str(&format!(
                    "chaos_span_duration_seconds_sum{{{labels}}} {:e}\n",
                    cell.hist.sum_ns as f64 / 1e9
                ));
                out.push_str(&format!(
                    "chaos_span_duration_seconds_count{{{labels}}} {}\n",
                    cell.hist.count
                ));
            }
        }
        if !self.audit.rows.is_empty() {
            out.push_str(
                "# HELP chaos_model_drift_ratio Wall-per-modeled drift by phase kind\n\
                 # TYPE chaos_model_drift_ratio gauge\n",
            );
            for r in &self.audit.rows {
                out.push_str(&format!(
                    "chaos_model_drift_ratio{{phase=\"{}\"}} {:e}\n",
                    r.kind.label().replace(' ', "_"),
                    r.drift
                ));
            }
            out.push_str(
                "# HELP chaos_model_slope Through-origin wall-vs-modeled slope by phase kind\n\
                 # TYPE chaos_model_slope gauge\n",
            );
            for r in &self.audit.rows {
                out.push_str(&format!(
                    "chaos_model_slope{{phase=\"{}\"}} {:e}\n",
                    r.kind.label().replace(' ', "_"),
                    r.slope
                ));
            }
            out.push_str(
                "# HELP chaos_model_residual_seconds RMS residual around the slope fit\n\
                 # TYPE chaos_model_residual_seconds gauge\n",
            );
            for r in &self.audit.rows {
                out.push_str(&format!(
                    "chaos_model_residual_seconds{{phase=\"{}\"}} {:e}\n",
                    r.kind.label().replace(' ', "_"),
                    r.residual_rms
                ));
            }
        }
        out
    }

    /// The JSON exposition surface (the machine-readable twin of
    /// [`MetricsSnapshot::prometheus_text`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&serde_json::ToValue::to_value(self)).unwrap_or_default()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "metrics snapshot: {} worker lanes + driver, {} lane events lost",
            self.lanes, self.lane_events_lost
        )?;
        for c in Counter::ALL {
            let v = self.counter(c);
            if v != 0 {
                writeln!(f, "  {:<22} {v}", c.name())?;
            }
        }
        if self.trace_dropped_wrapped != 0 || self.trace_dropped_lost != 0 {
            writeln!(
                f,
                "  trace ring drops: {} wrapped, {} lost",
                self.trace_dropped_wrapped, self.trace_dropped_lost
            )?;
        }
        if !self.spans.is_empty() {
            writeln!(f, "spans (aggregated across lanes):")?;
            for cell in &self.spans {
                writeln!(
                    f,
                    "  {:<8} {:<12} {:<16} count={:<8} mean={:.1} us",
                    cell.engine.label(),
                    cell.span.label(),
                    cell.phase.label(),
                    cell.hist.count,
                    cell.hist.mean_ns() / 1e3
                )?;
            }
        }
        write!(f, "{}", self.audit)
    }
}

impl serde_json::ToValue for AuditRow {
    fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "phase": self.kind.label(),
            "samples": self.samples,
            "modeled_s": self.modeled_s,
            "wall_s": self.wall_s,
            "drift": self.drift,
            "slope": self.slope,
            "residual_rms": self.residual_rms,
        })
    }
}

impl serde_json::ToValue for SpanCell {
    fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "engine": self.engine.label(),
            "span": self.span.label(),
            "phase": self.phase.label(),
            "count": self.hist.count,
            "sum_ns": self.hist.sum_ns,
            "mean_ns": self.hist.mean_ns(),
            "buckets": self
                .hist
                .buckets
                .iter()
                .map(|&b| serde_json::Value::Num(b as f64))
                .collect::<Vec<_>>(),
        })
    }
}

impl serde_json::ToValue for MetricsSnapshot {
    fn to_value(&self) -> serde_json::Value {
        let counters: Vec<(String, serde_json::Value)> = Counter::ALL
            .iter()
            .map(|&c| {
                (
                    c.name().to_string(),
                    serde_json::Value::Num(self.counter(c) as f64),
                )
            })
            .collect();
        serde_json::json!({
            "lanes": self.lanes,
            "counters": serde_json::Value::Object(counters),
            "lane_events_lost": self.lane_events_lost,
            "trace_dropped_wrapped": self.trace_dropped_wrapped,
            "trace_dropped_lost": self.trace_dropped_lost,
            "spans": self.spans.clone(),
            "audit": self.audit.rows.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_per_lane_and_sum_in_snapshots() {
        let reg = MetricsRegistry::new(2);
        reg.incr(Some(0), Counter::KernelRuns, 3);
        reg.incr(Some(1), Counter::KernelRuns, 4);
        reg.incr(None, Counter::Epochs, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::KernelRuns), 7);
        assert_eq!(snap.counter(Counter::Epochs), 2);
        assert_eq!(snap.counter(Counter::Rollbacks), 0);
        assert_eq!(snap.lane_events_lost, 0);
    }

    #[test]
    fn out_of_range_lanes_are_counted_not_recorded() {
        let reg = MetricsRegistry::new(1);
        reg.incr(Some(5), Counter::KernelRuns, 1);
        reg.record_span(
            Some(9),
            EngineKind::Pooled,
            SpanKind::Kernel,
            PhaseKind::Executor,
            100,
        );
        assert_eq!(reg.lane_events_lost(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::KernelRuns), 0);
        assert!(snap.spans.is_empty());
        assert_eq!(snap.lane_events_lost, 2);
    }

    #[test]
    fn histogram_buckets_are_log2_ns() {
        let mut h = Histogram::ZERO;
        h.record(0); // bucket 0
        h.record(1); // bucket 1: [1, 2)
        h.record(1000); // bucket 10: [512, 1024)
        h.record(u64::MAX); // clamped into the last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(h.count, 4);
        assert_eq!(Histogram::bucket_bound_ns(1), 1);
        assert_eq!(Histogram::bucket_bound_ns(10), 1023);
        assert_eq!(Histogram::bucket_bound_ns(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn spans_merge_across_lanes_keyed_by_engine_span_phase() {
        let reg = MetricsRegistry::new(2);
        for lane in 0..2 {
            reg.record_span(
                Some(lane),
                EngineKind::Pooled,
                SpanKind::Kernel,
                PhaseKind::Executor,
                500,
            );
        }
        reg.record_span(
            None,
            EngineKind::Machine,
            SpanKind::Replay,
            PhaseKind::Inspector,
            2_000,
        );
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let kernel = snap
            .spans
            .iter()
            .find(|c| c.span == SpanKind::Kernel)
            .unwrap();
        assert_eq!(kernel.engine, EngineKind::Pooled);
        assert_eq!(kernel.phase, PhaseKind::Executor);
        assert_eq!(kernel.hist.count, 2);
        assert_eq!(kernel.hist.sum_ns, 1_000);
        let replay = snap
            .spans
            .iter()
            .find(|c| c.span == SpanKind::Replay)
            .unwrap();
        assert_eq!(replay.engine, EngineKind::Machine);
        assert_eq!(replay.hist.count, 1);
    }

    #[test]
    fn audit_report_ranks_worst_offender_first() {
        let reg = MetricsRegistry::new(0);
        // Burn the first sample (wall origin), then feed two kinds.
        reg.audit_sample(PhaseKind::Other, 0.0);
        reg.audit_sample(PhaseKind::Executor, 1.0);
        reg.audit_sample(PhaseKind::Inspector, 1.0);
        let report = reg.audit_report();
        assert!(report.rows.len() >= 2);
        for r in &report.rows {
            assert!(r.samples >= 1);
            assert!(r.modeled_s > 0.0 || r.wall_s > 0.0);
        }
        // Rows are sorted by non-increasing offense.
        for pair in report.rows.windows(2) {
            assert!(pair[0].offense() >= pair[1].offense());
        }
        assert!(report.worst().is_some());
    }

    #[test]
    fn audit_math_matches_exact_linear_samples() {
        let reg = MetricsRegistry::new(0);
        // Synthesize exact moments by driving audit_sample with known
        // modeled deltas; wall deltas are real (tiny), so check the modeled
        // side and the derived-quantity formulas directly instead.
        reg.audit_sample(PhaseKind::Executor, 2.0);
        reg.audit_sample(PhaseKind::Executor, 4.0);
        let report = reg.audit_report();
        let row = report
            .rows
            .iter()
            .find(|r| r.kind == PhaseKind::Executor)
            .unwrap();
        assert_eq!(row.samples, 2);
        assert_eq!(row.modeled_s, 6.0);
        assert!(row.wall_s >= 0.0);
        assert!(row.drift.is_finite());
        assert!(row.residual_rms.is_finite());
    }

    #[test]
    fn prometheus_text_exposes_counters_spans_and_audit() {
        let reg = MetricsRegistry::new(1);
        reg.incr(None, Counter::Epochs, 3);
        reg.record_span(
            Some(0),
            EngineKind::Pooled,
            SpanKind::BarrierWait,
            PhaseKind::Executor,
            700,
        );
        reg.audit_sample(PhaseKind::Executor, 0.5);
        let text = reg.snapshot().prometheus_text();
        assert!(text.contains("# TYPE chaos_epochs_total counter"));
        assert!(text.contains("chaos_epochs_total 3"));
        assert!(text.contains("# TYPE chaos_span_duration_seconds histogram"));
        assert!(text.contains(
            "chaos_span_duration_seconds_count{engine=\"pooled\",span=\"barrier_wait\",phase=\"executor\"} 1"
        ));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("chaos_model_drift_ratio{phase=\"executor\"}"));
        assert!(text.contains("chaos_trace_ring_dropped{cause=\"wrap\"} 0"));
    }

    #[test]
    fn json_snapshot_round_trips_the_same_fields() {
        let reg = MetricsRegistry::new(1);
        reg.incr(Some(0), Counter::KernelRuns, 5);
        reg.audit_sample(PhaseKind::Inspector, 0.25);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"kernel_runs\":5"));
        assert!(json.contains("\"lane_events_lost\":0"));
        assert!(json.contains("\"audit\""));
        assert!(json.contains("\"inspector\""));
    }

    #[test]
    fn display_renders_counters_and_audit_table() {
        let reg = MetricsRegistry::new(1);
        reg.incr(None, Counter::Rollbacks, 1);
        reg.audit_sample(PhaseKind::Executor, 1.0);
        let text = reg.snapshot().to_string();
        assert!(text.contains("rollbacks"));
        assert!(text.contains("cost-model audit"));
        assert!(text.contains("executor"));
    }
}
