//! Virtual time: per-processor clocks and elapsed-time reports.
//!
//! Every processor owns a [`ProcClock`] that separately accumulates compute
//! time and communication time. The separation matters because the paper's
//! tables break each experiment into *partitioner*, *inspector*, *remap* and
//! *executor* rows: the harness samples the clocks around each phase and
//! reports the difference.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// A duration of simulated time, in seconds. A thin newtype so that modeled
/// time cannot silently be confused with wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero simulated seconds.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    #[inline]
    pub fn seconds(s: f64) -> Self {
        SimTime(s)
    }

    /// The value in seconds.
    #[inline]
    pub fn as_seconds(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

/// Virtual clock of a single processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcClock {
    /// Accumulated local computation time.
    pub compute: SimTime,
    /// Accumulated communication time (message send/recv + collectives).
    pub comm: SimTime,
    /// Time spent waiting at barriers (difference between this processor's
    /// arrival time and the phase maximum).
    pub idle: SimTime,
}

impl ProcClock {
    /// Total elapsed virtual time on this processor.
    #[inline]
    pub fn total(&self) -> SimTime {
        self.compute + self.comm + self.idle
    }

    /// Charge `seconds` of computation.
    #[inline]
    pub fn charge_compute(&mut self, seconds: f64) {
        self.compute += SimTime(seconds);
    }

    /// Charge `seconds` of communication.
    #[inline]
    pub fn charge_comm(&mut self, seconds: f64) {
        self.comm += SimTime(seconds);
    }

    /// Charge `seconds` of idle (barrier wait) time.
    #[inline]
    pub fn charge_idle(&mut self, seconds: f64) {
        self.idle += SimTime(seconds);
    }
}

/// A snapshot of the whole machine's clocks, used to report elapsed time over
/// a region of execution ("the executor phase took X modeled seconds").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ElapsedReport {
    /// Per-processor total elapsed time in seconds over the sampled region.
    pub per_proc: Vec<f64>,
    /// Per-processor compute portion.
    pub compute: Vec<f64>,
    /// Per-processor communication portion.
    pub comm: Vec<f64>,
    /// Per-processor idle portion.
    pub idle: Vec<f64>,
}

impl ElapsedReport {
    /// Parallel (critical-path) time: the maximum over processors. This is
    /// what the paper's tables report.
    pub fn max_seconds(&self) -> f64 {
        self.per_proc.iter().copied().fold(0.0, f64::max)
    }

    /// Average time over processors.
    pub fn mean_seconds(&self) -> f64 {
        if self.per_proc.is_empty() {
            0.0
        } else {
            self.per_proc.iter().sum::<f64>() / self.per_proc.len() as f64
        }
    }

    /// Total (summed) processor-seconds — a proxy for work.
    pub fn total_proc_seconds(&self) -> f64 {
        self.per_proc.iter().sum()
    }

    /// Max communication time over processors.
    pub fn max_comm_seconds(&self) -> f64 {
        self.comm.iter().copied().fold(0.0, f64::max)
    }

    /// Max compute time over processors.
    pub fn max_compute_seconds(&self) -> f64 {
        self.compute.iter().copied().fold(0.0, f64::max)
    }

    /// Load imbalance of the compute portion: max / mean (1.0 = perfectly
    /// balanced). Returns 1.0 for an empty or all-zero report.
    pub fn compute_imbalance(&self) -> f64 {
        let max = self.max_compute_seconds();
        let mean = if self.compute.is_empty() {
            0.0
        } else {
            self.compute.iter().sum::<f64>() / self.compute.len() as f64
        };
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Machine-readable JSON form of the report (the harness-facing
    /// counterpart of the text tables): per-processor vectors plus the
    /// derived aggregates.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&serde_json::ToValue::to_value(self)).unwrap_or_default()
    }

    /// Element-wise difference `self - earlier`, used to isolate a phase.
    pub fn since(&self, earlier: &ElapsedReport) -> ElapsedReport {
        fn diff(a: &[f64], b: &[f64]) -> Vec<f64> {
            a.iter()
                .zip(b.iter().chain(std::iter::repeat(&0.0)))
                .map(|(x, y)| x - y)
                .collect()
        }
        ElapsedReport {
            per_proc: diff(&self.per_proc, &earlier.per_proc),
            compute: diff(&self.compute, &earlier.compute),
            comm: diff(&self.comm, &earlier.comm),
            idle: diff(&self.idle, &earlier.idle),
        }
    }
}

impl serde_json::ToValue for ElapsedReport {
    fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "per_proc": self.per_proc.clone(),
            "compute": self.compute.clone(),
            "comm": self.comm.clone(),
            "idle": self.idle.clone(),
            "max_seconds": self.max_seconds(),
            "mean_seconds": self.mean_seconds(),
            "total_proc_seconds": self.total_proc_seconds(),
            "compute_imbalance": self.compute_imbalance(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut c = ProcClock::default();
        c.charge_compute(1.0);
        c.charge_comm(2.0);
        c.charge_idle(0.5);
        assert!((c.total().as_seconds() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::seconds(1.5);
        let b = SimTime::seconds(2.0);
        assert_eq!((a + b).as_seconds(), 3.5);
        assert_eq!((b - a).as_seconds(), 0.5);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::seconds(1.0).as_millis(), 1000.0);
        assert_eq!(SimTime::seconds(1.0).as_micros(), 1e6);
    }

    #[test]
    fn elapsed_report_aggregates() {
        let r = ElapsedReport {
            per_proc: vec![1.0, 3.0, 2.0],
            compute: vec![1.0, 2.0, 1.5],
            comm: vec![0.0, 1.0, 0.5],
            idle: vec![0.0, 0.0, 0.0],
        };
        assert_eq!(r.max_seconds(), 3.0);
        assert_eq!(r.mean_seconds(), 2.0);
        assert_eq!(r.total_proc_seconds(), 6.0);
        assert_eq!(r.max_comm_seconds(), 1.0);
        assert_eq!(r.max_compute_seconds(), 2.0);
        assert!((r.compute_imbalance() - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn elapsed_report_since() {
        let early = ElapsedReport {
            per_proc: vec![1.0, 1.0],
            compute: vec![1.0, 1.0],
            comm: vec![0.0, 0.0],
            idle: vec![0.0, 0.0],
        };
        let late = ElapsedReport {
            per_proc: vec![2.0, 4.0],
            compute: vec![1.5, 2.0],
            comm: vec![0.5, 2.0],
            idle: vec![0.0, 0.0],
        };
        let d = late.since(&early);
        assert_eq!(d.per_proc, vec![1.0, 3.0]);
        assert_eq!(d.max_seconds(), 3.0);
    }

    #[test]
    fn imbalance_of_empty_is_one() {
        assert_eq!(ElapsedReport::default().compute_imbalance(), 1.0);
    }

    #[test]
    fn elapsed_report_emits_json() {
        let r = ElapsedReport {
            per_proc: vec![1.0, 3.0],
            compute: vec![1.0, 2.0],
            comm: vec![0.0, 1.0],
            idle: vec![0.0, 0.0],
        };
        let json = r.to_json();
        assert!(json.contains("\"per_proc\""));
        assert!(json.contains("\"max_seconds\":3"));
        assert!(json.contains("\"compute_imbalance\""));
    }
}
