//! Deterministic fault injection and typed phase failures.
//!
//! The CHAOS/PARTI lineage assumes every rank survives every phase; this
//! module is the machinery that lets the reproduction *stop* assuming that
//! without giving up its determinism contract:
//!
//! * **Injection** — a [`FaultPlan`] names faults at `(epoch, rank)`
//!   coordinates. Every engine ([`Machine`](crate::Machine),
//!   [`ThreadedBackend`](crate::ThreadedBackend),
//!   [`PooledBackend`](crate::PooledBackend)) consults the installed plan at
//!   every per-rank kernel entry, so the same plan produces the same fault
//!   at the same point of the same phase on any engine.
//! * **Detection** — the [`Backend`](crate::Backend) trait's `try_run_*`
//!   methods catch rank panics (and the pool's barrier-deadline straggler
//!   reports) and surface them as a typed [`PhaseError`] carrying
//!   `(epoch, rank, lane, cause)` instead of unwinding through the driver.
//! * **Recovery** — because kernels charge modeled costs only through their
//!   [`RankCtx`](crate::RankCtx) ledgers, a phase whose ledgers were never
//!   replayed left no trace on the machine: rerunning it from a restored
//!   snapshot is bit-identical to having never failed. [`RecoveryPolicy`]
//!   names the strategies the `chaos-lang` executor implements on top of
//!   this (retry, checkpoint rollback, degrading to the sequential oracle).
//!
//! Faults are **consumed**: each planned fault fires at most once, and the
//! consumed flags live in the plan itself (shared through the
//! [`std::sync::Arc`] the machine holds), *outside* any checkpointed state —
//! so restoring a snapshot taken before the fault does not re-arm it, which
//! is exactly what makes retry terminate.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// The kinds of fault a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank's kernel panics at entry (a crashed node).
    KernelPanic,
    /// The rank's kernel sleeps for the plan's stall duration before
    /// running (a straggling node). The stall is *wall-clock only* — it
    /// charges nothing to the modeled clocks, so an undetected stall is
    /// harmless to the simulation; the pool's barrier deadline turns a
    /// detected one into [`PhaseError::Straggler`].
    LaneStall,
    /// The rank's mailbox payload is flagged as corrupted at kernel entry
    /// (a failed integrity check), surfacing as [`PhaseError::Corruption`].
    MailboxCorruption,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::KernelPanic => write!(f, "kernel panic"),
            FaultKind::LaneStall => write!(f, "lane stall"),
            FaultKind::MailboxCorruption => write!(f, "mailbox corruption"),
        }
    }
}

/// One planned fault: `kind` fires when rank `rank` enters a kernel during
/// machine epoch `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Machine epoch (one epoch per `run_*` call) the fault fires in.
    pub epoch: u64,
    /// The rank it fires on.
    pub rank: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, deterministic schedule of injected faults.
///
/// Install a plan with
/// [`Machine::install_fault_plan`](crate::Machine::install_fault_plan);
/// every engine driving that machine
/// then consults it at each per-rank kernel entry. Each fault fires at most
/// once — the consumed flags are shared across machine clones, so snapshot /
/// restore recovery does not re-arm a fault that already fired.
///
/// # Example: inject one panic and recover bit-identically
///
/// ```
/// use chaos_dmsim::{Backend, FaultKind, FaultPlan, Machine, MachineConfig, PhaseError};
/// use std::sync::Arc;
///
/// let mut machine = Machine::new(MachineConfig::ipsc860(4));
/// let plan = Arc::new(FaultPlan::new().with_fault(1, 2, FaultKind::KernelPanic));
/// machine.install_fault_plan(Some(plan));
///
/// // Checkpoint the pre-phase state (clones share the plan's consumed flags).
/// let checkpoint = machine.clone();
///
/// let mut hits = vec![0u32; 4];
/// let err = machine
///     .try_run_compute(hits.iter_mut(), |ctx, h| {
///         *h += 1;
///         ctx.charge_compute(ctx.rank(), 1.0);
///     })
///     .unwrap_err();
/// assert!(matches!(err, PhaseError::RankPanic { epoch: 1, .. }));
///
/// // The fault was consumed: restore the checkpoint and rerun — the retried
/// // phase succeeds and the machine is bit-identical to a fault-free run.
/// machine = checkpoint;
/// let mut hits = vec![0u32; 4];
/// machine
///     .try_run_compute(hits.iter_mut(), |ctx, h| {
///         *h += 1;
///         ctx.charge_compute(ctx.rank(), 1.0);
///     })
///     .unwrap();
/// assert_eq!(hits, vec![1; 4]);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    consumed: Vec<AtomicBool>,
    stall: Duration,
}

impl FaultPlan {
    /// An empty plan with the default 20 ms stall duration.
    pub fn new() -> Self {
        FaultPlan {
            faults: Vec::new(),
            consumed: Vec::new(),
            stall: Duration::from_millis(20),
        }
    }

    /// A deterministic pseudo-random plan: `count` faults drawn from
    /// `epochs` × `0..nprocs` × all three kinds by a seeded LCG. The same
    /// `(seed, count, epochs, nprocs)` always yields the same plan.
    pub fn randomized(
        seed: u64,
        count: usize,
        epochs: std::ops::Range<u64>,
        nprocs: usize,
    ) -> Self {
        assert!(!epochs.is_empty(), "empty epoch range");
        assert!(nprocs > 0, "need at least one rank");
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let span = epochs.end - epochs.start;
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let epoch = epochs.start + lcg() % span;
            let rank = (lcg() % nprocs as u64) as usize;
            let kind = match lcg() % 3 {
                0 => FaultKind::KernelPanic,
                1 => FaultKind::LaneStall,
                _ => FaultKind::MailboxCorruption,
            };
            plan = plan.with_fault(epoch, rank, kind);
        }
        plan
    }

    /// Add one fault at `(epoch, rank)`.
    pub fn with_fault(mut self, epoch: u64, rank: usize, kind: FaultKind) -> Self {
        self.faults.push(Fault { epoch, rank, kind });
        self.consumed.push(AtomicBool::new(false));
        self
    }

    /// Set the wall-clock duration a [`FaultKind::LaneStall`] sleeps for.
    pub fn with_stall(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True once every planned fault has fired.
    pub fn exhausted(&self) -> bool {
        self.consumed.iter().all(|c| c.load(Ordering::Acquire))
    }

    /// True if any not-yet-consumed fault is planned for `(epoch, rank)`.
    /// Non-consuming: a subsequent [`FaultPlan::fire`] still fires it. The
    /// trace subsystem uses this to record a `FaultFired` event *before*
    /// the fault unwinds or stalls.
    pub fn scheduled(&self, epoch: u64, rank: usize) -> bool {
        self.faults.iter().enumerate().any(|(i, f)| {
            f.epoch == epoch && f.rank == rank && !self.consumed[i].load(Ordering::Acquire)
        })
    }

    /// Consult the plan at a kernel entry: fire (at most once each) every
    /// not-yet-consumed fault planned for `(epoch, rank)`. Panic-style
    /// faults unwind with an [`InjectedFault`] payload; stalls sleep on the
    /// calling thread and return normally.
    pub fn fire(&self, epoch: u64, rank: usize) {
        for (i, f) in self.faults.iter().enumerate() {
            if f.epoch == epoch && f.rank == rank && !self.consumed[i].swap(true, Ordering::AcqRel)
            {
                match f.kind {
                    FaultKind::LaneStall => std::thread::sleep(self.stall),
                    kind => std::panic::panic_any(InjectedFault { epoch, rank, kind }),
                }
            }
        }
    }
}

/// Fire the plan (if any) for `(epoch, rank)` — the helper every engine
/// calls at kernel entry — with observer hooks: when a fault is about to
/// fire at `(epoch, rank)`, record a
/// [`FaultFired`](crate::trace::TraceEventKind::FaultFired) event on the
/// installed sink (on `lane`'s ring, or the driver's when `lane` is `None`)
/// and bump the metrics registry's
/// [`FaultsFired`](crate::metrics::Counter::FaultsFired) counter on the
/// same lane — both *before* `fire`, so the observers see the injection
/// even when the fault unwinds the kernel.
#[inline]
pub(crate) fn fire_traced(
    plan: Option<&FaultPlan>,
    epoch: u64,
    rank: usize,
    trace: Option<&crate::trace::TraceSink>,
    metrics: Option<&crate::metrics::MetricsRegistry>,
    lane: Option<usize>,
) {
    if let Some(plan) = plan {
        if (trace.is_some() || metrics.is_some()) && plan.scheduled(epoch, rank) {
            if let Some(t) = trace {
                let kind = crate::trace::TraceEventKind::FaultFired;
                match lane {
                    Some(l) => t.record(l, kind, rank as u32),
                    None => t.record_driver(kind, rank as u32),
                }
            }
            if let Some(m) = metrics {
                m.incr(lane, crate::metrics::Counter::FaultsFired, 1);
            }
        }
        plan.fire(epoch, rank);
    }
}

/// The panic payload an injected panic-style fault unwinds with; the
/// `try_run_*` detectors downcast it back into a typed failure.
#[derive(Debug, Clone, Copy)]
pub struct InjectedFault {
    /// Machine epoch the fault fired in.
    pub epoch: u64,
    /// Rank it fired on.
    pub rank: usize,
    /// What fired.
    pub kind: FaultKind,
}

/// One caught panic with its execution coordinates — the unit the parallel
/// engines aggregate so that a multi-rank failure names *every* failing
/// rank, not just the first one caught.
#[derive(Debug)]
pub struct CaughtPanic {
    /// Machine epoch (pool backstop entries: pool epoch) of the phase.
    pub epoch: u64,
    /// Failing rank, when the catch site knew it.
    pub rank: Option<usize>,
    /// Lane (worker) the panic was caught on, when applicable.
    pub lane: Option<usize>,
    /// The original panic payload.
    pub payload: Box<dyn Any + Send>,
}

/// Aggregated panic payload re-raised by the parallel engines after their
/// barrier: every rank/lane panic caught during the phase.
#[derive(Debug, Default)]
pub struct PanicBundle {
    /// The caught panics, sorted by rank at the re-raise site.
    pub panics: Vec<CaughtPanic>,
}

/// Why a rank failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseCause {
    /// A planned fault from the installed [`FaultPlan`].
    Injected(FaultKind),
    /// An organic kernel panic, with its (stringified) payload.
    Panic(String),
}

impl fmt::Display for PhaseCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseCause::Injected(kind) => write!(f, "injected {kind}"),
            PhaseCause::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

/// One rank's failure inside a phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFailure {
    /// Machine epoch of the failing phase.
    pub epoch: u64,
    /// The failing rank, when known at the catch site.
    pub rank: Option<usize>,
    /// The worker lane it ran on, when applicable.
    pub lane: Option<usize>,
    /// The cause.
    pub cause: PhaseCause,
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rank {
            Some(r) => write!(f, "rank {r}")?,
            None => write!(f, "unknown rank")?,
        }
        if let Some(l) = self.lane {
            write!(f, " (lane {l})")?;
        }
        write!(f, ": {}", self.cause)
    }
}

/// A detected phase failure, returned by the [`Backend`](crate::Backend)
/// trait's `try_run_*` methods in place of an unwinding panic.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseError {
    /// One or more ranks panicked during the phase. `failures` names every
    /// failing rank the engine could attribute.
    RankPanic {
        /// Machine epoch of the failing phase.
        epoch: u64,
        /// Every caught failure, sorted by rank.
        failures: Vec<RankFailure>,
    },
    /// A rank's mailbox payload failed its (simulated) integrity check.
    Corruption {
        /// Machine epoch of the failing phase.
        epoch: u64,
        /// The rank whose payload was corrupted.
        rank: usize,
        /// The worker lane it ran on, when applicable.
        lane: Option<usize>,
    },
    /// A worker lane blew the pool's barrier deadline. The phase still
    /// completed (the driver waits out the real arrival so the borrowed
    /// phase descriptor stays sound), but the straggler is reported so a
    /// recovery policy can react.
    Straggler {
        /// Machine epoch of the slow phase.
        epoch: u64,
        /// The rank the straggling lane was executing (per its progress
        /// counter) when the deadline passed.
        rank: usize,
        /// The straggling lane.
        lane: usize,
        /// How long the driver had waited when it reported.
        waited: Duration,
        /// Ranks completed per lane at the deadline — the per-lane progress
        /// diagnostic.
        progress: Vec<u64>,
    },
}

impl PhaseError {
    /// The machine epoch the failure was detected in.
    pub fn epoch(&self) -> u64 {
        match self {
            PhaseError::RankPanic { epoch, .. }
            | PhaseError::Corruption { epoch, .. }
            | PhaseError::Straggler { epoch, .. } => *epoch,
        }
    }

    /// Convert a caught panic payload into a typed error. `epoch` is the
    /// fallback for payloads that do not carry their own coordinates.
    pub fn from_payload(epoch: u64, payload: Box<dyn Any + Send>) -> PhaseError {
        match payload.downcast::<PanicBundle>() {
            Ok(bundle) => Self::from_failures(
                epoch,
                bundle
                    .panics
                    .into_iter()
                    .map(|cp| rank_failure(cp.epoch, cp.rank, cp.lane, cp.payload))
                    .collect(),
            ),
            Err(payload) => {
                Self::from_failures(epoch, vec![rank_failure(epoch, None, None, payload)])
            }
        }
    }

    fn from_failures(epoch: u64, mut failures: Vec<RankFailure>) -> PhaseError {
        failures.sort_by_key(|f| f.rank);
        if failures.len() == 1
            && failures[0].cause == PhaseCause::Injected(FaultKind::MailboxCorruption)
        {
            let f = &failures[0];
            return PhaseError::Corruption {
                epoch: f.epoch,
                rank: f.rank.unwrap_or(0),
                lane: f.lane,
            };
        }
        let epoch = failures.first().map_or(epoch, |f| f.epoch);
        PhaseError::RankPanic { epoch, failures }
    }
}

fn rank_failure(
    epoch: u64,
    rank: Option<usize>,
    lane: Option<usize>,
    payload: Box<dyn Any + Send>,
) -> RankFailure {
    match payload.downcast::<InjectedFault>() {
        Ok(f) => RankFailure {
            epoch: f.epoch,
            rank: rank.or(Some(f.rank)),
            lane,
            cause: PhaseCause::Injected(f.kind),
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            RankFailure {
                epoch,
                rank,
                lane,
                cause: PhaseCause::Panic(msg),
            }
        }
    }
}

impl fmt::Display for PhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseError::RankPanic { epoch, failures } => {
                write!(f, "phase failed in epoch {epoch}: ")?;
                for (i, failure) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{failure}")?;
                }
                Ok(())
            }
            PhaseError::Corruption { epoch, rank, lane } => {
                write!(
                    f,
                    "corrupted mailbox payload on rank {rank} in epoch {epoch}"
                )?;
                if let Some(l) = lane {
                    write!(f, " (lane {l})")?;
                }
                Ok(())
            }
            PhaseError::Straggler {
                epoch,
                rank,
                lane,
                waited,
                progress,
            } => write!(
                f,
                "straggler in epoch {epoch}: lane {lane} (rank {rank}) missed the barrier \
                 deadline after {waited:?}; per-lane progress {progress:?}"
            ),
        }
    }
}

impl std::error::Error for PhaseError {}

/// What the executor does when a phase fails.
///
/// Recovery exploits the determinism contract: a failed phase whose charge
/// ledgers were never replayed left the machine untouched, and the executor
/// snapshots the rest of the program state (array shards, clocks, stats)
/// before each sweep — so *retry is a no-op under determinism*: the
/// recovered run is bit-identical (values, clock f64 bits, statistics) to a
/// run in which the fault never fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Surface the failure to the caller (the default).
    #[default]
    Abort,
    /// Restore the pre-sweep snapshot and rerun the failed sweep, up to
    /// `max_attempts` times, sleeping `backoff` between attempts.
    RetryPhase {
        /// Attempts before giving up (0 behaves like [`RecoveryPolicy::Abort`]).
        max_attempts: u32,
        /// Wall-clock sleep between attempts.
        backoff: Duration,
    },
    /// Restore the last every-K-epochs checkpoint, replay the journalled
    /// sweeps since it, then rerun the failed sweep.
    RollbackToCheckpoint,
    /// Switch the backend to inline sequential execution (the
    /// [`Machine`](crate::Machine) oracle path) and rerun from the
    /// pre-sweep snapshot — bit-identical by the determinism contract.
    DegradeToMachine,
}
