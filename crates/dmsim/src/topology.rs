//! Interconnect topologies and hop-count computation.

use crate::config::Topology;

/// Number of network hops between processors `a` and `b` under `topology`
/// with `nprocs` total processors.
///
/// The hop count feeds the per-hop term of the cost model; it never affects
/// which data is delivered.
pub fn hops(topology: Topology, nprocs: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < nprocs && b < nprocs, "processor id out of range");
    if a == b {
        return 0;
    }
    match topology {
        Topology::FullyConnected => 1,
        Topology::Hypercube => (a ^ b).count_ones() as usize,
        Topology::Ring => {
            let d = (a as isize - b as isize).unsigned_abs();
            d.min(nprocs - d)
        }
        Topology::Mesh2D => {
            let cols = mesh_cols(nprocs);
            let (ar, ac) = (a / cols, a % cols);
            let (br, bc) = (b / cols, b % cols);
            ar.abs_diff(br) + ac.abs_diff(bc)
        }
    }
}

/// Number of columns used for the [`Topology::Mesh2D`] layout: the largest
/// divisor of a square-ish factorization, falling back to a single row when
/// `nprocs` is prime.
pub fn mesh_cols(nprocs: usize) -> usize {
    if nprocs == 0 {
        return 1;
    }
    let mut best = 1;
    let mut d = 1;
    while d * d <= nprocs {
        if nprocs.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    nprocs / best
}

/// Diameter of the network: the maximum hop count over all processor pairs.
pub fn diameter(topology: Topology, nprocs: usize) -> usize {
    match topology {
        Topology::FullyConnected => usize::from(nprocs > 1),
        Topology::Hypercube => {
            if nprocs <= 1 {
                0
            } else {
                (usize::BITS - (nprocs - 1).leading_zeros()) as usize
            }
        }
        Topology::Ring => nprocs / 2,
        Topology::Mesh2D => {
            let cols = mesh_cols(nprocs);
            let rows = nprocs.div_ceil(cols);
            (rows - 1) + (cols - 1)
        }
    }
}

/// The processors a tree-structured collective visits, as (parent, child)
/// edges of a binomial tree rooted at `root`. Used by the collectives module
/// both to move data and to charge per-hop costs consistently.
pub fn binomial_tree_edges(nprocs: usize, root: usize) -> Vec<(usize, usize)> {
    // Work in a rotated space where the root is 0, then rotate back.
    let mut edges = Vec::with_capacity(nprocs.saturating_sub(1));
    if nprocs <= 1 {
        return edges;
    }
    let rotate = |v: usize| (v + root) % nprocs;
    // Top-down recursive doubling: at each round the set of reached nodes
    // doubles, so parents always appear in the edge list before their
    // children.
    let mut stride = nprocs.next_power_of_two() / 2;
    while stride >= 1 {
        for p in (0..nprocs).step_by(stride * 2) {
            if p + stride < nprocs {
                edges.push((rotate(p), rotate(p + stride)));
            }
        }
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_hops_are_hamming_distance() {
        assert_eq!(hops(Topology::Hypercube, 8, 0b000, 0b111), 3);
        assert_eq!(hops(Topology::Hypercube, 8, 0b101, 0b100), 1);
        assert_eq!(hops(Topology::Hypercube, 8, 3, 3), 0);
    }

    #[test]
    fn ring_hops_wrap_around() {
        assert_eq!(hops(Topology::Ring, 8, 0, 7), 1);
        assert_eq!(hops(Topology::Ring, 8, 0, 4), 4);
        assert_eq!(hops(Topology::Ring, 8, 2, 5), 3);
    }

    #[test]
    fn mesh_hops_are_manhattan() {
        // 4x4 mesh for 16 procs
        assert_eq!(mesh_cols(16), 4);
        assert_eq!(hops(Topology::Mesh2D, 16, 0, 15), 6);
        assert_eq!(hops(Topology::Mesh2D, 16, 5, 6), 1);
    }

    #[test]
    fn fully_connected_is_single_hop() {
        assert_eq!(hops(Topology::FullyConnected, 64, 3, 60), 1);
        assert_eq!(hops(Topology::FullyConnected, 64, 3, 3), 0);
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(Topology::Hypercube, 16), 4);
        assert_eq!(diameter(Topology::Hypercube, 1), 0);
        assert_eq!(diameter(Topology::FullyConnected, 16), 1);
        assert_eq!(diameter(Topology::Ring, 8), 4);
    }

    #[test]
    fn binomial_tree_spans_all_processors() {
        for &p in &[1usize, 2, 3, 4, 7, 8, 16, 33] {
            for root in [0, p - 1] {
                let edges = binomial_tree_edges(p, root);
                assert_eq!(edges.len(), p - 1, "p={p} root={root}");
                let mut reached = vec![false; p];
                reached[root] = true;
                for &(parent, child) in &edges {
                    assert!(reached[parent], "parent {parent} visited before child");
                    assert!(!reached[child], "child {child} reached twice");
                    reached[child] = true;
                }
                assert!(reached.iter().all(|&r| r));
            }
        }
    }

    #[test]
    fn mesh_cols_prime_falls_back_to_row() {
        assert_eq!(mesh_cols(7), 7);
        assert_eq!(mesh_cols(12), 4);
        assert_eq!(mesh_cols(1), 1);
    }
}
