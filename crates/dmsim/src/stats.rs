//! Per-phase statistics: message counts, byte volumes, and modeled times.
//!
//! The benchmark harness labels every communication phase ("inspector",
//! "remap", "executor", …) and later asks the registry for aggregated counts.
//! The registry is purely observational — removing it would not change any
//! delivered data or any clock value.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Broad classification of a phase, mirroring the row labels of the paper's
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PhaseKind {
    /// GeoCoL graph generation.
    GraphGeneration,
    /// Running a data partitioner.
    Partitioner,
    /// Inspector preprocessing (schedule building, index translation).
    Inspector,
    /// Array / iteration remapping.
    Remap,
    /// Executor (communication + computation of the actual loop).
    Executor,
    /// Checkpoint refresh / rollback bookkeeping for recovery.
    Checkpoint,
    /// Anything else.
    Other,
}

impl PhaseKind {
    /// Number of kinds (the size of dense per-kind tables).
    pub const COUNT: usize = 7;

    /// Every kind in declaration order — the dense-index space used by the
    /// metrics registry's fixed-size per-kind tables.
    pub const ALL: [PhaseKind; PhaseKind::COUNT] = [
        PhaseKind::GraphGeneration,
        PhaseKind::Partitioner,
        PhaseKind::Inspector,
        PhaseKind::Remap,
        PhaseKind::Executor,
        PhaseKind::Checkpoint,
        PhaseKind::Other,
    ];

    /// Dense index of this kind within [`PhaseKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PhaseKind::GraphGeneration => 0,
            PhaseKind::Partitioner => 1,
            PhaseKind::Inspector => 2,
            PhaseKind::Remap => 3,
            PhaseKind::Executor => 4,
            PhaseKind::Checkpoint => 5,
            PhaseKind::Other => 6,
        }
    }

    /// Human-readable label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::GraphGeneration => "graph generation",
            PhaseKind::Partitioner => "partitioner",
            PhaseKind::Inspector => "inspector",
            PhaseKind::Remap => "remap",
            PhaseKind::Executor => "executor",
            PhaseKind::Checkpoint => "checkpoint",
            PhaseKind::Other => "other",
        }
    }
}

/// Communication statistics aggregated over one or more phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Total number of point-to-point messages.
    pub messages: usize,
    /// Total bytes moved.
    pub bytes: usize,
    /// Number of communication phases (exchanges / collectives).
    pub phases: usize,
    /// Modeled communication seconds summed over processors.
    pub comm_seconds: f64,
}

impl CommStats {
    /// Merge another statistics record into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.phases += other.phases;
        self.comm_seconds += other.comm_seconds;
    }
}

/// Record of a single named phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Free-form label supplied by the caller (e.g. `"executor iter 12"`).
    pub label: String,
    /// Classification.
    pub kind: PhaseKind,
    /// Statistics for this phase alone.
    pub stats: CommStats,
}

/// Registry of phase records plus totals grouped by [`PhaseKind`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsRegistry {
    records: Vec<PhaseRecord>,
    by_kind: BTreeMap<PhaseKind, CommStats>,
    /// Totals for quiet phases that carried a static label (e.g. the fused
    /// sweep's `executor:fused-sweep`) — a sub-attribution of `by_kind`,
    /// never added on top of it.
    by_label: BTreeMap<&'static str, CommStats>,
    /// Communication that did NOT happen, by label — e.g. the messages an
    /// incremental schedule avoided fetching because earlier loops' ghosts
    /// were already resident. Purely observational bookkeeping: never part
    /// of [`StatsRegistry::grand_totals`] or any per-kind total.
    saved: BTreeMap<&'static str, CommStats>,
    current_kind: Option<PhaseKind>,
}

impl StatsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the kind attributed to subsequently recorded phases. Returns the
    /// previous value so callers can restore it.
    pub fn set_current_kind(&mut self, kind: Option<PhaseKind>) -> Option<PhaseKind> {
        std::mem::replace(&mut self.current_kind, kind)
    }

    /// The kind currently attributed to new phases.
    pub fn current_kind(&self) -> Option<PhaseKind> {
        self.current_kind
    }

    /// Record a completed phase.
    pub fn record(&mut self, label: &str, stats: CommStats) {
        let kind = self.current_kind.unwrap_or(PhaseKind::Other);
        self.by_kind.entry(kind).or_default().merge(&stats);
        self.records.push(PhaseRecord {
            label: label.to_string(),
            kind,
            stats,
        });
    }

    /// Merge a phase's statistics into the per-kind totals without keeping a
    /// labelled [`PhaseRecord`]. This is the executor hot path: after the
    /// first phase of a given kind it performs no heap allocation, which is
    /// what lets a steady-state gather/scatter iteration run allocation-free.
    /// Quiet phases are invisible to [`StatsRegistry::records`] but fully
    /// counted by [`StatsRegistry::totals_for`] / [`StatsRegistry::grand_totals`].
    pub fn record_quiet(&mut self, stats: CommStats) {
        let kind = self.current_kind.unwrap_or(PhaseKind::Other);
        self.by_kind.entry(kind).or_default().merge(&stats);
    }

    /// [`StatsRegistry::record_quiet`], additionally attributing the
    /// phase's statistics to a `'static` label bucket so families of quiet
    /// phases (fused sweeps vs split per-stage phases) stay distinguishable
    /// in recorded tables. The label totals are a *sub-attribution* of the
    /// per-kind totals: [`StatsRegistry::grand_totals`] is unchanged. After
    /// the first phase with a given label this allocates nothing.
    pub fn record_quiet_labelled(&mut self, label: &'static str, stats: CommStats) {
        self.record_quiet(stats);
        self.by_label.entry(label).or_default().merge(&stats);
    }

    /// Aggregate statistics for every quiet phase recorded under `label`
    /// via [`StatsRegistry::record_quiet_labelled`].
    pub fn totals_labelled(&self, label: &str) -> CommStats {
        self.by_label.get(label).copied().unwrap_or_default()
    }

    /// The per-label quiet-phase totals, in label order.
    pub fn labelled_totals(&self) -> impl Iterator<Item = (&'static str, CommStats)> + '_ {
        self.by_label.iter().map(|(l, s)| (*l, *s))
    }

    /// All phase records in execution order.
    pub fn records(&self) -> &[PhaseRecord] {
        &self.records
    }

    /// The recorded phases whose label matches `label` exactly — e.g. every
    /// `"L1:schedule-build"` request exchange of one loop's inspector runs.
    pub fn records_labelled<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = &'a PhaseRecord> + 'a {
        self.records.iter().filter(move |r| r.label == label)
    }

    /// Total messages across the phases labelled `label` (a convenience for
    /// message-count assertions in tests and perf tooling).
    pub fn messages_labelled(&self, label: &str) -> usize {
        self.records_labelled(label).map(|r| r.stats.messages).sum()
    }

    /// Note communication that was *avoided* under `label` — `messages`
    /// point-to-point messages and `bytes` of payload that would have been
    /// charged without some optimization (schedule merging, incremental
    /// schedules). One call counts one avoided-or-shrunk phase. The saved
    /// bucket is bookkeeping only: clocks and real totals are untouched.
    /// After the first note with a given label this allocates nothing.
    pub fn note_saved(&mut self, label: &'static str, messages: usize, bytes: usize) {
        self.saved.entry(label).or_default().merge(&CommStats {
            messages,
            bytes,
            phases: 1,
            comm_seconds: 0.0,
        });
    }

    /// Aggregate savings noted under `label` via [`StatsRegistry::note_saved`].
    pub fn saved_labelled(&self, label: &str) -> CommStats {
        self.saved.get(label).copied().unwrap_or_default()
    }

    /// The per-label savings totals, in label order.
    pub fn saved_totals(&self) -> impl Iterator<Item = (&'static str, CommStats)> + '_ {
        self.saved.iter().map(|(l, s)| (*l, *s))
    }

    /// Aggregate statistics for a phase kind.
    pub fn totals_for(&self, kind: PhaseKind) -> CommStats {
        self.by_kind.get(&kind).copied().unwrap_or_default()
    }

    /// Aggregate statistics over every phase.
    pub fn grand_totals(&self) -> CommStats {
        let mut t = CommStats::default();
        for s in self.by_kind.values() {
            t.merge(s);
        }
        t
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records and totals.
    pub fn clear(&mut self) {
        self.records.clear();
        self.by_kind.clear();
        self.by_label.clear();
        self.saved.clear();
    }

    /// Write this registry's state into `snap`, reusing its buffers.
    ///
    /// Labelled records are append-only (only [`StatsRegistry::clear`]
    /// removes them), so the snapshot stores just their count and restore
    /// truncates — no record contents are copied, which keeps steady-state
    /// checkpointing allocation-free.
    pub fn snapshot_into(&self, snap: &mut StatsSnapshot) {
        snap.records_len = self.records.len();
        copy_btree_values(&self.by_kind, &mut snap.by_kind);
        copy_btree_values(&self.by_label, &mut snap.by_label);
        copy_btree_values(&self.saved, &mut snap.saved);
        snap.current_kind = self.current_kind;
    }

    /// Roll this registry back to `snap`. Valid only if the registry evolved
    /// forward from the snapshot without an intervening
    /// [`StatsRegistry::clear`].
    pub fn restore_from(&mut self, snap: &StatsSnapshot) {
        debug_assert!(
            self.records.len() >= snap.records_len,
            "registry was cleared since the snapshot was taken"
        );
        self.records.truncate(snap.records_len);
        copy_btree_values(&snap.by_kind, &mut self.by_kind);
        copy_btree_values(&snap.by_label, &mut self.by_label);
        copy_btree_values(&snap.saved, &mut self.saved);
        self.current_kind = snap.current_kind;
    }
}

/// A reusable snapshot of a [`StatsRegistry`] (see
/// [`StatsRegistry::snapshot_into`]).
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    records_len: usize,
    by_kind: BTreeMap<PhaseKind, CommStats>,
    by_label: BTreeMap<&'static str, CommStats>,
    saved: BTreeMap<&'static str, CommStats>,
    current_kind: Option<PhaseKind>,
}

impl serde_json::ToValue for CommStats {
    fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "messages": self.messages,
            "bytes": self.bytes,
            "phases": self.phases,
            "comm_seconds": self.comm_seconds,
        })
    }
}

impl serde_json::ToValue for PhaseRecord {
    fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "label": self.label.clone(),
            "kind": self.kind.label(),
            "stats": serde_json::ToValue::to_value(&self.stats),
        })
    }
}

impl serde_json::ToValue for StatsRegistry {
    fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "records": self.records.clone(),
            "by_kind": self
                .by_kind
                .iter()
                .map(|(k, s)| {
                    serde_json::json!({
                        "kind": k.label(),
                        "stats": serde_json::ToValue::to_value(s),
                    })
                })
                .collect::<Vec<_>>(),
            "by_label": self
                .by_label
                .iter()
                .map(|(l, s)| {
                    serde_json::json!({
                        "label": *l,
                        "stats": serde_json::ToValue::to_value(s),
                    })
                })
                .collect::<Vec<_>>(),
            "saved": self
                .saved
                .iter()
                .map(|(l, s)| {
                    serde_json::json!({
                        "label": *l,
                        "stats": serde_json::ToValue::to_value(s),
                    })
                })
                .collect::<Vec<_>>(),
        })
    }
}

/// Copy `src`'s entries into `dst`, overwriting values in place when the key
/// sets already match (the steady state — no allocation) and rebuilding the
/// map otherwise.
pub(crate) fn copy_btree_values<K: Ord + Copy, V: Copy>(
    src: &BTreeMap<K, V>,
    dst: &mut BTreeMap<K, V>,
) {
    if dst.len() == src.len() && dst.keys().eq(src.keys()) {
        for (d, s) in dst.values_mut().zip(src.values()) {
            *d = *s;
        }
    } else {
        dst.clear();
        dst.extend(src.iter().map(|(k, v)| (*k, *v)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(messages: usize, bytes: usize) -> CommStats {
        CommStats {
            messages,
            bytes,
            phases: 1,
            comm_seconds: bytes as f64 * 1e-6,
        }
    }

    #[test]
    fn registry_groups_by_kind() {
        let mut reg = StatsRegistry::new();
        reg.set_current_kind(Some(PhaseKind::Inspector));
        reg.record("build schedule", stats(10, 100));
        reg.set_current_kind(Some(PhaseKind::Executor));
        reg.record("gather", stats(5, 50));
        reg.record("gather", stats(5, 50));

        assert_eq!(reg.len(), 3);
        assert_eq!(reg.totals_for(PhaseKind::Inspector).messages, 10);
        assert_eq!(reg.totals_for(PhaseKind::Executor).messages, 10);
        assert_eq!(reg.totals_for(PhaseKind::Executor).bytes, 100);
        assert_eq!(reg.totals_for(PhaseKind::Remap).messages, 0);
        assert_eq!(reg.grand_totals().messages, 20);
        assert_eq!(reg.grand_totals().phases, 3);
    }

    #[test]
    fn unlabelled_phases_fall_into_other() {
        let mut reg = StatsRegistry::new();
        reg.record("misc", stats(1, 8));
        assert_eq!(reg.totals_for(PhaseKind::Other).messages, 1);
    }

    #[test]
    fn set_current_kind_returns_previous() {
        let mut reg = StatsRegistry::new();
        assert_eq!(reg.set_current_kind(Some(PhaseKind::Remap)), None);
        assert_eq!(
            reg.set_current_kind(Some(PhaseKind::Executor)),
            Some(PhaseKind::Remap)
        );
        assert_eq!(reg.current_kind(), Some(PhaseKind::Executor));
    }

    #[test]
    fn clear_resets_everything() {
        let mut reg = StatsRegistry::new();
        reg.record("x", stats(1, 1));
        reg.clear();
        assert!(reg.is_empty());
        assert_eq!(reg.grand_totals().messages, 0);
    }

    #[test]
    fn dense_index_round_trips_through_all() {
        assert_eq!(PhaseKind::ALL.len(), PhaseKind::COUNT);
        for (i, kind) in PhaseKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn labels_are_human_readable() {
        assert_eq!(PhaseKind::Executor.label(), "executor");
        assert_eq!(PhaseKind::GraphGeneration.label(), "graph generation");
        assert_eq!(PhaseKind::Checkpoint.label(), "checkpoint");
    }

    #[test]
    fn quiet_labelled_subattributes_without_double_counting() {
        let mut reg = StatsRegistry::new();
        reg.set_current_kind(Some(PhaseKind::Executor));
        reg.record_quiet_labelled("executor:fused-sweep", stats(4, 40));
        reg.record_quiet(stats(1, 10));
        assert_eq!(reg.totals_labelled("executor:fused-sweep").messages, 4);
        assert_eq!(reg.totals_for(PhaseKind::Executor).messages, 5);
        assert_eq!(reg.grand_totals().messages, 5, "labels never double count");
        assert_eq!(
            reg.labelled_totals().collect::<Vec<_>>(),
            vec![("executor:fused-sweep", stats(4, 40))]
        );
        assert!(
            reg.records().is_empty(),
            "labelled quiet phases keep no record"
        );
    }

    #[test]
    fn snapshot_round_trips_label_buckets() {
        let mut reg = StatsRegistry::new();
        reg.record_quiet_labelled("a", stats(1, 8));
        let mut snap = StatsSnapshot::default();
        reg.snapshot_into(&mut snap);
        reg.record_quiet_labelled("a", stats(2, 16));
        reg.restore_from(&snap);
        assert_eq!(reg.totals_labelled("a").messages, 1);
        reg.clear();
        assert_eq!(reg.totals_labelled("a").messages, 0);
    }

    #[test]
    fn saved_bucket_never_touches_real_totals() {
        let mut reg = StatsRegistry::new();
        reg.set_current_kind(Some(PhaseKind::Inspector));
        reg.record("build", stats(3, 24));
        reg.note_saved("L2:schedule-build", 2, 16);
        reg.note_saved("L2:schedule-build", 1, 8);
        reg.note_saved("executor:gather", 4, 32);
        assert_eq!(reg.saved_labelled("L2:schedule-build").messages, 3);
        assert_eq!(reg.saved_labelled("L2:schedule-build").bytes, 24);
        assert_eq!(reg.saved_labelled("L2:schedule-build").phases, 2);
        assert_eq!(reg.saved_labelled("unknown").messages, 0);
        assert_eq!(
            reg.saved_totals().map(|(l, _)| l).collect::<Vec<_>>(),
            vec!["L2:schedule-build", "executor:gather"]
        );
        // Real totals see only the real phase.
        assert_eq!(reg.grand_totals().messages, 3);
        assert_eq!(reg.totals_for(PhaseKind::Inspector).messages, 3);
        reg.clear();
        assert_eq!(reg.saved_labelled("L2:schedule-build").messages, 0);
    }

    #[test]
    fn snapshot_round_trips_the_saved_bucket() {
        let mut reg = StatsRegistry::new();
        reg.note_saved("a", 1, 8);
        let mut snap = StatsSnapshot::default();
        reg.snapshot_into(&mut snap);
        reg.note_saved("a", 2, 16);
        reg.note_saved("b", 5, 40);
        reg.restore_from(&snap);
        assert_eq!(reg.saved_labelled("a").messages, 1);
        assert_eq!(reg.saved_labelled("b").messages, 0);
    }

    #[test]
    fn registry_renders_to_json() {
        let mut reg = StatsRegistry::new();
        reg.set_current_kind(Some(PhaseKind::Inspector));
        reg.record("build", stats(3, 24));
        reg.record_quiet_labelled("executor:fused-sweep", stats(1, 8));
        reg.note_saved("L2:schedule-build", 2, 16);
        let json = serde_json::to_string(&serde_json::ToValue::to_value(&reg)).unwrap();
        assert!(json.contains("\"build\""));
        assert!(json.contains("executor:fused-sweep"));
        assert!(json.contains("\"comm_seconds\""));
        assert!(json.contains("\"saved\""));
        assert!(json.contains("L2:schedule-build"));
    }
}
