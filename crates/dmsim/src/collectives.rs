//! Collective operations built on the machine primitives: broadcast,
//! reduction, all-reduce, all-gather and all-to-all-v.
//!
//! The CHAOS runtime uses collectives in three places: distributing the
//! irregular map array when a translation table is built, combining
//! partitioner results, and the global "any indirection array modified?"
//! checks of the schedule-reuse machinery. Each collective both moves data
//! (exactly) and charges the binomial-tree communication cost.

use crate::exchange::ExchangePlan;
use crate::machine::{Machine, ProcId};
use crate::topology::binomial_tree_edges;

/// Reduction operators supported by [`reduce_f64`] and [`all_reduce_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// Apply the operator to two f64 operands.
    #[inline]
    pub fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// Apply the operator to two u64 operands.
    #[inline]
    pub fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Broadcast `data` from `root` to every processor, returning one copy per
/// processor (index = processor id).
pub fn broadcast<T: Clone + Send>(
    machine: &mut Machine,
    label: &str,
    root: ProcId,
    data: &[T],
) -> Vec<Vec<T>> {
    let p = machine.nprocs();
    let mut plan = ExchangePlan::new(p);
    for (parent, child) in binomial_tree_edges(p, root) {
        // Logically the payload travels down the tree; for cost purposes we
        // charge each tree edge a full copy of the data.
        plan.push(parent, child, data.to_vec());
    }
    machine.exchange(label, plan);
    (0..p).map(|_| data.to_vec()).collect()
}

/// Reduce per-processor `f64` vectors element-wise onto `root`. Every input
/// slice must have the same length. Returns the reduced vector (only
/// meaningful on `root`, but returned to the caller directly since the
/// simulator shares an address space).
pub fn reduce_f64(
    machine: &mut Machine,
    label: &str,
    root: ProcId,
    op: ReduceOp,
    contributions: &[Vec<f64>],
) -> Vec<f64> {
    assert_eq!(contributions.len(), machine.nprocs());
    let len = contributions.first().map(Vec::len).unwrap_or(0);
    assert!(
        contributions.iter().all(|c| c.len() == len),
        "all reduction contributions must have equal length"
    );
    let p = machine.nprocs();
    let mut plan = ExchangePlan::new(p);
    for (parent, child) in binomial_tree_edges(p, root) {
        // Reduction traffic flows child -> parent.
        plan.push(child, parent, contributions[child].clone());
    }
    machine.exchange(label, plan);
    let mut acc = contributions[root].clone();
    for (pid, c) in contributions.iter().enumerate() {
        if pid == root {
            continue;
        }
        for (a, &b) in acc.iter_mut().zip(c.iter()) {
            *a = op.apply_f64(*a, b);
        }
    }
    // Charge the combine flops on the root's side of the tree; in a real
    // binomial reduction the combines are distributed, so charge log2(P)
    // levels of `len` operations on every processor.
    let levels = if p > 1 {
        (usize::BITS - (p - 1).leading_zeros()) as f64
    } else {
        0.0
    };
    machine.charge_compute_all(levels * len as f64);
    acc
}

/// All-reduce: reduce then broadcast. Returns one copy of the result per
/// processor.
pub fn all_reduce_f64(
    machine: &mut Machine,
    label: &str,
    op: ReduceOp,
    contributions: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    let reduced = reduce_f64(machine, label, 0, op, contributions);
    broadcast(machine, label, 0, &reduced)
}

/// Reduce per-processor `u64` scalars with `op`, returning the combined value
/// visible on every processor (an all-reduce of a single word). This is the
/// primitive behind the schedule-reuse "has anyone modified this DAD?" vote.
pub fn all_reduce_scalar_u64(
    machine: &mut Machine,
    label: &str,
    op: ReduceOp,
    contributions: &[u64],
) -> u64 {
    assert_eq!(contributions.len(), machine.nprocs());
    let p = machine.nprocs();
    let mut plan = ExchangePlan::new(p);
    for (parent, child) in binomial_tree_edges(p, 0) {
        plan.push(child, parent, vec![contributions[child]]);
    }
    machine.exchange(label, plan);
    let combined = contributions
        .iter()
        .copied()
        .reduce(|a, b| op.apply_u64(a, b))
        .unwrap_or(0);
    // Broadcast the single word back down.
    let mut plan = ExchangePlan::new(p);
    for (parent, child) in binomial_tree_edges(p, 0) {
        plan.push(parent, child, vec![combined]);
    }
    machine.exchange(label, plan);
    combined
}

/// All-gather: every processor contributes a vector; every processor receives
/// the concatenation in processor order.
pub fn all_gather<T: Clone + Send>(
    machine: &mut Machine,
    label: &str,
    contributions: &[Vec<T>],
) -> Vec<T> {
    assert_eq!(contributions.len(), machine.nprocs());
    let p = machine.nprocs();
    // Cost: ring all-gather — every processor sends its contribution to every
    // other processor over p-1 rounds; we approximate with a single exchange
    // containing all pairs, which charges the same volume.
    let mut plan = ExchangePlan::new(p);
    for (src, c) in contributions.iter().enumerate() {
        for dst in 0..p {
            if src != dst {
                plan.push(src, dst, c.clone());
            }
        }
    }
    machine.exchange(label, plan);
    let mut out = Vec::with_capacity(contributions.iter().map(Vec::len).sum());
    for c in contributions {
        out.extend_from_slice(c);
    }
    out
}

/// All-to-all-v: `send[src][dst]` is the payload from `src` to `dst`. Returns
/// `recv[dst][src]` (empty vectors where nothing was sent).
pub fn all_to_all_v<T: Clone + Send>(
    machine: &mut Machine,
    label: &str,
    send: Vec<Vec<Vec<T>>>,
) -> Vec<Vec<Vec<T>>> {
    let p = machine.nprocs();
    assert_eq!(send.len(), p);
    let mut plan = ExchangePlan::new(p);
    for (src, row) in send.iter().enumerate() {
        assert_eq!(row.len(), p, "all_to_all_v send matrix must be P x P");
        for (dst, payload) in row.iter().enumerate() {
            if !payload.is_empty() {
                plan.push(src, dst, payload.clone());
            }
        }
    }
    machine.exchange(label, plan);
    let mut recv: Vec<Vec<Vec<T>>> = (0..p)
        .map(|_| (0..p).map(|_| Vec::new()).collect())
        .collect();
    for (src, row) in send.into_iter().enumerate() {
        for (dst, payload) in row.into_iter().enumerate() {
            recv[dst][src] = payload;
        }
    }
    recv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineConfig::unit(p))
    }

    #[test]
    fn broadcast_delivers_copies_everywhere() {
        let mut m = machine(8);
        let copies = broadcast(&mut m, "bcast", 3, &[1u32, 2, 3]);
        assert_eq!(copies.len(), 8);
        assert!(copies.iter().all(|c| c == &vec![1, 2, 3]));
        assert_eq!(m.stats().grand_totals().messages, 7);
    }

    #[test]
    fn reduce_sum_matches_sequential() {
        let mut m = machine(4);
        let contributions: Vec<Vec<f64>> = (0..4).map(|p| vec![p as f64, 1.0]).collect();
        let r = reduce_f64(&mut m, "reduce", 0, ReduceOp::Sum, &contributions);
        assert_eq!(r, vec![0.0 + 1.0 + 2.0 + 3.0, 4.0]);
    }

    #[test]
    fn reduce_max_and_min() {
        let mut m = machine(4);
        let contributions: Vec<Vec<f64>> = vec![vec![5.0], vec![-2.0], vec![9.0], vec![0.0]];
        assert_eq!(
            reduce_f64(&mut m, "max", 1, ReduceOp::Max, &contributions),
            vec![9.0]
        );
        assert_eq!(
            reduce_f64(&mut m, "min", 1, ReduceOp::Min, &contributions),
            vec![-2.0]
        );
    }

    #[test]
    fn all_reduce_gives_every_processor_the_result() {
        let mut m = machine(4);
        let contributions: Vec<Vec<f64>> = (0..4).map(|p| vec![p as f64]).collect();
        let copies = all_reduce_f64(&mut m, "allreduce", ReduceOp::Sum, &contributions);
        assert_eq!(copies.len(), 4);
        assert!(copies.iter().all(|c| c == &vec![6.0]));
    }

    #[test]
    fn all_reduce_scalar_max() {
        let mut m = machine(8);
        let v = all_reduce_scalar_u64(&mut m, "ts", ReduceOp::Max, &[3, 9, 1, 7, 0, 2, 9, 4]);
        assert_eq!(v, 9);
        let v = all_reduce_scalar_u64(&mut m, "ts", ReduceOp::Sum, &[1; 8]);
        assert_eq!(v, 8);
    }

    #[test]
    fn all_gather_concatenates_in_proc_order() {
        let mut m = machine(3);
        let contributions = vec![vec![0u32], vec![10, 11], vec![20]];
        let out = all_gather(&mut m, "ag", &contributions);
        assert_eq!(out, vec![0, 10, 11, 20]);
        // 3 procs, each sends to 2 others
        assert_eq!(m.stats().grand_totals().messages, 6);
    }

    #[test]
    fn all_to_all_v_routes_payloads() {
        let mut m = machine(3);
        let mut send: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); 3]; 3];
        send[0][2] = vec![100];
        send[1][0] = vec![7, 8];
        send[2][2] = vec![42]; // self
        let recv = all_to_all_v(&mut m, "a2a", send);
        assert_eq!(recv[2][0], vec![100]);
        assert_eq!(recv[0][1], vec![7, 8]);
        assert_eq!(recv[2][2], vec![42]);
        assert!(recv[1].iter().all(Vec::is_empty));
    }

    #[test]
    fn single_processor_collectives_are_trivial() {
        let mut m = machine(1);
        let copies = broadcast(&mut m, "b", 0, &[1u8]);
        assert_eq!(copies, vec![vec![1]]);
        let r = reduce_f64(&mut m, "r", 0, ReduceOp::Sum, &[vec![2.0]]);
        assert_eq!(r, vec![2.0]);
        assert_eq!(all_reduce_scalar_u64(&mut m, "s", ReduceOp::Max, &[5]), 5);
        assert_eq!(m.stats().grand_totals().messages, 0);
    }
}
