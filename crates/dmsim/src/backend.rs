//! The SPMD execution engine behind the runtime: rank-local kernels, charge
//! ledgers and payload mailboxes.
//!
//! The CHAOS/PARTI runtime is an SPMD library — on a real machine every node
//! runs the inspector/executor code concurrently. This module abstracts *how*
//! those per-rank code regions execute behind the [`Backend`] trait, with two
//! engines:
//!
//! * [`Machine`] itself — the deterministic sequential oracle: rank kernels
//!   run one after another on the driver thread in ascending rank order;
//! * [`ThreadedBackend`] — rank-parallel execution: every virtual processor
//!   runs its kernel on its own OS thread (`std::thread::scope`);
//! * [`PooledBackend`](crate::pool::PooledBackend) — rank-parallel execution
//!   on a pool of **long-lived** workers driven by broadcast phase
//!   descriptors and an epoch barrier, removing the per-phase thread-spawn
//!   cost (see [`crate::pool`]).
//!
//! # The determinism contract
//!
//! The threaded engine must be **byte-identical** to the sequential one —
//! same array contents, same ghost buffers, same modeled clocks, same
//! [`CommStats`](crate::stats::CommStats) — not merely "equivalent". That is
//! achieved structurally rather than by tolerance:
//!
//! * **Data** — a kernel may mutate only its own rank's state (the `St` item
//!   handed to it) and read shared inputs; rank-disjoint writes compose the
//!   same way regardless of scheduling.
//! * **Costs** — kernels never touch the [`Machine`] directly. They charge
//!   through a [`RankCtx`], which either applies charges immediately (the
//!   sequential engine) or records them into a per-rank [ledger](RankLedger)
//!   that is *replayed in ascending rank order* after the threads join (the
//!   threaded engine). Both paths perform the exact same sequence of
//!   floating-point additions on the exact same accumulators, so clocks and
//!   per-phase statistics agree bit-for-bit.
//! * **Payloads** — when ranks must hand values to each other inside one
//!   phase they post into per-rank [mailboxes](Outbox): rank `r` owns the
//!   outgoing row `r` of a `P × P` matrix during the pack stage (no locks,
//!   no contention) and reads column `r` through an [`Inbox`] in the unpack
//!   stage, after a join barrier. Cell `(from, to)` is written by exactly
//!   one rank and read by exactly one rank, in different stages.
//!
//! The `tests/backend_equivalence.rs` property suite exercises this contract
//! over randomized workloads, including with more ranks than hardware cores.

use crate::fault::{self, CaughtPanic, FaultPlan, PanicBundle, PhaseError};
use crate::machine::{Machine, PhaseCharge, ProcId};
use crate::metrics::{Counter, EngineKind, MetricsRegistry, SpanKind};
use crate::stats::PhaseKind;
use crate::trace::{TraceEventKind, TraceSink};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The label bucket every engine's fused executor sweep attributes its
/// scatter phases to (via [`PhaseEnd::QuietLabelled`]), so fused and split
/// runs stay distinguishable in recorded phase tables.
pub const FUSED_SWEEP_LABEL: &str = "executor:fused-sweep";

/// How an exchange phase is closed: recorded under a label (a
/// [`PhaseRecord`](crate::stats::PhaseRecord) is kept) or quietly (totals
/// only, no allocation — the executor's steady-state path).
#[derive(Debug, Clone, Copy)]
pub enum PhaseEnd<'a> {
    /// Merge the phase into the per-kind totals without keeping a record.
    Quiet,
    /// Record the phase under this label.
    Labelled(&'a str),
    /// Merge the phase into the per-kind totals *and* a static label bucket
    /// (see [`StatsRegistry::record_quiet_labelled`]) without keeping a
    /// record — quiet-path cost, but attributable.
    ///
    /// [`StatsRegistry::record_quiet_labelled`]: crate::stats::StatsRegistry::record_quiet_labelled
    QuietLabelled(&'static str),
}

/// One recorded charge, replayed against the machine in rank order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ChargeEvent {
    /// `units` of local computation on `proc`'s clock.
    Compute { proc: u32, units: f64 },
    /// `words` of local memory traffic on `proc`'s clock.
    Memory { proc: u32, words: f64 },
    /// One point-to-point message, charged to both endpoint clocks and the
    /// current phase statistics.
    P2p { from: u32, to: u32, words: usize },
}

/// Ordered charge log of one rank's kernel execution. Buffers are owned by
/// the backend and reused across phases, so steady-state replay does not
/// allocate once the ledgers have grown to the workload's size.
#[derive(Debug, Default)]
pub struct RankLedger {
    events: Vec<ChargeEvent>,
}

enum Sink<'a> {
    /// Apply charges to the machine immediately (sequential engine).
    Direct {
        machine: &'a mut Machine,
        phase: Option<&'a mut PhaseCharge>,
    },
    /// Record charges for later in-order replay (threaded / pooled engines).
    Record {
        events: &'a mut Vec<ChargeEvent>,
        in_phase: bool,
    },
}

/// The per-rank execution context handed to every SPMD kernel: the rank id
/// plus the only channel through which a kernel may charge modeled costs.
pub struct RankCtx<'a> {
    rank: usize,
    nprocs: usize,
    sink: Sink<'a>,
}

impl<'a> RankCtx<'a> {
    /// A context that applies charges to the machine immediately (the
    /// sequential engines and driver-side pack stages).
    pub(crate) fn direct(
        rank: usize,
        nprocs: usize,
        machine: &'a mut Machine,
        phase: Option<&'a mut PhaseCharge>,
    ) -> Self {
        RankCtx {
            rank,
            nprocs,
            sink: Sink::Direct { machine, phase },
        }
    }

    /// A context that records charges into `events` for later in-rank-order
    /// replay (the threaded and pooled engines).
    pub(crate) fn recording(
        rank: usize,
        nprocs: usize,
        events: &'a mut Vec<ChargeEvent>,
        in_phase: bool,
    ) -> Self {
        RankCtx {
            rank,
            nprocs,
            sink: Sink::Record { events, in_phase },
        }
    }

    /// The executing virtual processor.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of virtual processors in the machine.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Charge `units` of local computation on processor `proc`'s clock.
    #[inline]
    pub fn charge_compute(&mut self, proc: ProcId, units: f64) {
        match &mut self.sink {
            Sink::Direct { machine, .. } => machine.charge_compute(proc, units),
            Sink::Record { events, .. } => events.push(ChargeEvent::Compute {
                proc: proc as u32,
                units,
            }),
        }
    }

    /// Charge `words` of local memory traffic (packing / unpacking) on
    /// processor `proc`'s clock.
    #[inline]
    pub fn charge_memory(&mut self, proc: ProcId, words: f64) {
        match &mut self.sink {
            Sink::Direct { machine, .. } => machine.charge_memory(proc, words),
            Sink::Record { events, .. } => events.push(ChargeEvent::Memory {
                proc: proc as u32,
                words,
            }),
        }
    }

    /// Charge one point-to-point message of `words` payload words into the
    /// surrounding exchange phase (cost math identical to
    /// [`Machine::charge_p2p`]).
    ///
    /// # Panics
    /// Panics if called from an unpack stage or a compute region — messages
    /// belong to the pack stage of an exchange phase.
    #[inline]
    pub fn charge_p2p(&mut self, from: ProcId, to: ProcId, words: usize) {
        match &mut self.sink {
            Sink::Direct { machine, phase } => {
                let phase = phase
                    .as_mut()
                    .expect("charge_p2p outside an exchange phase's pack stage");
                machine.charge_p2p(phase, from, to, words);
            }
            Sink::Record { events, in_phase } => {
                assert!(
                    *in_phase,
                    "charge_p2p outside an exchange phase's pack stage"
                );
                events.push(ChargeEvent::P2p {
                    from: from as u32,
                    to: to as u32,
                    words,
                });
            }
        }
    }
}

/// A rank's outgoing mailboxes during the pack stage of
/// [`Backend::run_exchange`]: one payload buffer per destination rank.
pub struct Outbox<'a, T> {
    row: &'a mut [Vec<T>],
}

impl<'a, T> Outbox<'a, T> {
    /// Wrap one rank's outgoing mailbox row.
    pub(crate) fn new(row: &'a mut [Vec<T>]) -> Self {
        Outbox { row }
    }

    /// The (initially empty) payload buffer destined for rank `to`.
    #[inline]
    pub fn payload_mut(&mut self, to: ProcId) -> &mut Vec<T> {
        &mut self.row[to]
    }

    /// Append `values` to the payload destined for rank `to`.
    pub fn post<I: IntoIterator<Item = T>>(&mut self, to: ProcId, values: I) {
        self.row[to].extend(values);
    }
}

/// A rank's incoming mailboxes during the unpack stage of
/// [`Backend::run_exchange`]: everything the other ranks posted to it.
pub struct Inbox<'a, T> {
    matrix: &'a [Vec<Vec<T>>],
    me: usize,
}

impl<'a, T> Inbox<'a, T> {
    /// Wrap the full mailbox matrix as rank `me`'s incoming view.
    pub(crate) fn new(matrix: &'a [Vec<Vec<T>>], me: usize) -> Self {
        Inbox { matrix, me }
    }

    /// The payload rank `from` posted to this rank (empty if none).
    #[inline]
    pub fn from_rank(&self, from: ProcId) -> &[T] {
        &self.matrix[from][self.me]
    }
}

/// An SPMD execution engine over a simulated [`Machine`].
///
/// The runtime's primitives (gather / scatter / localize / dereference) are
/// written as *drivers* that hand rank-local kernels to a backend; the
/// backend decides whether the ranks run sequentially ([`Machine`]) or each
/// on its own OS thread ([`ThreadedBackend`]), while guaranteeing identical
/// results and identical modeled costs either way (see the module docs).
///
/// Every `state` iterator must yield exactly one item per rank, in rank
/// order; item `r` is handed to rank `r`'s kernel as its private mutable
/// state (typically a `&mut` borrow of rank `r`'s shard of some array).
pub trait Backend {
    /// The underlying simulated machine.
    fn machine(&self) -> &Machine;

    /// Mutable access to the underlying machine, for driver-level operations
    /// (phase kinds, collectives, clock reports).
    fn machine_mut(&mut self) -> &mut Machine;

    /// Number of virtual processors.
    fn nprocs(&self) -> usize {
        self.machine().nprocs()
    }

    /// Run `kernel` once per rank as a pure compute region (no phase
    /// boundary, no phase statistics). Kernels may charge compute/memory
    /// costs and mutate their rank's state item.
    fn run_compute<St, I, F>(&mut self, state: I, kernel: F)
    where
        St: Send,
        I: IntoIterator<Item = St>,
        F: Fn(&mut RankCtx<'_>, St) + Sync;

    /// Run one communication phase: `pack` runs for every rank and charges
    /// the phase's messages (it must not move data — it only charges, which
    /// lets the engine run it on the driver thread), then the phase is closed
    /// per `end` (recording statistics and applying the sync model's
    /// barrier), then `unpack` runs for every rank with its state item.
    fn run_phase<St, I, A, B>(&mut self, end: PhaseEnd<'_>, pack: A, state: I, unpack: B)
    where
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>) + Sync,
        B: Fn(&mut RankCtx<'_>, St) + Sync;

    /// Run one communication phase in which ranks exchange typed payloads
    /// through per-rank mailboxes: `pack` posts values into its [`Outbox`]
    /// (and charges the messages), the phase is closed per `end`, then
    /// `unpack` reads its [`Inbox`].
    fn run_exchange<T, St, I, A, B>(&mut self, end: PhaseEnd<'_>, pack: A, state: I, unpack: B)
    where
        T: Send + Sync,
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>, &mut Outbox<'_, T>) + Sync,
        B: Fn(&mut RankCtx<'_>, St, &Inbox<'_, T>) + Sync;

    /// Run one **fused executor sweep** — compute plus every scatter stage —
    /// as a *single* backend region: one epoch advance, one engine
    /// release/hand-off, one fault-injection point per rank (at compute
    /// entry), instead of the 1 + W separate phases the unfused path pays.
    ///
    /// Stages, in order:
    ///
    /// 1. **Compute** — `compute` runs once per rank with `&mut` borrows of
    ///    the rank's `scratch[r]` (in-place state, e.g. array shards) and
    ///    `posted[r]` (the rank's owned sweep area: the data other ranks
    ///    will read later). This is the only stage guarded by
    ///    [`FaultPlan`] injection, so the fused
    ///    sweep's `(epoch, rank)` fault coordinates stay well-defined.
    /// 2. Per scatter buffer `j in 0..nscatter`, skipped entirely when
    ///    `scatter_active(posted, j)` is false (reading the *post-compute*
    ///    areas): a charge-only **pack** stage runs driver-side per rank
    ///    with a live phase accumulator (so `charge_p2p` is legal), the
    ///    phase closes quietly, then the **combine** stage runs once per
    ///    rank with `&mut scratch[r]` and a shared view of *all* posted
    ///    areas.
    ///
    /// The charge sequence equals the unfused gather-precharged +
    /// `run_compute` + per-buffer `run_phase` sequence event for event, so
    /// values, clock bits and [`CommStats`](crate::stats::CommStats) are
    /// byte-identical across engines and fusion settings; only the epoch
    /// count differs (one per fused sweep — the defined way the fused phase
    /// advances fault coordinates). On panic, recording engines replay
    /// nothing, so a restored snapshot can re-run the sweep as if it never
    /// happened.
    #[allow(clippy::too_many_arguments)]
    fn run_sweep<Sc, Px, C, A, P, S>(
        &mut self,
        scratch: &mut [Sc],
        posted: &mut [Px],
        compute: C,
        nscatter: usize,
        scatter_active: A,
        scatter_pack: P,
        combine: S,
    ) where
        Sc: Send,
        Px: Send + Sync,
        C: Fn(&mut RankCtx<'_>, &mut Sc, &mut Px) + Sync,
        A: Fn(&[Px], usize) -> bool + Sync,
        P: Fn(&mut RankCtx<'_>, usize),
        S: Fn(&mut RankCtx<'_>, usize, &mut Sc, &[Px]) + Sync;

    /// [`Backend::run_compute`] for charge-only kernels that need no
    /// per-rank state.
    fn run_charges<F>(&mut self, kernel: F)
    where
        F: Fn(&mut RankCtx<'_>) + Sync,
    {
        let n = self.nprocs();
        self.run_compute((0..n).map(|_| ()), |ctx, ()| kernel(ctx));
    }

    /// [`Backend::run_phase`] for phases that only charge messages and have
    /// no unpack work (e.g. the translation table's dereference rounds).
    fn run_charge_phase<A>(&mut self, end: PhaseEnd<'_>, pack: A)
    where
        A: Fn(&mut RankCtx<'_>) + Sync,
    {
        let n = self.nprocs();
        self.run_phase(end, pack, (0..n).map(|_| ()), |_, ()| {});
    }

    /// [`Backend::run_compute`] with detection: rank panics (organic or
    /// injected) are caught and returned as a typed [`PhaseError`] instead
    /// of unwinding, and a post-phase flaw (a pool straggler report) is
    /// surfaced the same way. On `Err` the failed region's charge ledgers
    /// were never replayed, so a restored snapshot can rerun it as if it
    /// never happened.
    fn try_run_compute<St, I, F>(&mut self, state: I, kernel: F) -> Result<(), PhaseError>
    where
        St: Send,
        I: IntoIterator<Item = St>,
        F: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        let result = catch_unwind(AssertUnwindSafe(|| self.run_compute(state, kernel)));
        finish_attempt(self, result)
    }

    /// [`Backend::run_phase`] with detection (see
    /// [`Backend::try_run_compute`]).
    fn try_run_phase<St, I, A, B>(
        &mut self,
        end: PhaseEnd<'_>,
        pack: A,
        state: I,
        unpack: B,
    ) -> Result<(), PhaseError>
    where
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>) + Sync,
        B: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.run_phase(end, pack, state, unpack)
        }));
        finish_attempt(self, result)
    }

    /// [`Backend::run_exchange`] with detection (see
    /// [`Backend::try_run_compute`]).
    fn try_run_exchange<T, St, I, A, B>(
        &mut self,
        end: PhaseEnd<'_>,
        pack: A,
        state: I,
        unpack: B,
    ) -> Result<(), PhaseError>
    where
        T: Send + Sync,
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>, &mut Outbox<'_, T>) + Sync,
        B: Fn(&mut RankCtx<'_>, St, &Inbox<'_, T>) + Sync,
    {
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.run_exchange(end, pack, state, unpack)
        }));
        finish_attempt(self, result)
    }

    /// Take the flaw detected during the last completed region, if any —
    /// the pool's barrier-deadline straggler report arrives here, because
    /// the phase itself still completes (the driver waits out the real
    /// arrival to keep the borrowed descriptor sound). Engines without
    /// post-phase detection return `None`.
    fn take_phase_flaw(&mut self) -> Option<PhaseError> {
        None
    }

    /// Switch this engine to inline sequential execution (the
    /// [`Machine`] oracle path) for all subsequent regions — the
    /// [`RecoveryPolicy::DegradeToMachine`](crate::fault::RecoveryPolicy)
    /// escape hatch. Returns `false` if the engine cannot degrade (the
    /// default); bit-identical results are guaranteed by the determinism
    /// contract when it can.
    fn degrade(&mut self) -> bool {
        false
    }
}

/// Shared tail of the `try_run_*` detectors: convert a caught panic into a
/// typed error and surface any post-phase flaw.
fn finish_attempt<B: Backend + ?Sized>(
    backend: &mut B,
    result: Result<(), Box<dyn std::any::Any + Send>>,
) -> Result<(), PhaseError> {
    match result {
        Ok(()) => match backend.take_phase_flaw() {
            Some(flaw) => Err(diagnose(backend.machine(), flaw)),
            None => Ok(()),
        },
        Err(payload) => {
            // A panic supersedes any straggler report from the same region.
            let _ = backend.take_phase_flaw();
            let err = PhaseError::from_payload(backend.machine().epoch(), payload);
            Err(diagnose(backend.machine(), err))
        }
    }
}

/// Stamp a freshly diagnosed [`PhaseError`] into the flight recorder: an
/// `ErrorDiagnosed` instant on the driver ring, then a capture of every
/// ring's retained tail (see [`TraceSink::error_tail`]) so the error comes
/// with its timeline attached.
fn diagnose(machine: &Machine, err: PhaseError) -> PhaseError {
    if let Some(t) = machine.tracer() {
        t.record_driver(TraceEventKind::ErrorDiagnosed, 0);
        t.capture_error_tail();
    }
    if let Some(m) = machine.metrics() {
        m.incr(None, Counter::ErrorsDiagnosed, 1);
    }
    err
}

/// Close a hand-charged phase per the requested [`PhaseEnd`].
pub(crate) fn close_phase(machine: &mut Machine, end: PhaseEnd<'_>, phase: PhaseCharge) {
    match end {
        PhaseEnd::Quiet => machine.end_phase_quiet(phase),
        PhaseEnd::Labelled(label) => machine.end_phase(label, phase),
        PhaseEnd::QuietLabelled(label) => machine.end_phase_quiet_labelled(label, phase),
    }
}

/// Start timing a metrics span: `Some(Instant)` only when a registry is
/// installed, so the disabled path never reads the clock.
#[inline]
pub(crate) fn metrics_span_begin(metrics: &Option<Arc<MetricsRegistry>>) -> Option<Instant> {
    metrics.as_ref().map(|_| Instant::now())
}

/// Close a driver-side replay span opened with [`metrics_span_begin`]:
/// record its duration into the `engine` × replay × `kind` histogram and
/// bump the replay counter (no-op when metrics are off).
#[inline]
pub(crate) fn metrics_replay_end(
    metrics: &Option<Arc<MetricsRegistry>>,
    engine: EngineKind,
    kind: PhaseKind,
    t0: Option<Instant>,
) {
    if let (Some(m), Some(t0)) = (metrics, t0) {
        m.incr(None, Counter::ReplayRuns, 1);
        m.record_span(
            None,
            engine,
            SpanKind::Replay,
            kind,
            t0.elapsed().as_nanos() as u64,
        );
    }
}

/// The phase kind metrics spans recorded during the current region are
/// keyed by: the machine's current kind, `Other` when none is set.
#[inline]
pub(crate) fn metrics_phase_kind(machine: &Machine) -> PhaseKind {
    machine.stats().current_kind().unwrap_or(PhaseKind::Other)
}

/// Open a driver-side charge-replay span (no-op when tracing is off).
#[inline]
pub(crate) fn trace_replay_begin(trace: &Option<Arc<TraceSink>>) {
    if let Some(t) = trace {
        t.record_driver(TraceEventKind::ReplayBegin, 0);
    }
}

/// Close a driver-side charge-replay span, publishing the post-replay
/// modeled clock so subsequent events correlate against it (no-op when
/// tracing is off).
#[inline]
pub(crate) fn trace_replay_end(trace: &Option<Arc<TraceSink>>, machine: &Machine) {
    if let Some(t) = trace {
        t.publish_modeled(machine.modeled_now());
        t.record_driver(TraceEventKind::ReplayEnd, 0);
    }
}

/// Replay recorded charge events against the machine, in the order they were
/// recorded — the shared tail of the threaded and pooled engines' phases.
pub(crate) fn replay_events(
    machine: &mut Machine,
    mut phase: Option<&mut PhaseCharge>,
    events: &[ChargeEvent],
) {
    for &event in events {
        match event {
            ChargeEvent::Compute { proc, units } => machine.charge_compute(proc as usize, units),
            ChargeEvent::Memory { proc, words } => machine.charge_memory(proc as usize, words),
            ChargeEvent::P2p { from, to, words } => {
                let phase = phase
                    .as_deref_mut()
                    .expect("p2p event outside an exchange phase");
                machine.charge_p2p(phase, from as usize, to as usize, words);
            }
        }
    }
}

/// The sequential compute loop shared by [`Machine`]'s `run_compute` and the
/// unpack half of its `run_phase` — factored out so each public `run_*`
/// entry point advances the epoch exactly once.
fn machine_compute<St, I, F>(machine: &mut Machine, state: I, kernel: F)
where
    St: Send,
    I: IntoIterator<Item = St>,
    F: Fn(&mut RankCtx<'_>, St) + Sync,
{
    let nprocs = machine.nprocs();
    let plan = machine.fault_plan().cloned();
    let trace = machine.tracer().cloned();
    let metrics = machine.metrics().cloned();
    let kind = metrics_phase_kind(machine);
    let epoch = machine.epoch();
    let t0 = metrics_span_begin(&metrics);
    let mut count = 0;
    for (rank, st) in state.into_iter().enumerate() {
        assert!(rank < nprocs, "state must yield one item per rank");
        fault::fire_traced(
            plan.as_deref(),
            epoch,
            rank,
            trace.as_deref(),
            metrics.as_deref(),
            None,
        );
        if let Some(t) = &trace {
            t.record_driver(TraceEventKind::KernelEnter, rank as u32);
        }
        let mut ctx = RankCtx {
            rank,
            nprocs,
            sink: Sink::Direct {
                machine,
                phase: None,
            },
        };
        kernel(&mut ctx, st);
        if let Some(t) = &trace {
            t.record_driver(TraceEventKind::KernelExit, rank as u32);
        }
        count += 1;
    }
    assert_eq!(count, nprocs, "state must yield one item per rank");
    if let (Some(m), Some(t0)) = (&metrics, t0) {
        // The sequential oracle runs every rank on the driver: one kernel
        // span covering the whole loop, on the driver shard.
        m.incr(None, Counter::KernelRuns, nprocs as u64);
        m.record_span(
            None,
            EngineKind::Machine,
            SpanKind::Kernel,
            kind,
            t0.elapsed().as_nanos() as u64,
        );
    }
}

/// Run one communication phase **inline on the driver**, against the shared
/// machine, with *no* epoch advance and *no* fault-injection point: `pack`
/// charges per rank into a live phase accumulator, the phase closes per
/// `end`, then `unpack` runs per rank charging directly.
///
/// This is the building block the fused sweep driver uses to fold gather
/// phases into the surrounding [`Backend::run_sweep`] epoch: because it only
/// touches the shared [`Machine`], it produces the same charge sequence under
/// every engine by construction, and fault coordinates stay pinned to the
/// enclosing region's `(epoch, rank)` points.
pub fn run_phase_inline<St, I, A, B>(
    machine: &mut Machine,
    end: PhaseEnd<'_>,
    pack: A,
    state: I,
    unpack: B,
) where
    St: Send,
    I: IntoIterator<Item = St>,
    A: Fn(&mut RankCtx<'_>),
    B: Fn(&mut RankCtx<'_>, St),
{
    let nprocs = machine.nprocs();
    let mut phase = PhaseCharge::new();
    for rank in 0..nprocs {
        let mut ctx = RankCtx {
            rank,
            nprocs,
            sink: Sink::Direct {
                machine,
                phase: Some(&mut phase),
            },
        };
        pack(&mut ctx);
    }
    close_phase(machine, end, phase);
    let mut count = 0;
    for (rank, st) in state.into_iter().enumerate() {
        assert!(rank < nprocs, "state must yield one item per rank");
        let mut ctx = RankCtx {
            rank,
            nprocs,
            sink: Sink::Direct {
                machine,
                phase: None,
            },
        };
        unpack(&mut ctx, st);
        count += 1;
    }
    assert_eq!(count, nprocs, "state must yield one item per rank");
}

/// The sequential engine: rank kernels run on the driver thread in ascending
/// rank order, charging the machine directly. This is the deterministic
/// oracle the threaded engine is checked against.
impl Backend for Machine {
    fn machine(&self) -> &Machine {
        self
    }

    fn machine_mut(&mut self) -> &mut Machine {
        self
    }

    fn run_compute<St, I, F>(&mut self, state: I, kernel: F)
    where
        St: Send,
        I: IntoIterator<Item = St>,
        F: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        self.advance_epoch();
        machine_compute(self, state, kernel);
    }

    fn run_phase<St, I, A, B>(&mut self, end: PhaseEnd<'_>, pack: A, state: I, unpack: B)
    where
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>) + Sync,
        B: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        let epoch = self.advance_epoch();
        let nprocs = self.nprocs();
        let plan = self.fault_plan().cloned();
        let trace = self.tracer().cloned();
        let metrics = self.metrics().cloned();
        let mut phase = PhaseCharge::new();
        for rank in 0..nprocs {
            fault::fire_traced(
                plan.as_deref(),
                epoch,
                rank,
                trace.as_deref(),
                metrics.as_deref(),
                None,
            );
            let mut ctx = RankCtx {
                rank,
                nprocs,
                sink: Sink::Direct {
                    machine: self,
                    phase: Some(&mut phase),
                },
            };
            pack(&mut ctx);
        }
        close_phase(self, end, phase);
        machine_compute(self, state, unpack);
    }

    fn run_exchange<T, St, I, A, B>(&mut self, end: PhaseEnd<'_>, pack: A, state: I, unpack: B)
    where
        T: Send + Sync,
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>, &mut Outbox<'_, T>) + Sync,
        B: Fn(&mut RankCtx<'_>, St, &Inbox<'_, T>) + Sync,
    {
        let epoch = self.advance_epoch();
        let nprocs = self.nprocs();
        let plan = self.fault_plan().cloned();
        let trace = self.tracer().cloned();
        let metrics = self.metrics().cloned();
        let mut matrix: Vec<Vec<Vec<T>>> = (0..nprocs)
            .map(|_| (0..nprocs).map(|_| Vec::new()).collect())
            .collect();
        let mut phase = PhaseCharge::new();
        for (rank, row) in matrix.iter_mut().enumerate() {
            fault::fire_traced(
                plan.as_deref(),
                epoch,
                rank,
                trace.as_deref(),
                metrics.as_deref(),
                None,
            );
            let mut ctx = RankCtx {
                rank,
                nprocs,
                sink: Sink::Direct {
                    machine: self,
                    phase: Some(&mut phase),
                },
            };
            pack(&mut ctx, &mut Outbox { row });
        }
        close_phase(self, end, phase);
        let matrix = &matrix;
        machine_compute(self, state, |ctx, st| {
            let me = ctx.rank();
            unpack(ctx, st, &Inbox { matrix, me });
        });
    }

    fn run_sweep<Sc, Px, C, A, P, S>(
        &mut self,
        scratch: &mut [Sc],
        posted: &mut [Px],
        compute: C,
        nscatter: usize,
        scatter_active: A,
        scatter_pack: P,
        combine: S,
    ) where
        Sc: Send,
        Px: Send + Sync,
        C: Fn(&mut RankCtx<'_>, &mut Sc, &mut Px) + Sync,
        A: Fn(&[Px], usize) -> bool + Sync,
        P: Fn(&mut RankCtx<'_>, usize),
        S: Fn(&mut RankCtx<'_>, usize, &mut Sc, &[Px]) + Sync,
    {
        let epoch = self.advance_epoch();
        let nprocs = self.nprocs();
        assert_eq!(scratch.len(), nprocs, "one scratch item per rank");
        assert_eq!(posted.len(), nprocs, "one posted area per rank");
        let plan = self.fault_plan().cloned();
        let trace = self.tracer().cloned();
        let metrics = self.metrics().cloned();
        let kind = metrics_phase_kind(self);
        let t0 = metrics_span_begin(&metrics);
        for (rank, (sc, px)) in scratch.iter_mut().zip(posted.iter_mut()).enumerate() {
            fault::fire_traced(
                plan.as_deref(),
                epoch,
                rank,
                trace.as_deref(),
                metrics.as_deref(),
                None,
            );
            if let Some(t) = &trace {
                t.record_driver(TraceEventKind::KernelEnter, rank as u32);
            }
            let mut ctx = RankCtx {
                rank,
                nprocs,
                sink: Sink::Direct {
                    machine: self,
                    phase: None,
                },
            };
            compute(&mut ctx, sc, px);
            if let Some(t) = &trace {
                t.record_driver(TraceEventKind::KernelExit, rank as u32);
            }
        }
        if let (Some(m), Some(t0)) = (&metrics, t0) {
            m.incr(None, Counter::KernelRuns, nprocs as u64);
            m.record_span(
                None,
                EngineKind::Machine,
                SpanKind::Kernel,
                kind,
                t0.elapsed().as_nanos() as u64,
            );
        }
        for j in 0..nscatter {
            if !scatter_active(posted, j) {
                continue;
            }
            let mut phase = PhaseCharge::new();
            for rank in 0..nprocs {
                let mut ctx = RankCtx {
                    rank,
                    nprocs,
                    sink: Sink::Direct {
                        machine: self,
                        phase: Some(&mut phase),
                    },
                };
                scatter_pack(&mut ctx, j);
            }
            close_phase(self, PhaseEnd::QuietLabelled(FUSED_SWEEP_LABEL), phase);
            let t0 = metrics_span_begin(&metrics);
            for (rank, sc) in scratch.iter_mut().enumerate() {
                if let Some(t) = &trace {
                    t.record_driver(TraceEventKind::CombineEnter, rank as u32);
                }
                let mut ctx = RankCtx {
                    rank,
                    nprocs,
                    sink: Sink::Direct {
                        machine: self,
                        phase: None,
                    },
                };
                combine(&mut ctx, j, sc, &*posted);
                if let Some(t) = &trace {
                    t.record_driver(TraceEventKind::CombineExit, rank as u32);
                }
            }
            if let (Some(m), Some(t0)) = (&metrics, t0) {
                m.incr(None, Counter::CombineRuns, nprocs as u64);
                m.record_span(
                    None,
                    EngineKind::Machine,
                    SpanKind::Combine,
                    kind,
                    t0.elapsed().as_nanos() as u64,
                );
            }
        }
    }

    fn degrade(&mut self) -> bool {
        // Already the sequential oracle.
        true
    }
}

/// The rank-parallel engine: every virtual processor runs its kernels on its
/// own OS thread via [`std::thread::scope`], charging into per-rank ledgers
/// that are replayed in ascending rank order afterwards — which makes the
/// machine state (clocks, statistics) bit-identical to the sequential
/// engine's (see the module docs for why).
///
/// The processor count may exceed the hardware core count; ranks then
/// timeshare, still deterministically.
#[derive(Debug)]
pub struct ThreadedBackend {
    machine: Machine,
    ledgers: Vec<RankLedger>,
    /// Degraded mode: run every region inline on the sequential oracle path
    /// (see [`Backend::degrade`]).
    inline: bool,
}

impl ThreadedBackend {
    /// Wrap a machine in the threaded engine.
    pub fn new(machine: Machine) -> Self {
        let nprocs = machine.nprocs();
        ThreadedBackend {
            machine,
            ledgers: (0..nprocs).map(|_| RankLedger::default()).collect(),
            inline: false,
        }
    }

    /// Build a threaded engine over a fresh machine with this configuration.
    pub fn from_config(cfg: crate::config::MachineConfig) -> Self {
        Self::new(Machine::new(cfg))
    }

    /// Unwrap the underlying machine.
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// Fan one kernel out over all ranks, one scoped OS thread per rank,
    /// recording each rank's charges into its ledger. Rank panics are caught
    /// per thread and re-raised after the join as one [`PanicBundle`] naming
    /// every failing rank — in which case no ledger is replayed, so the
    /// machine is left untouched by the failed region.
    ///
    /// When tracing is on, each rank's thread brackets its kernel with a
    /// `span` Begin/End pair on ring `rank` (the End is recorded even when
    /// the kernel unwinds, keeping span nesting consistent) and faults are
    /// fired through the traced path. When metrics are on, each rank
    /// records one kernel/combine span and counter tick into shard `rank`
    /// (the threaded engine's lane), keyed by `kind`.
    #[allow(clippy::too_many_arguments)]
    fn fan_out<St, F>(
        nprocs: usize,
        ledgers: &mut [RankLedger],
        in_phase: bool,
        plan: Option<&FaultPlan>,
        epoch: u64,
        trace: Option<&TraceSink>,
        metrics: Option<&MetricsRegistry>,
        kind: PhaseKind,
        span: TraceEventKind,
        states: Vec<St>,
        kernel: &F,
    ) where
        St: Send,
        F: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        assert_eq!(states.len(), nprocs, "state must yield one item per rank");
        let caught: Mutex<Vec<CaughtPanic>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (rank, (ledger, st)) in ledgers.iter_mut().zip(states).enumerate() {
                let caught = &caught;
                scope.spawn(move || {
                    ledger.events.clear();
                    if let Some(t) = trace {
                        t.record(rank, span, rank as u32);
                    }
                    let mt0 = metrics.map(|_| Instant::now());
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        fault::fire_traced(plan, epoch, rank, trace, metrics, Some(rank));
                        let mut ctx =
                            RankCtx::recording(rank, nprocs, &mut ledger.events, in_phase);
                        kernel(&mut ctx, st);
                    }));
                    if let Some(t) = trace {
                        let end = span.span_partner().unwrap_or(span);
                        t.record(rank, end, rank as u32);
                    }
                    if let (Some(m), Some(t0)) = (metrics, mt0) {
                        let (sk, counter) = if span == TraceEventKind::CombineEnter {
                            (SpanKind::Combine, Counter::CombineRuns)
                        } else {
                            (SpanKind::Kernel, Counter::KernelRuns)
                        };
                        m.incr(Some(rank), counter, 1);
                        m.record_span(
                            Some(rank),
                            EngineKind::Threaded,
                            sk,
                            kind,
                            t0.elapsed().as_nanos() as u64,
                        );
                    }
                    if let Err(payload) = result {
                        caught.lock().unwrap().push(CaughtPanic {
                            epoch,
                            rank: Some(rank),
                            lane: Some(rank),
                            payload,
                        });
                    }
                });
            }
        });
        let mut panics = caught.into_inner().unwrap();
        if !panics.is_empty() {
            panics.sort_by_key(|p| p.rank);
            resume_unwind(Box::new(PanicBundle { panics }));
        }
    }

    /// Replay the ledgers against the machine in ascending rank order —
    /// the exact charge sequence the sequential engine would have produced.
    fn replay(machine: &mut Machine, mut phase: Option<&mut PhaseCharge>, ledgers: &[RankLedger]) {
        for ledger in ledgers {
            replay_events(machine, phase.as_deref_mut(), &ledger.events);
        }
    }
}

impl Backend for ThreadedBackend {
    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn run_compute<St, I, F>(&mut self, state: I, kernel: F)
    where
        St: Send,
        I: IntoIterator<Item = St>,
        F: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        if self.inline {
            return self.machine.run_compute(state, kernel);
        }
        let epoch = self.machine.advance_epoch();
        let nprocs = self.machine.nprocs();
        let plan = self.machine.fault_plan().cloned();
        let trace = self.machine.tracer().cloned();
        let metrics = self.machine.metrics().cloned();
        let kind = metrics_phase_kind(&self.machine);
        let states: Vec<St> = state.into_iter().collect();
        Self::fan_out(
            nprocs,
            &mut self.ledgers,
            false,
            plan.as_deref(),
            epoch,
            trace.as_deref(),
            metrics.as_deref(),
            kind,
            TraceEventKind::KernelEnter,
            states,
            &kernel,
        );
        let mt0 = metrics_span_begin(&metrics);
        trace_replay_begin(&trace);
        Self::replay(&mut self.machine, None, &self.ledgers);
        trace_replay_end(&trace, &self.machine);
        metrics_replay_end(&metrics, EngineKind::Threaded, kind, mt0);
    }

    fn run_phase<St, I, A, B>(&mut self, end: PhaseEnd<'_>, pack: A, state: I, unpack: B)
    where
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>) + Sync,
        B: Fn(&mut RankCtx<'_>, St) + Sync,
    {
        if self.inline {
            return self.machine.run_phase(end, pack, state, unpack);
        }
        let epoch = self.machine.advance_epoch();
        let nprocs = self.machine.nprocs();
        let plan = self.machine.fault_plan().cloned();
        let trace = self.machine.tracer().cloned();
        let metrics = self.machine.metrics().cloned();
        let kind = metrics_phase_kind(&self.machine);
        // The pack stage only charges (it moves no data), so fanning it out
        // would parallelize nothing: run it on the driver thread, applying
        // charges directly — by construction the same sequence a record +
        // replay would produce.
        let mut phase = PhaseCharge::new();
        for rank in 0..nprocs {
            fault::fire_traced(
                plan.as_deref(),
                epoch,
                rank,
                trace.as_deref(),
                metrics.as_deref(),
                None,
            );
            let mut ctx = RankCtx {
                rank,
                nprocs,
                sink: Sink::Direct {
                    machine: &mut self.machine,
                    phase: Some(&mut phase),
                },
            };
            pack(&mut ctx);
        }
        close_phase(&mut self.machine, end, phase);
        // The unpack stage does the real data movement: fan out.
        let states: Vec<St> = state.into_iter().collect();
        Self::fan_out(
            nprocs,
            &mut self.ledgers,
            false,
            plan.as_deref(),
            epoch,
            trace.as_deref(),
            metrics.as_deref(),
            kind,
            TraceEventKind::KernelEnter,
            states,
            &unpack,
        );
        let mt0 = metrics_span_begin(&metrics);
        trace_replay_begin(&trace);
        Self::replay(&mut self.machine, None, &self.ledgers);
        trace_replay_end(&trace, &self.machine);
        metrics_replay_end(&metrics, EngineKind::Threaded, kind, mt0);
    }

    fn run_exchange<T, St, I, A, B>(&mut self, end: PhaseEnd<'_>, pack: A, state: I, unpack: B)
    where
        T: Send + Sync,
        St: Send,
        I: IntoIterator<Item = St>,
        A: Fn(&mut RankCtx<'_>, &mut Outbox<'_, T>) + Sync,
        B: Fn(&mut RankCtx<'_>, St, &Inbox<'_, T>) + Sync,
    {
        if self.inline {
            return self.machine.run_exchange(end, pack, state, unpack);
        }
        let epoch = self.machine.advance_epoch();
        let nprocs = self.machine.nprocs();
        let plan = self.machine.fault_plan().cloned();
        let trace = self.machine.tracer().cloned();
        let metrics = self.machine.metrics().cloned();
        let kind = metrics_phase_kind(&self.machine);
        let mut matrix: Vec<Vec<Vec<T>>> = (0..nprocs)
            .map(|_| (0..nprocs).map(|_| Vec::new()).collect())
            .collect();
        // Pack in parallel: rank r owns row r of the mailbox matrix.
        let rows: Vec<&mut Vec<Vec<T>>> = matrix.iter_mut().collect();
        Self::fan_out(
            nprocs,
            &mut self.ledgers,
            true,
            plan.as_deref(),
            epoch,
            trace.as_deref(),
            metrics.as_deref(),
            kind,
            TraceEventKind::KernelEnter,
            rows,
            &|ctx: &mut RankCtx<'_>, row: &mut Vec<Vec<T>>| pack(ctx, &mut Outbox { row }),
        );
        let mut phase = PhaseCharge::new();
        let mt0 = metrics_span_begin(&metrics);
        trace_replay_begin(&trace);
        Self::replay(&mut self.machine, Some(&mut phase), &self.ledgers);
        trace_replay_end(&trace, &self.machine);
        metrics_replay_end(&metrics, EngineKind::Threaded, kind, mt0);
        close_phase(&mut self.machine, end, phase);
        // Unpack in parallel: rank r reads column r.
        let states: Vec<St> = state.into_iter().collect();
        let matrix = &matrix;
        Self::fan_out(
            nprocs,
            &mut self.ledgers,
            false,
            plan.as_deref(),
            epoch,
            trace.as_deref(),
            metrics.as_deref(),
            kind,
            TraceEventKind::KernelEnter,
            states.into_iter().enumerate().collect(),
            &|ctx: &mut RankCtx<'_>, (rank, st): (usize, St)| {
                unpack(ctx, st, &Inbox { matrix, me: rank })
            },
        );
        let mt0 = metrics_span_begin(&metrics);
        trace_replay_begin(&trace);
        Self::replay(&mut self.machine, None, &self.ledgers);
        trace_replay_end(&trace, &self.machine);
        metrics_replay_end(&metrics, EngineKind::Threaded, kind, mt0);
    }

    fn run_sweep<Sc, Px, C, A, P, S>(
        &mut self,
        scratch: &mut [Sc],
        posted: &mut [Px],
        compute: C,
        nscatter: usize,
        scatter_active: A,
        scatter_pack: P,
        combine: S,
    ) where
        Sc: Send,
        Px: Send + Sync,
        C: Fn(&mut RankCtx<'_>, &mut Sc, &mut Px) + Sync,
        A: Fn(&[Px], usize) -> bool + Sync,
        P: Fn(&mut RankCtx<'_>, usize),
        S: Fn(&mut RankCtx<'_>, usize, &mut Sc, &[Px]) + Sync,
    {
        if self.inline {
            return self.machine.run_sweep(
                scratch,
                posted,
                compute,
                nscatter,
                scatter_active,
                scatter_pack,
                combine,
            );
        }
        let epoch = self.machine.advance_epoch();
        let nprocs = self.machine.nprocs();
        assert_eq!(scratch.len(), nprocs, "one scratch item per rank");
        assert_eq!(posted.len(), nprocs, "one posted area per rank");
        let plan = self.machine.fault_plan().cloned();
        let trace = self.machine.tracer().cloned();
        let metrics = self.machine.metrics().cloned();
        let kind = metrics_phase_kind(&self.machine);
        // Compute: one thread per rank, the sweep's only fault-injection
        // point. A rank panic re-raises from fan_out before any replay, so
        // the machine keeps only the epoch advance from the failed sweep.
        let states: Vec<(&mut Sc, &mut Px)> = scratch.iter_mut().zip(posted.iter_mut()).collect();
        Self::fan_out(
            nprocs,
            &mut self.ledgers,
            false,
            plan.as_deref(),
            epoch,
            trace.as_deref(),
            metrics.as_deref(),
            kind,
            TraceEventKind::KernelEnter,
            states,
            &|ctx: &mut RankCtx<'_>, (sc, px): (&mut Sc, &mut Px)| compute(ctx, sc, px),
        );
        let mt0 = metrics_span_begin(&metrics);
        trace_replay_begin(&trace);
        Self::replay(&mut self.machine, None, &self.ledgers);
        trace_replay_end(&trace, &self.machine);
        metrics_replay_end(&metrics, EngineKind::Threaded, kind, mt0);
        for j in 0..nscatter {
            if !scatter_active(posted, j) {
                continue;
            }
            // Pack only charges (see run_phase): run it on the driver.
            let mut phase = PhaseCharge::new();
            for rank in 0..nprocs {
                let mut ctx = RankCtx {
                    rank,
                    nprocs,
                    sink: Sink::Direct {
                        machine: &mut self.machine,
                        phase: Some(&mut phase),
                    },
                };
                scatter_pack(&mut ctx, j);
            }
            close_phase(
                &mut self.machine,
                PhaseEnd::QuietLabelled(FUSED_SWEEP_LABEL),
                phase,
            );
            // Combine: every rank reads the frozen posted areas and mutates
            // its own scratch. No fault plan here — the sequential engine
            // fires only at compute entry, and injection points must agree.
            let states: Vec<&mut Sc> = scratch.iter_mut().collect();
            let posted_ref: &[Px] = posted;
            Self::fan_out(
                nprocs,
                &mut self.ledgers,
                false,
                None,
                epoch,
                trace.as_deref(),
                metrics.as_deref(),
                kind,
                TraceEventKind::CombineEnter,
                states,
                &|ctx: &mut RankCtx<'_>, sc: &mut Sc| combine(ctx, j, sc, posted_ref),
            );
            let mt0 = metrics_span_begin(&metrics);
            trace_replay_begin(&trace);
            Self::replay(&mut self.machine, None, &self.ledgers);
            trace_replay_end(&trace, &self.machine);
            metrics_replay_end(&metrics, EngineKind::Threaded, kind, mt0);
        }
    }

    fn degrade(&mut self) -> bool {
        self.inline = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn machines(p: usize) -> (Machine, ThreadedBackend) {
        (
            Machine::new(MachineConfig::ipsc860(p)),
            ThreadedBackend::from_config(MachineConfig::ipsc860(p)),
        )
    }

    /// A phase whose pack charges a ring of messages and whose unpack writes
    /// rank-local state — exercised identically on both engines.
    fn ring_phase<B: Backend>(backend: &mut B, out: &mut [f64]) {
        let n = backend.nprocs();
        backend.run_phase(
            PhaseEnd::Labelled("ring"),
            |ctx| {
                let r = ctx.rank();
                ctx.charge_memory(r, 3.0);
                ctx.charge_p2p(r, (r + 1) % ctx.nprocs(), 3);
            },
            out.iter_mut(),
            |ctx, slot| {
                ctx.charge_compute(ctx.rank(), 2.0);
                *slot = ctx.rank() as f64 * 10.0;
            },
        );
        assert_eq!(n, out.len());
    }

    #[test]
    fn threaded_phase_is_bit_identical_to_sequential() {
        let (mut seq, mut thr) = machines(8);
        let mut out_a = vec![0.0; 8];
        let mut out_b = vec![0.0; 8];
        ring_phase(&mut seq, &mut out_a);
        ring_phase(&mut thr, &mut out_b);
        assert_eq!(out_a, out_b);
        let (ea, eb) = (seq.elapsed(), thr.machine().elapsed());
        for p in 0..8 {
            assert_eq!(ea.per_proc[p].to_bits(), eb.per_proc[p].to_bits());
            assert_eq!(ea.comm[p].to_bits(), eb.comm[p].to_bits());
            assert_eq!(ea.idle[p].to_bits(), eb.idle[p].to_bits());
        }
        let (sa, sb) = (
            seq.stats().grand_totals(),
            thr.machine().stats().grand_totals(),
        );
        assert_eq!(sa.messages, sb.messages);
        assert_eq!(sa.bytes, sb.bytes);
        assert_eq!(sa.phases, sb.phases);
        assert_eq!(sa.comm_seconds.to_bits(), sb.comm_seconds.to_bits());
        assert_eq!(seq.stats().records(), thr.machine().stats().records());
    }

    /// A fused sweep over two scatter buffers: compute posts per-rank
    /// contributions (buffer 1 stays untouched), the active buffer charges
    /// a ring of messages, and combine folds every rank's contribution into
    /// the local scratch.
    fn fused_sweep<B: Backend>(backend: &mut B, out: &mut [f64]) -> Vec<f64> {
        let n = backend.nprocs();
        let mut posted: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0; 2]).collect();
        backend.run_sweep(
            out,
            &mut posted,
            |ctx, sc: &mut f64, px: &mut Vec<f64>| {
                let r = ctx.rank();
                ctx.charge_compute(r, 1.0 + r as f64);
                px[0] = (r as f64 + 1.0) * 0.25;
                px[1] = 1.0;
                *sc = r as f64;
            },
            2,
            |posted, j| j == 0 && posted.iter().any(|p| p[1] != 0.0),
            |ctx, _j| {
                let r = ctx.rank();
                ctx.charge_memory(r, 2.0);
                ctx.charge_p2p(r, (r + 1) % ctx.nprocs(), 2);
            },
            |ctx, _j, sc, posted| {
                ctx.charge_compute(ctx.rank(), 0.5);
                *sc += posted.iter().map(|p| p[0]).sum::<f64>();
            },
        );
        posted.into_iter().map(|p| p[0]).collect()
    }

    #[test]
    fn threaded_fused_sweep_is_bit_identical_to_sequential() {
        let (mut seq, mut thr) = machines(8);
        let mut out_a = vec![0.0; 8];
        let mut out_b = vec![0.0; 8];
        let pa = fused_sweep(&mut seq, &mut out_a);
        let pb = fused_sweep(&mut thr, &mut out_b);
        assert_eq!(out_a, out_b);
        assert_eq!(pa, pb);
        // The whole sweep is one epoch on both engines.
        assert_eq!(seq.epoch(), 1);
        assert_eq!(thr.machine().epoch(), 1);
        let (ea, eb) = (seq.elapsed(), thr.machine().elapsed());
        for p in 0..8 {
            assert_eq!(ea.per_proc[p].to_bits(), eb.per_proc[p].to_bits());
            assert_eq!(ea.comm[p].to_bits(), eb.comm[p].to_bits());
            assert_eq!(ea.idle[p].to_bits(), eb.idle[p].to_bits());
        }
        assert_eq!(
            seq.stats().grand_totals(),
            thr.machine().stats().grand_totals()
        );
        assert_eq!(seq.stats().records(), thr.machine().stats().records());
    }

    #[test]
    fn fused_sweep_with_no_active_buffer_equals_plain_compute() {
        // With every scatter buffer inactive, a fused sweep must degenerate
        // to exactly one compute region: same charges, same single epoch.
        let (mut a, _) = machines(4);
        let (mut b, _) = machines(4);
        let mut sc = vec![0.0f64; 4];
        let mut px = vec![0u8; 4];
        a.run_sweep(
            &mut sc,
            &mut px,
            |ctx, sc: &mut f64, _px: &mut u8| {
                ctx.charge_compute(ctx.rank(), 3.0);
                *sc = 1.0;
            },
            3,
            |_, _| false,
            |_, _| panic!("pack must not run for inactive buffers"),
            |_, _, _, _| panic!("combine must not run for inactive buffers"),
        );
        let mut out = [0.0f64; 4];
        b.run_compute(out.iter_mut(), |ctx, slot| {
            ctx.charge_compute(ctx.rank(), 3.0);
            *slot = 1.0;
        });
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.elapsed(), b.elapsed());
        assert_eq!(a.stats().grand_totals(), b.stats().grand_totals());
    }

    #[test]
    fn inline_phase_matches_run_phase_without_an_epoch() {
        // run_phase_inline charges exactly like Machine::run_phase but
        // advances no epoch and has no fault-injection point.
        let (mut a, _) = machines(4);
        let (mut b, _) = machines(4);
        let mut out_a = vec![0.0; 4];
        let mut out_b = vec![0.0; 4];
        ring_phase(&mut a, &mut out_a);
        run_phase_inline(
            &mut b,
            PhaseEnd::Labelled("ring"),
            |ctx| {
                let r = ctx.rank();
                ctx.charge_memory(r, 3.0);
                ctx.charge_p2p(r, (r + 1) % ctx.nprocs(), 3);
            },
            out_b.iter_mut(),
            |ctx, slot| {
                ctx.charge_compute(ctx.rank(), 2.0);
                *slot = ctx.rank() as f64 * 10.0;
            },
        );
        assert_eq!(out_a, out_b);
        assert_eq!(a.elapsed(), b.elapsed());
        assert_eq!(a.stats().grand_totals(), b.stats().grand_totals());
        assert_eq!(a.epoch(), 1);
        assert_eq!(b.epoch(), 0, "inline phases advance no epoch");
    }

    #[test]
    fn run_compute_charges_in_rank_order() {
        let (mut seq, mut thr) = machines(4);
        let mut data_a = vec![0u32; 4];
        seq.run_compute(data_a.iter_mut(), |ctx, d| {
            ctx.charge_compute(ctx.rank(), 1.5);
            *d = ctx.rank() as u32;
        });
        let mut data_b = vec![0u32; 4];
        thr.run_compute(data_b.iter_mut(), |ctx, d| {
            ctx.charge_compute(ctx.rank(), 1.5);
            *d = ctx.rank() as u32;
        });
        assert_eq!(data_a, vec![0, 1, 2, 3]);
        assert_eq!(data_a, data_b);
        assert_eq!(seq.elapsed().per_proc, thr.machine().elapsed().per_proc);
    }

    #[test]
    fn mailbox_exchange_rotates_payloads() {
        fn rotate<B: Backend>(backend: &mut B) -> Vec<u64> {
            let n = backend.nprocs();
            let mut got = vec![0u64; n];
            backend.run_exchange(
                PhaseEnd::Labelled("rotate"),
                |ctx, outbox: &mut Outbox<'_, u64>| {
                    let r = ctx.rank();
                    let to = (r + 1) % ctx.nprocs();
                    outbox.post(to, [r as u64 * 100]);
                    ctx.charge_p2p(r, to, 1);
                },
                got.iter_mut(),
                |ctx, slot, inbox| {
                    let from = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
                    assert_eq!(inbox.from_rank(ctx.rank()).len(), 0);
                    *slot = inbox.from_rank(from)[0];
                    ctx.charge_memory(ctx.rank(), 1.0);
                },
            );
            got
        }
        let (mut seq, mut thr) = machines(8);
        let a = rotate(&mut seq);
        let b = rotate(&mut thr);
        assert_eq!(
            a,
            (0..8)
                .map(|r| ((r + 7) % 8) as u64 * 100)
                .collect::<Vec<_>>()
        );
        assert_eq!(a, b);
        assert_eq!(seq.elapsed(), thr.machine().elapsed());
        assert_eq!(
            seq.stats().grand_totals(),
            thr.machine().stats().grand_totals()
        );
    }

    #[test]
    fn more_ranks_than_cores_still_agree() {
        // 64 virtual processors on (likely far) fewer hardware cores: the
        // scoped threads timeshare, the results must not care.
        let p = 64;
        let mut seq = Machine::new(MachineConfig::unit(p));
        let mut thr = ThreadedBackend::from_config(MachineConfig::unit(p));
        let mut a = vec![0.0; p];
        let mut b = vec![0.0; p];
        ring_phase(&mut seq, &mut a);
        ring_phase(&mut thr, &mut b);
        assert_eq!(a, b);
        assert_eq!(seq.elapsed(), thr.machine().elapsed());
    }

    #[test]
    #[should_panic(expected = "pack stage")]
    fn p2p_in_compute_region_panics() {
        let mut m = Machine::new(MachineConfig::unit(2));
        m.run_charges(|ctx| ctx.charge_p2p(0, 1, 1));
    }

    #[test]
    #[should_panic(expected = "one item per rank")]
    fn short_state_iterator_panics() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let mut only_two = [0u8; 2];
        m.run_compute(only_two.iter_mut(), |_, _| {});
    }

    #[test]
    fn charge_phase_helper_records_the_label() {
        let mut m = Machine::new(MachineConfig::unit(2));
        m.run_charge_phase(PhaseEnd::Labelled("probe"), |ctx| {
            if ctx.rank() == 0 {
                ctx.charge_p2p(0, 1, 4);
            }
        });
        assert_eq!(m.stats().records().len(), 1);
        assert_eq!(m.stats().records()[0].label, "probe");
        assert_eq!(m.stats().grand_totals().messages, 1);
    }
}
