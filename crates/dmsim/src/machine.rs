//! The [`Machine`]: processor clocks + cost model + statistics, and the
//! primitive operations the CHAOS runtime is built on.

use crate::config::{MachineConfig, SyncModel};
use crate::exchange::{Delivered, ExchangePlan};
use crate::fault::FaultPlan;
use crate::metrics::{Counter, MetricsRegistry};
use crate::stats::{copy_btree_values, CommStats, PhaseKind, StatsRegistry, StatsSnapshot};
use crate::time::{ElapsedReport, ProcClock};
use crate::topology::hops;
use crate::trace::{TraceEventKind, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of a virtual processor (`0 .. nprocs`).
pub type ProcId = usize;

/// Statistics accumulator for a message phase charged message-by-message via
/// [`Machine::charge_p2p`] instead of through an [`ExchangePlan`].
///
/// One `PhaseCharge` corresponds to one exchange phase: it starts with
/// `phases = 1` (mirroring what [`Machine::exchange`] records even for an
/// empty plan) and collects message/byte/time totals as messages are
/// charged.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCharge {
    stats: CommStats,
}

impl PhaseCharge {
    /// Start accounting one message phase.
    pub fn new() -> Self {
        PhaseCharge {
            stats: CommStats {
                phases: 1,
                ..CommStats::default()
            },
        }
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }
}

/// A simulated distributed-memory machine.
///
/// The machine does not own any application data; the CHAOS runtime keeps
/// distributed arrays in its own per-processor structures and uses the
/// machine only to (a) move message payloads between processors and (b)
/// charge modeled time for communication and local computation.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    clocks: Vec<ProcClock>,
    stats: StatsRegistry,
    /// Critical-path modeled seconds attributed to each phase kind (see
    /// [`Machine::set_phase_kind`]).
    phase_elapsed: BTreeMap<PhaseKind, f64>,
    /// Clock reading at the last phase-kind change.
    last_phase_sample: f64,
    /// Count of SPMD regions run so far: every public `Backend::run_*` call
    /// advances it exactly once, on every engine — the coordinate system
    /// fault plans and checkpoints are keyed on.
    epoch: u64,
    /// The installed fault schedule, consulted at every per-rank kernel
    /// entry. Shared (not deep-cloned) across machine clones so consumed
    /// faults stay consumed through snapshot / restore.
    faults: Option<Arc<FaultPlan>>,
    /// The installed trace sink, fed by every engine when present. `None`
    /// (the default) keeps every hook on the disabled fast path: one
    /// pointer test, no allocation, no clock effect. Shared across machine
    /// clones like the fault plan.
    trace: Option<Arc<TraceSink>>,
    /// The installed metrics registry, fed from the same hook points as the
    /// trace sink. `None` (the default) keeps every hook on the disabled
    /// fast path: one pointer test, no allocation, no clock effect. Shared
    /// across machine clones like the fault plan and the trace sink.
    metrics: Option<Arc<MetricsRegistry>>,
}

/// A reusable snapshot of a [`Machine`]'s mutable state (clocks, statistics,
/// phase attribution, epoch) for checkpoint / rollback recovery.
///
/// Refreshing an existing snapshot with [`Machine::snapshot_into`] and
/// rolling back with [`Machine::restore_from`] are allocation-free in steady
/// state (once the snapshot's buffers have grown to the machine's working
/// set and no *new* phase-kind keys or labelled records appear between
/// refreshes). Restore relies on the machine having evolved forward from
/// the snapshot without an intervening [`Machine::reset`]: labelled records
/// are append-only, so rollback just truncates them.
#[derive(Debug, Clone, Default)]
pub struct MachineSnapshot {
    clocks: Vec<ProcClock>,
    stats: StatsSnapshot,
    phase_elapsed: BTreeMap<PhaseKind, f64>,
    last_phase_sample: f64,
    epoch: u64,
}

impl MachineSnapshot {
    /// An empty snapshot; fill it with [`Machine::snapshot_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The machine epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Machine {
    /// Create a machine from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::validate`]).
    pub fn new(cfg: MachineConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid machine configuration: {e}");
        }
        let clocks = vec![ProcClock::default(); cfg.nprocs];
        Machine {
            cfg,
            clocks,
            stats: StatsRegistry::new(),
            phase_elapsed: BTreeMap::new(),
            last_phase_sample: 0.0,
            epoch: 0,
            faults: None,
            trace: None,
            metrics: None,
        }
    }

    /// The current machine epoch: how many SPMD regions (`Backend::run_*`
    /// calls) have started so far. Identical across engines by construction,
    /// which is what makes `(epoch, rank)` fault coordinates portable.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Start a new SPMD region. Called exactly once at the top of every
    /// public `Backend::run_*` entry point, on every engine.
    #[inline]
    pub(crate) fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        if self.trace.is_some() {
            self.trace_epoch_boundary();
        }
        if let Some(m) = &self.metrics {
            m.incr(None, Counter::Epochs, 1);
        }
        self.epoch
    }

    /// Out-of-line traced side of [`Machine::advance_epoch`]: close the
    /// previous epoch's span, publish the modeled clock and the new epoch
    /// stamp, and open the new span — all on the driver's ring. Kept
    /// `#[cold]` so the disabled path stays a single predictable branch.
    #[cold]
    fn trace_epoch_boundary(&self) {
        let Some(t) = &self.trace else { return };
        t.publish_modeled(self.modeled_now());
        if self.epoch > 1 {
            t.record_driver(TraceEventKind::EpochEnd, 0);
        }
        t.set_epoch(self.epoch);
        t.record_driver(TraceEventKind::EpochBegin, 0);
    }

    /// The modeled clock "now": the maximum per-processor total, in
    /// seconds. This is the value the trace subsystem correlates against
    /// measured wall time.
    #[inline]
    pub fn modeled_now(&self) -> f64 {
        self.clocks
            .iter()
            .map(|c| c.total().as_seconds())
            .fold(0.0, f64::max)
    }

    /// Install (or clear) the fault schedule consulted at every per-rank
    /// kernel entry. The plan is shared, not cloned: machine clones and
    /// snapshot restores see the same consumed-fault flags, so a fired fault
    /// stays fired across recovery.
    pub fn install_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Install (or clear) the trace sink every engine feeds. Like the
    /// fault plan, the sink is shared rather than cloned, so machine
    /// clones and snapshot restores keep appending to the same timeline.
    /// Installing a sink never changes modeled clocks, values or
    /// statistics — the sink only observes them.
    pub fn install_trace(&mut self, sink: Option<Arc<TraceSink>>) {
        self.trace = sink;
    }

    /// The installed trace sink, if any.
    pub fn tracer(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    /// Install (or clear) the metrics registry every engine feeds. Like the
    /// trace sink, the registry is shared rather than cloned, so machine
    /// clones and snapshot restores keep accumulating into the same shards.
    /// Installing a registry never changes modeled clocks, values or
    /// statistics — metrics only observe them (see
    /// [`crate::metrics`]).
    pub fn install_metrics(&mut self, registry: Option<Arc<MetricsRegistry>>) {
        self.metrics = registry;
    }

    /// The installed metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Write this machine's mutable state into `snap`, reusing its buffers
    /// (allocation-free in steady state — see [`MachineSnapshot`]).
    pub fn snapshot_into(&self, snap: &mut MachineSnapshot) {
        snap.clocks.clear();
        snap.clocks.extend_from_slice(&self.clocks);
        self.stats.snapshot_into(&mut snap.stats);
        copy_btree_values(&self.phase_elapsed, &mut snap.phase_elapsed);
        snap.last_phase_sample = self.last_phase_sample;
        snap.epoch = self.epoch;
    }

    /// Roll this machine back to `snap`. The machine must have evolved
    /// forward from the snapshot without [`Machine::reset`] in between
    /// (labelled phase records are restored by truncation). Allocation-free
    /// in steady state; the installed fault plan and trace sink are left
    /// as-is.
    pub fn restore_from(&mut self, snap: &MachineSnapshot) {
        assert_eq!(
            snap.clocks.len(),
            self.clocks.len(),
            "snapshot taken on a different machine size"
        );
        self.clocks.copy_from_slice(&snap.clocks);
        self.stats.restore_from(&snap.stats);
        copy_btree_values(&snap.phase_elapsed, &mut self.phase_elapsed);
        self.last_phase_sample = snap.last_phase_sample;
        self.epoch = snap.epoch;
    }

    /// Change the phase kind attributed to subsequent work.
    ///
    /// The critical-path time (max over processors) accrued since the last
    /// phase change is credited to the *outgoing* phase kind, so callers can
    /// later ask [`Machine::phase_elapsed`] for a per-phase breakdown —
    /// exactly the rows of the paper's tables. Returns the previous kind so
    /// nested regions can restore it.
    pub fn set_phase_kind(&mut self, kind: Option<PhaseKind>) -> Option<PhaseKind> {
        let now = self
            .clocks
            .iter()
            .map(|c| c.total().as_seconds())
            .fold(0.0, f64::max);
        let outgoing = self.stats.current_kind();
        if let Some(k) = outgoing {
            *self.phase_elapsed.entry(k).or_insert(0.0) += now - self.last_phase_sample;
        }
        if let Some(m) = &self.metrics {
            // The cost-model auditor rides the same sampling point: the
            // modeled delta credited above, paired with the wall time the
            // driver actually spent since the previous sample. Intervals
            // with no active kind are attributed to `Other`.
            m.audit_sample(
                outgoing.unwrap_or(PhaseKind::Other),
                now - self.last_phase_sample,
            );
        }
        self.last_phase_sample = now;
        self.stats.set_current_kind(kind)
    }

    /// Critical-path modeled seconds attributed to `kind` so far. Work done
    /// while the current kind is still active is included.
    pub fn phase_elapsed(&self, kind: PhaseKind) -> f64 {
        let mut t = self.phase_elapsed.get(&kind).copied().unwrap_or(0.0);
        if self.stats.current_kind() == Some(kind) {
            let now = self
                .clocks
                .iter()
                .map(|c| c.total().as_seconds())
                .fold(0.0, f64::max);
            t += now - self.last_phase_sample;
        }
        t
    }

    /// Number of processors.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.cfg.nprocs
    }

    /// The machine configuration.
    #[inline]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Immutable access to the statistics registry.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Mutable access to the statistics registry (used by the harness to set
    /// the current phase kind).
    pub fn stats_mut(&mut self) -> &mut StatsRegistry {
        &mut self.stats
    }

    /// Note communication an optimization avoided — `messages` messages and
    /// `words` payload words (converted to bytes with the machine's word
    /// size) that would have been charged without it. Bookkeeping only:
    /// forwarded to the stats registry's saved bucket, never to the clocks
    /// or real totals, so enabling an optimization that records savings
    /// cannot perturb bit-identity of the modeled run.
    pub fn note_schedule_savings(&mut self, label: &'static str, messages: usize, words: usize) {
        self.stats
            .note_saved(label, messages, words * self.cfg.word_bytes);
    }

    /// Snapshot of the per-processor clocks as an [`ElapsedReport`].
    pub fn elapsed(&self) -> ElapsedReport {
        ElapsedReport {
            per_proc: self.clocks.iter().map(|c| c.total().as_seconds()).collect(),
            compute: self.clocks.iter().map(|c| c.compute.as_seconds()).collect(),
            comm: self.clocks.iter().map(|c| c.comm.as_seconds()).collect(),
            idle: self.clocks.iter().map(|c| c.idle.as_seconds()).collect(),
        }
    }

    /// Reset all clocks and statistics to zero.
    pub fn reset(&mut self) {
        for c in &mut self.clocks {
            *c = ProcClock::default();
        }
        self.stats.clear();
        self.phase_elapsed.clear();
        self.last_phase_sample = 0.0;
        self.epoch = 0;
    }

    /// Charge `units` of local computation on processor `proc`.
    #[inline]
    pub fn charge_compute(&mut self, proc: ProcId, units: f64) {
        self.clocks[proc].charge_compute(units * self.cfg.cost.compute_unit);
    }

    /// Charge `words` of local memory traffic (buffer packing / unpacking,
    /// table copies) on processor `proc`.
    #[inline]
    pub fn charge_memory(&mut self, proc: ProcId, words: f64) {
        self.clocks[proc].charge_compute(words * self.cfg.cost.memory_word);
    }

    /// Charge the same number of compute units on every processor (used for
    /// perfectly replicated work).
    pub fn charge_compute_all(&mut self, units: f64) {
        for p in 0..self.nprocs() {
            self.charge_compute(p, units);
        }
    }

    /// Execute one message exchange phase described by `plan`.
    ///
    /// Costs charged per processor `p`:
    /// * for every message sent by `p`: `alpha + beta*bytes + per_hop*hops`
    ///   plus `memory_word` per payload word for packing;
    /// * for every message received by `p`: the same transfer cost (the
    ///   receive side of a blocking `csend`/`crecv` pair) plus unpacking.
    ///
    /// Self-sends (messages with `from == to`) move data but are charged only
    /// the memory-copy cost, no α/β.
    ///
    /// When the sync model is [`SyncModel::BarrierPerPhase`] every clock is
    /// advanced to the phase maximum afterwards.
    pub fn exchange<T: Clone + Send>(
        &mut self,
        label: &str,
        plan: ExchangePlan<T>,
    ) -> Delivered<T> {
        assert_eq!(
            plan.nprocs(),
            self.nprocs(),
            "exchange plan built for a different machine size"
        );
        let word_bytes = self.cfg.word_bytes;
        let cost = self.cfg.cost;
        let topology = self.cfg.topology;
        let nprocs = self.nprocs();

        let mut stats = CommStats {
            phases: 1,
            ..CommStats::default()
        };

        for m in plan.messages() {
            let words = m.payload.len();
            let bytes = words * word_bytes;
            if m.from == m.to {
                // Local copy only.
                let t = 2.0 * words as f64 * cost.memory_word;
                self.clocks[m.from].charge_compute(t);
                continue;
            }
            let h = hops(topology, nprocs, m.from, m.to);
            let transfer = cost.message_cost(bytes, h);
            let pack = words as f64 * cost.memory_word;
            self.clocks[m.from].charge_comm(transfer + pack);
            self.clocks[m.to].charge_comm(transfer + pack);
            stats.messages += 1;
            stats.bytes += bytes;
            stats.comm_seconds += 2.0 * (transfer + pack);
        }

        if let Some(m) = &self.metrics {
            m.note_phase_volume(&stats);
        }
        self.stats.record(label, stats);
        if self.cfg.sync == SyncModel::BarrierPerPhase {
            self.synchronize_clocks();
        }
        Delivered::from_messages(nprocs, plan.into_messages())
    }

    /// Charge one point-to-point message of `words` payload words from
    /// `from` to `to` without building an [`ExchangePlan`], accumulating its
    /// statistics into `phase`. The cost math is identical to one message of
    /// [`Machine::exchange`]: `alpha + beta*bytes + per_hop*hops` transfer
    /// plus a packing word cost, charged to both endpoint clocks; self-sends
    /// are charged the local copy cost only and counted as zero messages.
    ///
    /// This is the allocation-free path the flattened executor uses: data
    /// moves directly between the runtime's own buffers (the simulator
    /// shares one address space), and the machine is only asked to account
    /// for the transfer. Finish the phase with [`Machine::end_phase`] or
    /// [`Machine::end_phase_quiet`].
    #[inline]
    pub fn charge_p2p(&mut self, phase: &mut PhaseCharge, from: ProcId, to: ProcId, words: usize) {
        let bytes = words * self.cfg.word_bytes;
        if from == to {
            let t = 2.0 * words as f64 * self.cfg.cost.memory_word;
            self.clocks[from].charge_compute(t);
            return;
        }
        let h = hops(self.cfg.topology, self.cfg.nprocs, from, to);
        let transfer = self.cfg.cost.message_cost(bytes, h);
        let pack = words as f64 * self.cfg.cost.memory_word;
        self.clocks[from].charge_comm(transfer + pack);
        self.clocks[to].charge_comm(transfer + pack);
        phase.stats.messages += 1;
        phase.stats.bytes += bytes;
        phase.stats.comm_seconds += 2.0 * (transfer + pack);
    }

    /// Finish a hand-charged message phase, recording it under `label` and
    /// applying the per-phase barrier if the sync model asks for one.
    pub fn end_phase(&mut self, label: &str, phase: PhaseCharge) {
        if let Some(m) = &self.metrics {
            m.note_phase_volume(&phase.stats);
        }
        self.stats.record(label, phase.stats);
        if self.cfg.sync == SyncModel::BarrierPerPhase {
            self.synchronize_clocks();
        }
    }

    /// Finish a hand-charged message phase without keeping a labelled
    /// record (see [`StatsRegistry::record_quiet`]); totals and clocks are
    /// updated exactly as [`Machine::end_phase`] would. This variant
    /// performs no heap allocation in steady state, which the executor's
    /// per-iteration gather/scatter relies on.
    pub fn end_phase_quiet(&mut self, phase: PhaseCharge) {
        if let Some(m) = &self.metrics {
            m.note_phase_volume(&phase.stats);
        }
        self.stats.record_quiet(phase.stats);
        if self.cfg.sync == SyncModel::BarrierPerPhase {
            self.synchronize_clocks();
        }
    }

    /// Finish a hand-charged message phase without a per-phase record, but
    /// with its totals additionally attributed to a static label bucket
    /// (see [`StatsRegistry::record_quiet_labelled`]) — how fused sweeps
    /// stay distinguishable from split phases in recorded tables. Clocks
    /// and grand totals evolve exactly as [`Machine::end_phase_quiet`];
    /// allocation-free in steady state once the label's bucket exists.
    pub fn end_phase_quiet_labelled(&mut self, label: &'static str, phase: PhaseCharge) {
        if let Some(m) = &self.metrics {
            m.note_phase_volume(&phase.stats);
        }
        self.stats.record_quiet_labelled(label, phase.stats);
        if self.cfg.sync == SyncModel::BarrierPerPhase {
            self.synchronize_clocks();
        }
    }

    /// Explicit barrier: charge a `log P` tree of latency-only messages and
    /// advance every clock to the maximum.
    pub fn barrier(&mut self, label: &str) {
        let p = self.nprocs();
        if p > 1 {
            let rounds = (usize::BITS - (p - 1).leading_zeros()) as f64;
            let t = 2.0 * rounds * self.cfg.cost.alpha; // up-sweep + down-sweep
            for c in &mut self.clocks {
                c.charge_comm(t);
            }
            let stats = CommStats {
                messages: 2 * (p - 1),
                bytes: 0,
                phases: 1,
                comm_seconds: t * p as f64,
            };
            if let Some(m) = &self.metrics {
                m.note_phase_volume(&stats);
            }
            self.stats.record(label, stats);
        }
        self.synchronize_clocks();
    }

    /// Advance every clock to the current maximum total, charging the
    /// difference as idle time.
    pub fn synchronize_clocks(&mut self) {
        let max_total = self
            .clocks
            .iter()
            .map(|c| c.total().as_seconds())
            .fold(0.0, f64::max);
        for c in &mut self.clocks {
            let gap = max_total - c.total().as_seconds();
            if gap > 0.0 {
                c.charge_idle(gap);
            }
        }
    }

    /// Run an SPMD region: call `f(p)` for every processor id `p` and collect
    /// the results in processor order. The closures must not touch the
    /// machine (the machine is borrowed mutably by the caller to charge
    /// costs afterwards), which keeps the modeled time independent of the
    /// real execution order.
    ///
    /// This is the small fixed-order helper; regions that also need to
    /// charge costs or exchange payloads rank-locally should go through the
    /// [`Backend`](crate::backend::Backend) abstraction instead, which can
    /// run them on one OS thread per rank.
    pub fn run_spmd<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ProcId) -> T + Sync + Send,
    {
        (0..self.nprocs()).map(f).collect()
    }

    /// Run an SPMD region sequentially (deterministic order, useful in tests
    /// and tiny phases where thread spawn overhead would dominate).
    pub fn run_spmd_seq<T, F>(&self, mut f: F) -> Vec<T>
    where
        F: FnMut(ProcId) -> T,
    {
        (0..self.nprocs()).map(&mut f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, SyncModel};

    #[test]
    fn exchange_charges_both_ends() {
        let mut m = Machine::new(MachineConfig::unit(2).with_sync(SyncModel::NoImplicitBarrier));
        let mut plan = ExchangePlan::new(2);
        plan.push(0, 1, vec![1u64, 2, 3]);
        let d = m.exchange("test", plan);
        assert_eq!(d.received(1)[0].payload, vec![1, 2, 3]);
        let e = m.elapsed();
        // unit cost: alpha=1, beta=1/byte (3 words * 8 bytes = 24), hop=1,
        // memory=1/word*3 -> transfer=1+24+1=26, pack=3 -> 29 per side.
        assert!((e.comm[0] - 29.0).abs() < 1e-9, "{}", e.comm[0]);
        assert!((e.comm[1] - 29.0).abs() < 1e-9);
    }

    #[test]
    fn self_send_is_memory_only() {
        let mut m = Machine::new(MachineConfig::unit(2).with_sync(SyncModel::NoImplicitBarrier));
        let mut plan = ExchangePlan::new(2);
        plan.push(0, 0, vec![1u64, 2]);
        let d = m.exchange("local", plan);
        assert_eq!(d.received(0)[0].payload, vec![1, 2]);
        let e = m.elapsed();
        assert_eq!(e.comm[0], 0.0);
        assert!((e.compute[0] - 4.0).abs() < 1e-9); // 2 words in + out
        assert_eq!(m.stats().grand_totals().messages, 0);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut m = Machine::new(MachineConfig::unit(4));
        m.charge_compute(2, 100.0);
        m.barrier("sync");
        let e = m.elapsed();
        let max = e.max_seconds();
        for p in 0..4 {
            assert!((e.per_proc[p] - max).abs() < 1e-9, "proc {p} not synced");
        }
        assert!(e.idle.iter().any(|&i| i > 0.0));
    }

    #[test]
    fn barrier_per_phase_syncs_after_exchange() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let mut plan = ExchangePlan::new(4);
        plan.push(0, 1, vec![9u8]);
        m.exchange("x", plan);
        let e = m.elapsed();
        let max = e.max_seconds();
        assert!(max > 0.0);
        for p in 0..4 {
            assert!((e.per_proc[p] - max).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_accumulate_messages_and_bytes() {
        let mut m = Machine::new(MachineConfig::ipsc860(4));
        let mut plan = ExchangePlan::new(4);
        plan.push(0, 1, vec![1u64; 10]);
        plan.push(2, 3, vec![1u64; 5]);
        m.exchange("phase", plan);
        let t = m.stats().grand_totals();
        assert_eq!(t.messages, 2);
        assert_eq!(t.bytes, 15 * 8);
        assert_eq!(t.phases, 1);
    }

    #[test]
    fn run_spmd_returns_in_proc_order() {
        let m = Machine::new(MachineConfig::unit(8));
        let out = m.run_spmd(|p| p * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        let out = m.run_spmd_seq(|p| p + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn reset_clears_clocks_and_stats() {
        let mut m = Machine::new(MachineConfig::unit(2));
        m.charge_compute(0, 5.0);
        let mut plan = ExchangePlan::new(2);
        plan.push(0, 1, vec![1u8]);
        m.exchange("x", plan);
        m.reset();
        assert_eq!(m.elapsed().max_seconds(), 0.0);
        assert!(m.stats().is_empty());
    }

    #[test]
    fn phase_kind_accrues_critical_path_time() {
        let mut m = Machine::new(MachineConfig::unit(2));
        m.set_phase_kind(Some(crate::stats::PhaseKind::Inspector));
        m.charge_compute(0, 10.0);
        m.set_phase_kind(Some(crate::stats::PhaseKind::Executor));
        m.charge_compute(0, 5.0);
        // Executor phase still open: phase_elapsed includes work so far.
        assert!((m.phase_elapsed(crate::stats::PhaseKind::Inspector) - 10.0).abs() < 1e-9);
        assert!((m.phase_elapsed(crate::stats::PhaseKind::Executor) - 5.0).abs() < 1e-9);
        m.set_phase_kind(None);
        assert!((m.phase_elapsed(crate::stats::PhaseKind::Executor) - 5.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.phase_elapsed(crate::stats::PhaseKind::Executor), 0.0);
    }

    #[test]
    fn charge_p2p_matches_exchange_costs() {
        // The hand-charged path must be cost-identical to an ExchangePlan
        // carrying the same messages.
        let cfg = MachineConfig::ipsc860(4);
        let mut via_plan = Machine::new(cfg.clone());
        let mut plan = ExchangePlan::new(4);
        plan.push(0, 1, vec![0u64; 10]);
        plan.push(2, 3, vec![0u64; 5]);
        plan.push(1, 1, vec![0u64; 7]); // self-send
        via_plan.exchange("x", plan);

        let mut via_charge = Machine::new(cfg);
        let mut phase = PhaseCharge::new();
        via_charge.charge_p2p(&mut phase, 0, 1, 10);
        via_charge.charge_p2p(&mut phase, 2, 3, 5);
        via_charge.charge_p2p(&mut phase, 1, 1, 7);
        via_charge.end_phase("x", phase);

        let a = via_plan.stats().grand_totals();
        let b = via_charge.stats().grand_totals();
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.phases, b.phases);
        let ea = via_plan.elapsed();
        let eb = via_charge.elapsed();
        for p in 0..4 {
            assert!((ea.per_proc[p] - eb.per_proc[p]).abs() < 1e-12, "proc {p}");
        }
    }

    #[test]
    fn quiet_phase_counts_in_totals_but_not_records() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let mut phase = PhaseCharge::new();
        m.charge_p2p(&mut phase, 0, 1, 3);
        m.end_phase_quiet(phase);
        assert_eq!(m.stats().grand_totals().messages, 1);
        assert_eq!(m.stats().grand_totals().phases, 1);
        assert!(
            m.stats().records().is_empty(),
            "quiet phases keep no record"
        );
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn bad_config_panics() {
        let _ = Machine::new(MachineConfig::ipsc860(5));
    }

    #[test]
    #[should_panic(expected = "different machine size")]
    fn mismatched_plan_panics() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let plan: ExchangePlan<u8> = ExchangePlan::new(4);
        m.exchange("bad", plan);
    }
}
