//! All-to-all personalized exchange: the only way data moves between the
//! simulated processors.
//!
//! An [`ExchangePlan`] collects typed messages (`Vec<T>` payloads) from each
//! source processor to each destination. [`crate::Machine::exchange`]
//! consumes the plan, charges the cost model, and returns a [`Delivered`]
//! structure from which each destination processor can read exactly the
//! messages addressed to it, in a deterministic order (sorted by source).

use serde::{Deserialize, Serialize};

/// A single point-to-point message carrying `len` payload items.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message<T> {
    /// Source processor.
    pub from: usize,
    /// Destination processor.
    pub to: usize,
    /// Payload items.
    pub payload: Vec<T>,
}

/// A set of messages to be exchanged in one communication phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangePlan<T> {
    nprocs: usize,
    messages: Vec<Message<T>>,
}

impl<T> ExchangePlan<T> {
    /// New empty plan for a machine with `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        ExchangePlan {
            nprocs,
            messages: Vec::new(),
        }
    }

    /// Number of processors this plan was built for.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Add a message. Empty payloads are dropped (no message is sent), which
    /// mirrors real inspector-generated schedules that skip empty slots.
    ///
    /// # Panics
    /// Panics if `from` or `to` is out of range.
    pub fn push(&mut self, from: usize, to: usize, payload: Vec<T>) {
        assert!(
            from < self.nprocs && to < self.nprocs,
            "processor id out of range: {from}->{to} with {} procs",
            self.nprocs
        );
        if payload.is_empty() {
            return;
        }
        self.messages.push(Message { from, to, payload });
    }

    /// Messages in the plan.
    pub fn messages(&self) -> &[Message<T>] {
        &self.messages
    }

    /// Number of messages (excluding local self-sends? no — including; the
    /// machine decides whether self-sends are free).
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when no messages were added.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Total number of payload items across all messages.
    pub fn total_items(&self) -> usize {
        self.messages.iter().map(|m| m.payload.len()).sum()
    }

    /// Consume the plan, returning its messages.
    pub fn into_messages(self) -> Vec<Message<T>> {
        self.messages
    }
}

/// The result of an exchange: messages grouped by destination processor,
/// sorted by source processor for determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered<T> {
    per_dest: Vec<Vec<Message<T>>>,
}

impl<T> Delivered<T> {
    pub(crate) fn from_messages(nprocs: usize, mut messages: Vec<Message<T>>) -> Self {
        messages.sort_by_key(|m| (m.to, m.from));
        let mut per_dest: Vec<Vec<Message<T>>> = (0..nprocs).map(|_| Vec::new()).collect();
        for m in messages {
            per_dest[m.to].push(m);
        }
        Delivered { per_dest }
    }

    /// Messages delivered to processor `proc`, ordered by source.
    pub fn received(&self, proc: usize) -> &[Message<T>] {
        &self.per_dest[proc]
    }

    /// Iterate over `(destination, messages)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[Message<T>])> {
        self.per_dest
            .iter()
            .enumerate()
            .map(|(p, m)| (p, m.as_slice()))
    }

    /// Total number of delivered messages.
    pub fn message_count(&self) -> usize {
        self.per_dest.iter().map(Vec::len).sum()
    }

    /// Consume and return the per-destination message lists.
    pub fn into_per_dest(self) -> Vec<Vec<Message<T>>> {
        self.per_dest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_drops_empty_payloads() {
        let mut plan: ExchangePlan<u32> = ExchangePlan::new(2);
        plan.push(0, 1, vec![]);
        plan.push(1, 0, vec![7]);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.total_items(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plan_rejects_bad_proc() {
        let mut plan: ExchangePlan<u32> = ExchangePlan::new(2);
        plan.push(0, 5, vec![1]);
    }

    #[test]
    fn delivery_is_sorted_by_source() {
        let mut plan = ExchangePlan::new(4);
        plan.push(3, 0, vec![30u32]);
        plan.push(1, 0, vec![10u32]);
        plan.push(2, 0, vec![20u32]);
        let delivered = Delivered::from_messages(4, plan.into_messages());
        let sources: Vec<usize> = delivered.received(0).iter().map(|m| m.from).collect();
        assert_eq!(sources, vec![1, 2, 3]);
        assert_eq!(delivered.message_count(), 3);
        assert!(delivered.received(1).is_empty());
    }

    #[test]
    fn iter_covers_all_destinations() {
        let mut plan = ExchangePlan::new(3);
        plan.push(0, 2, vec![1u8, 2, 3]);
        let delivered = Delivered::from_messages(3, plan.into_messages());
        let dests: Vec<usize> = delivered.iter().map(|(d, _)| d).collect();
        assert_eq!(dests, vec![0, 1, 2]);
        assert_eq!(delivered.received(2)[0].payload, vec![1, 2, 3]);
    }
}
