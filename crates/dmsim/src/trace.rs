//! Flight recorder + epoch tracing: per-lane span timelines correlating
//! measured wall time with the modeled clock, across all three engines.
//!
//! The simulator's whole argument rests on phase-level cost accounting, but
//! the aggregate [`StatsRegistry`](crate::stats::StatsRegistry) cannot show
//! *when* things happened: which lane waited at which barrier, how long a
//! straggling rank actually ran, how modeled time advanced relative to wall
//! time. The [`TraceSink`] is that instrument:
//!
//! * **Per-lane ring buffers.** One bounded SoA ring per worker lane plus a
//!   dedicated driver ring. Each lane is written by exactly one thread at a
//!   time (the engines' existing single-writer-per-lane discipline), so
//!   recording takes no locks; the rings are preallocated at construction,
//!   so steady-state recording performs **zero heap allocation** even with
//!   tracing enabled.
//! * **Flight-recorder mode.** Rings are bounded: once full they wrap,
//!   keeping the most recent events and counting the overwritten ones. The
//!   tail is captured automatically into every [`PhaseError`] diagnosis
//!   (see [`TraceSink::error_tail`]), so a straggler or panic arrives with
//!   its timeline attached.
//! * **Wall-vs-modeled correlation.** Every event is stamped with measured
//!   wall nanoseconds (from a shared origin), the machine epoch, and the
//!   *modeled* clock seconds most recently published by the driver. Worker
//!   lanes observe the modeled clock as of the phase they were released
//!   into — modeled charges apply at driver-side replay, so within one
//!   phase the modeled stamp is the phase-entry clock; the driver's
//!   `ReplayEnd` events carry the post-replay clock, which is what lets a
//!   timeline show modeled time advancing strictly at replay points.
//!
//! The contract is the repo's signature: tracing disabled is provably
//! zero-cost (a `None` check per hook, no allocation, bit-identical values,
//! clocks and statistics), and tracing enabled never changes modeled
//! clocks — the sink only observes them.
//!
//! [`PhaseError`]: crate::fault::PhaseError

use serde_json::{json, Value};
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default per-lane ring capacity (events) for [`TraceSink::new`].
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What happened. Kinds come in Begin/End pairs (spans) or alone
/// (instants); see [`TraceEventKind::span_partner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum TraceEventKind {
    /// An SPMD region (machine epoch) started. Driver lane only.
    #[default]
    EpochBegin,
    /// The previous SPMD region ended (emitted lazily at the next epoch
    /// advance, and for the final epoch at export). Driver lane only.
    EpochEnd,
    /// A rank's kernel started on this lane (`arg` = rank).
    KernelEnter,
    /// A rank's kernel finished on this lane (`arg` = rank).
    KernelExit,
    /// A fused-sweep combine stage started for a rank (`arg` = rank).
    CombineEnter,
    /// A fused-sweep combine stage finished for a rank (`arg` = rank).
    CombineExit,
    /// A pool worker was released into a phase; `arg` is 1 when the lane
    /// had parked on the condvar (vs staying in the spin window).
    WorkerRelease,
    /// The lane arrived at the pool's completion barrier (`arg` = lane).
    BarrierArrive,
    /// The lane began waiting at the fused sweep's [`StageBarrier`]
    /// (`arg` = stage index).
    ///
    /// [`StageBarrier`]: crate::pool
    StageWaitBegin,
    /// The lane crossed the stage barrier (`arg` = stage index).
    StageWaitEnd,
    /// Driver-side charge replay began.
    ReplayBegin,
    /// Driver-side charge replay finished; this event's modeled stamp is
    /// the post-replay clock.
    ReplayEnd,
    /// The executor refreshed its rollback checkpoint. Driver lane.
    CheckpointRefresh,
    /// A planned [`FaultPlan`](crate::fault::FaultPlan) fault fired at this
    /// lane's kernel entry (`arg` = rank).
    FaultFired,
    /// A [`PhaseError`](crate::fault::PhaseError) was diagnosed; the flight
    /// recorder tail was captured at this instant. Driver lane.
    ErrorDiagnosed,
    /// A recovery retry attempt started (`arg` = attempt number).
    RetryAttempt,
    /// Recovery rolled back to the last checkpoint. Driver lane.
    Rollback,
    /// Recovery degraded the engine to the sequential oracle. Driver lane.
    Degrade,
}

impl TraceEventKind {
    /// For a Begin-side span kind, the matching End kind; `None` for End
    /// sides and instants.
    pub fn span_partner(self) -> Option<TraceEventKind> {
        match self {
            TraceEventKind::EpochBegin => Some(TraceEventKind::EpochEnd),
            TraceEventKind::KernelEnter => Some(TraceEventKind::KernelExit),
            TraceEventKind::CombineEnter => Some(TraceEventKind::CombineExit),
            TraceEventKind::StageWaitBegin => Some(TraceEventKind::StageWaitEnd),
            TraceEventKind::ReplayBegin => Some(TraceEventKind::ReplayEnd),
            _ => None,
        }
    }

    /// True for the End side of a span pair.
    pub fn is_span_end(self) -> bool {
        matches!(
            self,
            TraceEventKind::EpochEnd
                | TraceEventKind::KernelExit
                | TraceEventKind::CombineExit
                | TraceEventKind::StageWaitEnd
                | TraceEventKind::ReplayEnd
        )
    }

    /// Short name used in exports and tables.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::EpochBegin | TraceEventKind::EpochEnd => "epoch",
            TraceEventKind::KernelEnter | TraceEventKind::KernelExit => "kernel",
            TraceEventKind::CombineEnter | TraceEventKind::CombineExit => "combine",
            TraceEventKind::WorkerRelease => "worker-release",
            TraceEventKind::BarrierArrive => "barrier-arrive",
            TraceEventKind::StageWaitBegin | TraceEventKind::StageWaitEnd => "stage-wait",
            TraceEventKind::ReplayBegin | TraceEventKind::ReplayEnd => "replay",
            TraceEventKind::CheckpointRefresh => "checkpoint-refresh",
            TraceEventKind::FaultFired => "fault-fired",
            TraceEventKind::ErrorDiagnosed => "error-diagnosed",
            TraceEventKind::RetryAttempt => "retry-attempt",
            TraceEventKind::Rollback => "rollback",
            TraceEventKind::Degrade => "degrade",
        }
    }
}

/// One recorded event, as read back out of a lane's ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// The lane (ring) the event was recorded on; the last lane is the
    /// driver's (see [`TraceSink::driver_lane`]).
    pub lane: usize,
    /// What happened.
    pub kind: TraceEventKind,
    /// Kind-specific payload (rank, stage index, parked flag, attempt).
    pub arg: u32,
    /// Measured wall time in nanoseconds since the sink's origin.
    pub wall_ns: u64,
    /// The modeled clock (max over processors, seconds) most recently
    /// published by the driver when the event was recorded.
    pub modeled_s: f64,
    /// Machine epoch the event belongs to.
    pub epoch: u64,
}

/// One lane's bounded event ring, stored struct-of-arrays so recording
/// touches five flat preallocated vectors and nothing else.
struct LaneRing {
    kind: Vec<TraceEventKind>,
    arg: Vec<u32>,
    wall_ns: Vec<u64>,
    modeled_s: Vec<f64>,
    epoch: Vec<u64>,
    /// Total events ever recorded; `head % capacity` is the next slot.
    head: u64,
}

impl LaneRing {
    fn new(capacity: usize) -> Self {
        LaneRing {
            kind: vec![TraceEventKind::default(); capacity],
            arg: vec![0; capacity],
            wall_ns: vec![0; capacity],
            modeled_s: vec![0.0; capacity],
            epoch: vec![0; capacity],
            head: 0,
        }
    }

    #[inline]
    fn push(&mut self, kind: TraceEventKind, arg: u32, wall_ns: u64, modeled_s: f64, epoch: u64) {
        let i = (self.head % self.kind.len() as u64) as usize;
        self.kind[i] = kind;
        self.arg[i] = arg;
        self.wall_ns[i] = wall_ns;
        self.modeled_s[i] = modeled_s;
        self.epoch[i] = epoch;
        self.head += 1;
    }

    fn len(&self) -> usize {
        (self.head as usize).min(self.kind.len())
    }

    fn dropped(&self) -> u64 {
        self.head.saturating_sub(self.kind.len() as u64)
    }

    /// Events oldest-first, tagged with `lane`.
    fn events(&self, lane: usize) -> Vec<TraceEvent> {
        let cap = self.kind.len() as u64;
        let len = self.len() as u64;
        (0..len)
            .map(|j| {
                let i = ((self.head - len + j) % cap) as usize;
                TraceEvent {
                    lane,
                    kind: self.kind[i],
                    arg: self.arg[i],
                    wall_ns: self.wall_ns[i],
                    modeled_s: self.modeled_s[i],
                    epoch: self.epoch[i],
                }
            })
            .collect()
    }
}

/// The flight recorder: bounded lock-free per-lane event rings, fed by all
/// three engines, exportable as a Chrome trace or a summary table.
///
/// Construct one sized to the engine's lane count, wrap it in an
/// [`Arc`](std::sync::Arc) and install it with
/// [`Machine::install_trace`](crate::Machine::install_trace) (or the lang
/// executor's `with_trace`). Lanes `0..lanes` belong to the engine's worker
/// lanes (the threaded engine uses one per rank, the pool one per worker);
/// the extra last ring ([`TraceSink::driver_lane`]) belongs to the driver
/// thread.
///
/// # Writer protocol (why the lock-free rings are sound)
///
/// Each ring is written by at most one thread at any moment: worker lane
/// `w` writes ring `w` only between the engines' release and completion
/// barriers, and the driver writes its own ring (and reads everything)
/// only outside that window. Events recorded to an out-of-range lane are
/// counted in [`TraceSink::dropped`] rather than recorded. Read-out
/// methods ([`TraceSink::events`], exports) must only be called while no
/// phase is in flight — which is every point at which user code can hold
/// the sink, since the engines' `run_*` entry points do not return
/// mid-phase.
pub struct TraceSink {
    rings: Vec<UnsafeCell<LaneRing>>,
    origin: Instant,
    /// f64 bits of the last driver-published modeled clock (seconds).
    modeled_bits: AtomicU64,
    /// Machine epoch stamped onto new events.
    epoch: AtomicU64,
    /// Events addressed to a lane the sink has no ring for.
    lost: AtomicU64,
    /// The tail captured at the last `PhaseError` diagnosis.
    error_tail: Mutex<Vec<TraceEvent>>,
}

// Safety: see "Writer protocol" in the type docs — each `UnsafeCell` ring
// has exactly one writer at any moment and is read only while quiescent;
// everything else is atomics or a mutex.
unsafe impl Send for TraceSink {}
unsafe impl Sync for TraceSink {}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("lanes", &self.rings.len())
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceSink {
    /// A sink with `lanes` worker rings (plus the driver's) of
    /// [`DEFAULT_RING_CAPACITY`] events each.
    pub fn new(lanes: usize) -> Self {
        Self::with_capacity(lanes, DEFAULT_RING_CAPACITY)
    }

    /// A sink with `lanes` worker rings (plus the driver's) of
    /// `capacity` events each — the flight-recorder bound.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(lanes: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "trace rings need a nonzero capacity");
        TraceSink {
            rings: (0..lanes + 1)
                .map(|_| UnsafeCell::new(LaneRing::new(capacity)))
                .collect(),
            origin: Instant::now(),
            modeled_bits: AtomicU64::new(0.0f64.to_bits()),
            epoch: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            error_tail: Mutex::new(Vec::new()),
        }
    }

    /// Number of rings, including the driver's.
    pub fn lanes(&self) -> usize {
        self.rings.len()
    }

    /// The driver thread's ring index (the last one).
    pub fn driver_lane(&self) -> usize {
        self.rings.len() - 1
    }

    /// Record one event on `lane`'s ring, stamped with wall time, the
    /// published modeled clock and the current epoch. Lock-free; callable
    /// only by `lane`'s current writer (see the type docs).
    #[inline]
    pub fn record(&self, lane: usize, kind: TraceEventKind, arg: u32) {
        let Some(cell) = self.rings.get(lane) else {
            self.lost.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let wall_ns = self.origin.elapsed().as_nanos() as u64;
        let modeled_s = f64::from_bits(self.modeled_bits.load(Ordering::Relaxed));
        let epoch = self.epoch.load(Ordering::Relaxed);
        // Safety: single writer per lane (type docs); the driver reads only
        // while the lane is quiescent.
        unsafe { (*cell.get()).push(kind, arg, wall_ns, modeled_s, epoch) };
    }

    /// [`TraceSink::record`] on the driver's ring.
    #[inline]
    pub fn record_driver(&self, kind: TraceEventKind, arg: u32) {
        self.record(self.driver_lane(), kind, arg);
    }

    /// Publish the current modeled clock (max over processors, seconds).
    /// Called by the driver at epoch boundaries and after charge replay;
    /// subsequently recorded events carry this stamp.
    #[inline]
    pub fn publish_modeled(&self, seconds: f64) {
        self.modeled_bits
            .store(seconds.to_bits(), Ordering::Relaxed);
    }

    /// The most recently published modeled clock, in seconds.
    pub fn published_modeled(&self) -> f64 {
        f64::from_bits(self.modeled_bits.load(Ordering::Relaxed))
    }

    /// Set the machine epoch stamped onto subsequently recorded events.
    #[inline]
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
    }

    /// Total events lost to ring wrap-around or out-of-range lanes — the
    /// sum of [`TraceSink::dropped_wrapped`] and [`TraceSink::dropped_lost`].
    pub fn dropped(&self) -> u64 {
        self.dropped_wrapped() + self.dropped_lost()
    }

    /// Events overwritten by ring wrap-around: the flight-recorder bound
    /// doing its job (old events age out of a full ring).
    pub fn dropped_wrapped(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| unsafe { (*r.get()).dropped() })
            .sum()
    }

    /// Events addressed to a lane the sink has no ring for: unlike
    /// wrap-around this indicates a sink sized smaller than the engine's
    /// lane count.
    pub fn dropped_lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    /// One lane's retained events, oldest first. Driver-side read: call
    /// only while no phase is in flight.
    pub fn events(&self, lane: usize) -> Vec<TraceEvent> {
        self.rings
            .get(lane)
            .map(|r| unsafe { (*r.get()).events(lane) })
            .unwrap_or_default()
    }

    /// Every lane's retained events merged and sorted by wall time (ties
    /// broken by lane). Driver-side read.
    pub fn all_events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = (0..self.rings.len())
            .flat_map(|lane| self.events(lane))
            .collect();
        all.sort_by_key(|e| (e.wall_ns, e.lane));
        all
    }

    /// Capture the current ring contents as the flight-recorder tail for a
    /// just-diagnosed [`PhaseError`](crate::fault::PhaseError). Called
    /// automatically by the engines' `try_run_*` detectors; the captured
    /// tail stays available through [`TraceSink::error_tail`] until the
    /// next capture overwrites it.
    pub fn capture_error_tail(&self) {
        let tail = self.all_events();
        *self.error_tail.lock().unwrap() = tail;
    }

    /// The flight-recorder tail captured at the last error diagnosis
    /// (empty if none was captured yet).
    pub fn error_tail(&self) -> Vec<TraceEvent> {
        self.error_tail.lock().unwrap().clone()
    }

    /// Close the final epoch's span: emit the lazy `EpochEnd` for the
    /// current epoch if it is still open. Call once after the run, before
    /// exporting.
    pub fn finish(&self) {
        let open = self.epoch.load(Ordering::Relaxed);
        if open == 0 {
            return;
        }
        let driver = self.events(self.driver_lane());
        let begins = driver
            .iter()
            .filter(|e| e.kind == TraceEventKind::EpochBegin && e.epoch == open)
            .count();
        let ends = driver
            .iter()
            .filter(|e| e.kind == TraceEventKind::EpochEnd && e.epoch == open)
            .count();
        if begins > ends {
            self.record_driver(TraceEventKind::EpochEnd, 0);
        }
    }

    /// Export the retained timeline as Chrome-trace JSON
    /// (`chrome://tracing` / Perfetto "trace event" format): span kinds
    /// become `B`/`E` duration events, instants become `i`, one Chrome
    /// thread per lane, timestamps in microseconds of measured wall time,
    /// with the modeled clock and epoch attached as event args.
    pub fn chrome_trace(&self) -> Value {
        let mut events: Vec<Value> = Vec::new();
        for lane in 0..self.rings.len() {
            for e in self.events(lane) {
                // Epoch spans get their own virtual track: a kernel span
                // aborted by a panic must not appear to contain the next
                // epoch's boundary events.
                let tid = if matches!(
                    e.kind,
                    TraceEventKind::EpochBegin | TraceEventKind::EpochEnd
                ) {
                    self.rings.len() as u64
                } else {
                    lane as u64
                };
                let ph = if e.kind.span_partner().is_some() {
                    "B"
                } else if e.kind.is_span_end() {
                    "E"
                } else {
                    "i"
                };
                let mut obj = json!({
                    "name": format!("{} {}", e.kind.name(), e.arg),
                    "ph": ph,
                    "pid": 0u32,
                    "tid": tid,
                    "ts": e.wall_ns as f64 / 1e3,
                    "args": json!({
                        "epoch": e.epoch,
                        "modeled_s": e.modeled_s,
                        "arg": e.arg,
                    }),
                });
                if ph == "i" {
                    if let Value::Object(fields) = &mut obj {
                        fields.push(("s".to_string(), Value::Str("t".to_string())));
                    }
                }
                events.push(obj);
            }
        }
        json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": json!({
                "dropped": self.dropped(),
                "dropped_wrapped": self.dropped_wrapped(),
                "dropped_lost": self.dropped_lost(),
                "lanes": self.rings.len(),
            }),
        })
    }

    /// [`TraceSink::chrome_trace`] rendered as a JSON string, ready to be
    /// written to a `.json` file and opened in `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        serde_json::to_string(&self.chrome_trace()).unwrap_or_default()
    }

    /// Check that every lane's retained span events nest monotonically:
    /// wall timestamps are non-decreasing per lane, and every span End
    /// matches the innermost open Begin. Wrap-truncated rings may legally
    /// open with unmatched Ends (the Begins were overwritten); those are
    /// skipped. Returns a description of the first violation.
    pub fn check_span_nesting(&self) -> Result<(), String> {
        for lane in 0..self.rings.len() {
            let events = self.events(lane);
            let wrapped = self
                .rings
                .get(lane)
                .is_some_and(|r| unsafe { (*r.get()).dropped() } > 0);
            let mut lane_stack: Vec<TraceEventKind> = Vec::new();
            // Epoch spans nest on their own virtual track (see
            // `chrome_trace`), so they get their own stack here too.
            let mut epoch_stack: Vec<TraceEventKind> = Vec::new();
            let mut last_wall = 0u64;
            for (i, e) in events.iter().enumerate() {
                if e.wall_ns < last_wall {
                    return Err(format!(
                        "lane {lane}: wall time regressed at event {i} ({:?})",
                        e.kind
                    ));
                }
                last_wall = e.wall_ns;
                let stack = if matches!(
                    e.kind,
                    TraceEventKind::EpochBegin | TraceEventKind::EpochEnd
                ) {
                    &mut epoch_stack
                } else {
                    &mut lane_stack
                };
                if e.kind.span_partner().is_some() {
                    stack.push(e.kind);
                } else if e.kind.is_span_end() {
                    match stack.pop() {
                        Some(open) if open.span_partner() == Some(e.kind) => {}
                        Some(open) => {
                            return Err(format!(
                                "lane {lane}: span end {:?} closes open {:?} at event {i}",
                                e.kind, open
                            ));
                        }
                        // A ring that wrapped may have lost the Begin; a
                        // ring that never wrapped may not.
                        None if wrapped && stack.is_empty() => {}
                        None => {
                            return Err(format!(
                                "lane {lane}: span end {:?} with no open span at event {i}",
                                e.kind
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Aggregate the retained timeline into a per-lane utilization and
    /// barrier-wait summary. Driver-side read.
    pub fn summary(&self) -> TraceSummary {
        let mut lanes = Vec::with_capacity(self.rings.len());
        let mut first_wall = u64::MAX;
        let mut last_wall = 0u64;
        let mut epochs = 0u64;
        let mut arrivals: Vec<(u64, u64)> = Vec::new(); // (epoch, wall_ns)
        for lane in 0..self.rings.len() {
            let events = self.events(lane);
            let mut busy_ns = 0u64;
            let mut wait_ns = 0u64;
            let mut open_work: Option<u64> = None;
            let mut open_wait: Option<u64> = None;
            let mut parked = 0u64;
            let mut releases = 0u64;
            for e in &events {
                first_wall = first_wall.min(e.wall_ns);
                last_wall = last_wall.max(e.wall_ns);
                match e.kind {
                    TraceEventKind::KernelEnter | TraceEventKind::CombineEnter => {
                        open_work = Some(e.wall_ns);
                    }
                    TraceEventKind::KernelExit | TraceEventKind::CombineExit => {
                        if let Some(t0) = open_work.take() {
                            busy_ns += e.wall_ns.saturating_sub(t0);
                        }
                    }
                    TraceEventKind::StageWaitBegin => open_wait = Some(e.wall_ns),
                    TraceEventKind::StageWaitEnd => {
                        if let Some(t0) = open_wait.take() {
                            wait_ns += e.wall_ns.saturating_sub(t0);
                        }
                    }
                    TraceEventKind::WorkerRelease => {
                        releases += 1;
                        parked += u64::from(e.arg == 1);
                    }
                    TraceEventKind::BarrierArrive => arrivals.push((e.epoch, e.wall_ns)),
                    TraceEventKind::EpochBegin => epochs += 1,
                    _ => {}
                }
            }
            lanes.push(LaneSummary {
                lane,
                events: events.len(),
                busy_ns,
                stage_wait_ns: wait_ns,
                releases,
                parked_releases: parked,
            });
        }
        // Straggler skew: per epoch, the spread between the first and last
        // completion-barrier arrival across lanes.
        arrivals.sort_unstable();
        let mut skews_ns = Vec::new();
        let mut i = 0;
        while i < arrivals.len() {
            let epoch = arrivals[i].0;
            let mut lo = arrivals[i].1;
            let mut hi = arrivals[i].1;
            let mut j = i;
            while j < arrivals.len() && arrivals[j].0 == epoch {
                lo = lo.min(arrivals[j].1);
                hi = hi.max(arrivals[j].1);
                j += 1;
            }
            if j - i > 1 {
                skews_ns.push(hi - lo);
            }
            i = j;
        }
        let span_ns = if first_wall == u64::MAX {
            0
        } else {
            last_wall.saturating_sub(first_wall)
        };
        TraceSummary {
            lanes,
            span_ns,
            epochs,
            skews_ns,
            dropped: self.dropped(),
            dropped_wrapped: self.dropped_wrapped(),
            dropped_lost: self.dropped_lost(),
            modeled_s: self.published_modeled(),
        }
    }
}

/// One lane's row of a [`TraceSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSummary {
    /// The lane index (the last lane is the driver's).
    pub lane: usize,
    /// Retained event count.
    pub events: usize,
    /// Nanoseconds inside kernel / combine spans (the lane's useful work).
    pub busy_ns: u64,
    /// Nanoseconds waiting at fused-sweep stage barriers.
    pub stage_wait_ns: u64,
    /// Pool releases observed on this lane.
    pub releases: u64,
    /// Releases for which the lane had parked (vs spun).
    pub parked_releases: u64,
}

impl LaneSummary {
    /// Busy time as a fraction of `span_ns` (0 when the span is empty).
    pub fn utilization(&self, span_ns: u64) -> f64 {
        if span_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / span_ns as f64
        }
    }
}

/// Aggregated view of a [`TraceSink`]'s retained timeline: per-lane
/// utilization, barrier-wait and straggler-skew statistics, epochs/sec.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Per-lane rows (driver last).
    pub lanes: Vec<LaneSummary>,
    /// Wall nanoseconds between the first and last retained event.
    pub span_ns: u64,
    /// Epoch-begin events observed on the driver ring.
    pub epochs: u64,
    /// Per-epoch completion-barrier skew (last arrival − first arrival),
    /// one entry per epoch with ≥ 2 arrivals.
    pub skews_ns: Vec<u64>,
    /// Events lost to wrap-around or out-of-range lanes (the sum of the
    /// two split fields below).
    pub dropped: u64,
    /// Events overwritten by ring wrap-around (the recorder bound).
    pub dropped_wrapped: u64,
    /// Events addressed to out-of-range lanes (an undersized sink).
    pub dropped_lost: u64,
    /// The final published modeled clock, in seconds.
    pub modeled_s: f64,
}

impl TraceSummary {
    /// Observed epochs per wall-clock second.
    pub fn epochs_per_sec(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.epochs as f64 / (self.span_ns as f64 / 1e9)
        }
    }

    /// Maximum per-epoch barrier skew, in nanoseconds.
    pub fn max_skew_ns(&self) -> u64 {
        self.skews_ns.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-epoch barrier skew, in nanoseconds.
    pub fn mean_skew_ns(&self) -> f64 {
        if self.skews_ns.is_empty() {
            0.0
        } else {
            self.skews_ns.iter().sum::<u64>() as f64 / self.skews_ns.len() as f64
        }
    }

    /// The summary as a JSON value (machine-readable emit path).
    pub fn to_json(&self) -> Value {
        json!({
            "span_ns": self.span_ns,
            "epochs": self.epochs,
            "epochs_per_sec": self.epochs_per_sec(),
            "max_skew_ns": self.max_skew_ns(),
            "mean_skew_ns": self.mean_skew_ns(),
            "dropped": self.dropped,
            "dropped_wrapped": self.dropped_wrapped,
            "dropped_lost": self.dropped_lost,
            "modeled_s": self.modeled_s,
            "lanes": self
                .lanes
                .iter()
                .map(|l| {
                    json!({
                        "lane": l.lane,
                        "events": l.events,
                        "busy_ns": l.busy_ns,
                        "stage_wait_ns": l.stage_wait_ns,
                        "releases": l.releases,
                        "parked_releases": l.parked_releases,
                        "utilization": l.utilization(self.span_ns),
                    })
                })
                .collect::<Vec<_>>(),
        })
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace summary: {} epochs over {:.3} ms wall ({:.0} epochs/s), modeled {:.6} s, \
             {} dropped ({} wrapped, {} lost)",
            self.epochs,
            self.span_ns as f64 / 1e6,
            self.epochs_per_sec(),
            self.modeled_s,
            self.dropped,
            self.dropped_wrapped,
            self.dropped_lost,
        )?;
        writeln!(
            f,
            "barrier skew: max {:.3} ms, mean {:.3} ms over {} epochs",
            self.max_skew_ns() as f64 / 1e6,
            self.mean_skew_ns() / 1e6,
            self.skews_ns.len(),
        )?;
        writeln!(
            f,
            "{:>6} {:>8} {:>12} {:>12} {:>9} {:>8} {:>6}",
            "lane", "events", "busy ms", "wait ms", "releases", "parked", "util%"
        )?;
        for l in &self.lanes {
            let tag = if l.lane + 1 == self.lanes.len() {
                " (driver)"
            } else {
                ""
            };
            writeln!(
                f,
                "{:>6} {:>8} {:>12.3} {:>12.3} {:>9} {:>8} {:>5.1}%{}",
                l.lane,
                l.events,
                l.busy_ns as f64 / 1e6,
                l.stage_wait_ns as f64 / 1e6,
                l.releases,
                l.parked_releases,
                l.utilization(self.span_ns) * 100.0,
                tag,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_wrap_and_keep_the_tail() {
        let sink = TraceSink::with_capacity(1, 4);
        for i in 0..10 {
            sink.record(0, TraceEventKind::BarrierArrive, i);
        }
        let events = sink.events(0);
        assert_eq!(events.len(), 4);
        let args: Vec<u32> = events.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9], "the most recent events survive");
        assert_eq!(sink.dropped(), 6);
    }

    #[test]
    fn out_of_range_lane_is_counted_not_recorded() {
        let sink = TraceSink::new(2);
        sink.record(99, TraceEventKind::KernelEnter, 0);
        assert_eq!(sink.dropped(), 1);
        assert!(sink.events(99).is_empty());
    }

    #[test]
    fn dropped_splits_wrap_from_lost_by_cause() {
        let sink = TraceSink::with_capacity(1, 4);
        for i in 0..7 {
            sink.record(0, TraceEventKind::BarrierArrive, i); // 3 wrap away
        }
        sink.record(42, TraceEventKind::KernelEnter, 0); // 2 lost to a
        sink.record(42, TraceEventKind::KernelExit, 0); // missing lane
        assert_eq!(sink.dropped_wrapped(), 3);
        assert_eq!(sink.dropped_lost(), 2);
        assert_eq!(sink.dropped(), 5, "total stays the sum of both causes");
        let summary = sink.summary();
        assert_eq!(summary.dropped_wrapped, 3);
        assert_eq!(summary.dropped_lost, 2);
        assert_eq!(summary.dropped, 5);
        assert!(summary
            .to_string()
            .contains("5 dropped (3 wrapped, 2 lost)"));
        let json = serde_json::to_string(&summary.to_json()).unwrap_or_default();
        assert!(json.contains("\"dropped_wrapped\":3"));
        assert!(json.contains("\"dropped_lost\":2"));
        let chrome = serde_json::to_string(&sink.chrome_trace()).unwrap_or_default();
        assert!(chrome.contains("\"dropped_wrapped\":3"));
        assert!(chrome.contains("\"dropped_lost\":2"));
    }

    #[test]
    fn events_carry_published_stamps() {
        let sink = TraceSink::new(1);
        sink.set_epoch(7);
        sink.publish_modeled(1.25);
        sink.record(0, TraceEventKind::KernelEnter, 3);
        let e = sink.events(0)[0];
        assert_eq!(e.epoch, 7);
        assert_eq!(e.modeled_s.to_bits(), 1.25f64.to_bits());
        assert_eq!(e.arg, 3);
    }

    #[test]
    fn wall_time_is_monotone_per_lane() {
        let sink = TraceSink::new(1);
        for _ in 0..100 {
            sink.record(0, TraceEventKind::BarrierArrive, 0);
        }
        let events = sink.events(0);
        for w in events.windows(2) {
            assert!(w[0].wall_ns <= w[1].wall_ns);
        }
    }

    #[test]
    fn nesting_check_accepts_proper_spans_and_rejects_crossed_ones() {
        let sink = TraceSink::new(1);
        sink.record(0, TraceEventKind::KernelEnter, 0);
        sink.record(0, TraceEventKind::KernelExit, 0);
        sink.record_driver(TraceEventKind::ReplayBegin, 0);
        sink.record_driver(TraceEventKind::ReplayEnd, 0);
        assert!(sink.check_span_nesting().is_ok());

        let bad = TraceSink::new(1);
        bad.record(0, TraceEventKind::KernelEnter, 0);
        bad.record(0, TraceEventKind::StageWaitEnd, 0);
        assert!(bad.check_span_nesting().is_err());
    }

    #[test]
    fn chrome_trace_is_an_object_with_event_array() {
        let sink = TraceSink::new(1);
        sink.record(0, TraceEventKind::KernelEnter, 5);
        sink.record(0, TraceEventKind::KernelExit, 5);
        sink.record(0, TraceEventKind::FaultFired, 5);
        let v = sink.chrome_trace();
        let Value::Object(fields) = &v else {
            panic!("chrome trace must be a JSON object");
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        let Value::Array(items) = events else {
            panic!("traceEvents must be an array");
        };
        assert_eq!(items.len(), 3);
        let s = sink.chrome_trace_json();
        assert!(s.contains("\"ph\":\"B\""));
        assert!(s.contains("\"ph\":\"E\""));
        assert!(s.contains("\"ph\":\"i\""));
    }

    #[test]
    fn finish_closes_the_open_epoch_once() {
        let sink = TraceSink::new(0);
        sink.set_epoch(1);
        sink.record_driver(TraceEventKind::EpochBegin, 0);
        sink.finish();
        sink.finish();
        let kinds: Vec<TraceEventKind> = sink
            .events(sink.driver_lane())
            .iter()
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![TraceEventKind::EpochBegin, TraceEventKind::EpochEnd]
        );
        assert!(sink.check_span_nesting().is_ok());
    }

    #[test]
    fn summary_attributes_busy_wait_and_skew() {
        let sink = TraceSink::new(2);
        sink.set_epoch(1);
        sink.record_driver(TraceEventKind::EpochBegin, 0);
        sink.record(0, TraceEventKind::KernelEnter, 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        sink.record(0, TraceEventKind::KernelExit, 0);
        sink.record(0, TraceEventKind::BarrierArrive, 0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        sink.record(1, TraceEventKind::BarrierArrive, 1);
        sink.finish();
        let summary = sink.summary();
        assert_eq!(summary.epochs, 1);
        assert!(summary.lanes[0].busy_ns > 0);
        assert_eq!(summary.skews_ns.len(), 1);
        assert!(summary.max_skew_ns() > 0);
        let rendered = summary.to_string();
        assert!(rendered.contains("util%"));
        assert!(rendered.contains("(driver)"));
        let json = serde_json::to_string(&summary.to_json()).unwrap();
        assert!(json.contains("\"utilization\""));
    }
}
