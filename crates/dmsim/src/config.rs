//! Machine configuration: processor count, interconnect topology and the
//! communication / computation cost model.
//!
//! The default parameters are loosely calibrated to the Intel iPSC/860
//! hypercube used in the paper (≈ 70 µs message start-up, ≈ 2.8 MB/s
//! per-link bandwidth, ≈ 10 Mflop/s sustained per node on irregular code).
//! Absolute numbers are *not* expected to match the 1993 tables — only the
//! relative shapes matter — but starting from realistic constants keeps the
//! inspector : executor : partitioner ratios in a familiar regime.

use serde::{Deserialize, Serialize};

/// Interconnect topology used to derive hop counts between processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Hypercube of dimension `log2(P)` (the iPSC/860). Hop count is the
    /// Hamming distance between processor numbers.
    Hypercube,
    /// Fully connected network: every pair of processors is one hop apart.
    FullyConnected,
    /// Unidirectional ring: hop count is the clockwise distance.
    Ring,
    /// 2-D mesh, as square as possible. Hop count is the Manhattan distance.
    Mesh2D,
}

/// How processor clocks are reconciled at the end of a communication phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncModel {
    /// Every communication phase ends with an implicit barrier: all clocks
    /// advance to the maximum. This matches loosely-synchronous SPMD
    /// execution (the model CHAOS assumes) and is the default.
    BarrierPerPhase,
    /// Clocks advance independently; only explicit [`crate::Machine::barrier`]
    /// calls synchronize them.
    NoImplicitBarrier,
}

/// The α–β(–hop) communication and per-operation computation cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Message start-up latency in seconds (α).
    pub alpha: f64,
    /// Per-byte transfer cost in seconds (β = 1 / bandwidth).
    pub beta_per_byte: f64,
    /// Additional per-hop, per-message cost in seconds.
    pub per_hop: f64,
    /// Cost of one "unit" of local computation in seconds. A unit is what the
    /// caller says it is — the CHAOS runtime charges one unit per flop-like
    /// operation and a configurable number of units for table lookups.
    pub compute_unit: f64,
    /// Cost charged per word for purely local memory traffic (copying data
    /// into / out of communication buffers).
    pub memory_word: f64,
}

impl CostModel {
    /// Cost model loosely calibrated to the Intel iPSC/860.
    pub fn ipsc860() -> Self {
        CostModel {
            alpha: 70e-6,
            beta_per_byte: 0.36e-6,
            per_hop: 10e-6,
            compute_unit: 0.1e-6,
            memory_word: 0.025e-6,
        }
    }

    /// Cost model for a modern commodity cluster (lower latency, much higher
    /// bandwidth, much faster cores). Used by the ablation benches to show
    /// the crossover points move but the orderings do not.
    pub fn modern_cluster() -> Self {
        CostModel {
            alpha: 2e-6,
            beta_per_byte: 0.0001e-6,
            per_hop: 0.2e-6,
            compute_unit: 0.0005e-6,
            memory_word: 0.0002e-6,
        }
    }

    /// A unit-cost model useful in tests: α = 1, β = 1 per byte, 1 per hop,
    /// 1 per compute unit, 1 per word of memory traffic. Makes hand-computed
    /// expectations easy.
    pub fn unit() -> Self {
        CostModel {
            alpha: 1.0,
            beta_per_byte: 1.0,
            per_hop: 1.0,
            compute_unit: 1.0,
            memory_word: 1.0,
        }
    }

    /// Time to send one message of `bytes` bytes across `hops` hops.
    #[inline]
    pub fn message_cost(&self, bytes: usize, hops: usize) -> f64 {
        self.alpha + self.beta_per_byte * bytes as f64 + self.per_hop * hops as f64
    }
}

/// Complete description of the simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of virtual processors.
    pub nprocs: usize,
    /// Interconnect topology.
    pub topology: Topology,
    /// Cost model constants.
    pub cost: CostModel,
    /// Clock synchronization behaviour.
    pub sync: SyncModel,
    /// Number of bytes occupied by one array element / message word. The
    /// paper's arrays are REAL*8, so the default is 8.
    pub word_bytes: usize,
}

impl MachineConfig {
    /// An iPSC/860-like hypercube with `nprocs` processors.
    pub fn ipsc860(nprocs: usize) -> Self {
        MachineConfig {
            nprocs,
            topology: Topology::Hypercube,
            cost: CostModel::ipsc860(),
            sync: SyncModel::BarrierPerPhase,
            word_bytes: 8,
        }
    }

    /// A modern cluster configuration with `nprocs` processors.
    pub fn modern(nprocs: usize) -> Self {
        MachineConfig {
            nprocs,
            topology: Topology::FullyConnected,
            cost: CostModel::modern_cluster(),
            sync: SyncModel::BarrierPerPhase,
            word_bytes: 8,
        }
    }

    /// Unit-cost machine for tests.
    pub fn unit(nprocs: usize) -> Self {
        MachineConfig {
            nprocs,
            topology: Topology::FullyConnected,
            cost: CostModel::unit(),
            sync: SyncModel::BarrierPerPhase,
            word_bytes: 8,
        }
    }

    /// Builder-style: replace the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Builder-style: replace the sync model.
    pub fn with_sync(mut self, sync: SyncModel) -> Self {
        self.sync = sync;
        self
    }

    /// Builder-style: replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Validate the configuration, returning a description of the problem if
    /// it is unusable.
    pub fn validate(&self) -> Result<(), String> {
        if self.nprocs == 0 {
            return Err("machine must have at least one processor".to_string());
        }
        if self.word_bytes == 0 {
            return Err("word_bytes must be non-zero".to_string());
        }
        if self.topology == Topology::Hypercube && !self.nprocs.is_power_of_two() {
            return Err(format!(
                "hypercube topology requires a power-of-two processor count, got {}",
                self.nprocs
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipsc_config_is_valid() {
        for p in [1, 2, 4, 8, 16, 32, 64] {
            assert!(MachineConfig::ipsc860(p).validate().is_ok(), "p={p}");
        }
    }

    #[test]
    fn hypercube_rejects_non_power_of_two() {
        assert!(MachineConfig::ipsc860(6).validate().is_err());
        assert!(MachineConfig::ipsc860(6)
            .with_topology(Topology::FullyConnected)
            .validate()
            .is_ok());
    }

    #[test]
    fn zero_procs_invalid() {
        assert!(MachineConfig::unit(0).validate().is_err());
    }

    #[test]
    fn message_cost_monotone_in_size() {
        let c = CostModel::ipsc860();
        assert!(c.message_cost(8, 1) < c.message_cost(800, 1));
        assert!(c.message_cost(8, 1) < c.message_cost(8, 3));
    }

    #[test]
    fn unit_cost_model_is_sum() {
        let c = CostModel::unit();
        assert_eq!(c.message_cost(10, 2), 1.0 + 10.0 + 2.0);
    }
}
