//! # chaos-dmsim — a deterministic distributed-memory machine simulator
//!
//! The SC'93 CHAOS/PARTI experiments ran on an Intel iPSC/860 hypercube.
//! This crate provides the substitute substrate used by the reproduction: a
//! *virtual* distributed-memory machine with
//!
//! * `P` virtual processors, each with its own virtual clock,
//! * an explicit α–β (latency / bandwidth) communication cost model with an
//!   optional per-hop term for the hypercube topology,
//! * deterministic all-to-all personalized exchange of typed messages,
//! * the usual collectives (barrier, broadcast, reduce, all-gather,
//!   all-to-all) with `log P` tree costs, and
//! * per-phase statistics (message counts, volumes, modeled times) that the
//!   benchmark harness turns into the rows of the paper's tables.
//!
//! The simulator separates **what data moves** (done with ordinary `Vec`s in
//! one address space, so results are exact and deterministic) from **what it
//! costs** (charged to per-processor [`ProcClock`]s according to
//! [`MachineConfig`]). SPMD regions execute behind the [`Backend`]
//! abstraction: the [`Machine`] itself runs rank kernels sequentially in
//! rank order (the deterministic oracle), [`ThreadedBackend`] runs each
//! virtual processor on its own scoped OS thread, and [`PooledBackend`]
//! drives a pool of long-lived workers through broadcast phase descriptors
//! and an epoch barrier (the low-overhead engine). The parallel engines
//! charge through per-rank ledgers that are replayed in rank order — so the
//! *modeled* time never depends on real execution order and every
//! experiment is reproducible bit-for-bit on any engine (see [`backend`]
//! and [`pool`] for the contract, and `ARCHITECTURE.md` § "The Backend /
//! pool / charge-replay determinism contract" for the system-level
//! picture).
//!
//! ## Quick example
//!
//! ```
//! use chaos_dmsim::{Machine, MachineConfig, ExchangePlan};
//!
//! let mut machine = Machine::new(MachineConfig::ipsc860(4));
//! // every processor sends its rank to processor 0
//! let mut plan = ExchangePlan::new(4);
//! for p in 1..4 {
//!     plan.push(p, 0, vec![p as u64]);
//! }
//! let delivered = machine.exchange("gather-ranks", plan);
//! assert_eq!(delivered.received(0).len(), 3);
//! assert!(machine.elapsed().max_seconds() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod collectives;
pub mod config;
pub mod exchange;
pub mod fault;
pub mod machine;
pub mod metrics;
pub mod pool;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

// The trace exports speak `serde_json::Value` (the vendored shim);
// re-export the crate so downstream users can consume them without adding
// their own dependency on it.
pub use serde_json;

pub use backend::{run_phase_inline, Backend, Inbox, Outbox, PhaseEnd, RankCtx, ThreadedBackend};
pub use collectives::ReduceOp;
pub use config::{CostModel, MachineConfig, SyncModel, Topology};
pub use exchange::{Delivered, ExchangePlan, Message};
pub use fault::{
    Fault, FaultKind, FaultPlan, InjectedFault, PhaseCause, PhaseError, RankFailure, RecoveryPolicy,
};
pub use machine::{Machine, MachineSnapshot, PhaseCharge, ProcId};
pub use metrics::{
    AuditReport, AuditRow, Counter, EngineKind, Histogram, MetricsRegistry, MetricsSnapshot,
    SpanCell, SpanKind,
};
pub use pool::PooledBackend;
pub use stats::{CommStats, PhaseKind, PhaseRecord, StatsRegistry, StatsSnapshot};
pub use time::{ElapsedReport, ProcClock, SimTime};
pub use trace::{LaneSummary, TraceEvent, TraceEventKind, TraceSink, TraceSummary};
