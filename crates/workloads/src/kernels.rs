//! The per-iteration numerical kernels of the two workloads, factored out so
//! that the hand-coded executor, the compiler-generated executor and the
//! sequential reference implementation all run *exactly* the same arithmetic
//! (and can therefore be checked against each other bit-for-bit).
//!
//! Both kernels have the shape of the paper's loop `L2`:
//!
//! ```fortran
//! FORALL i = 1, N
//!   REDUCE (ADD, y(end_pt1(i)), f(x(end_pt1(i)), x(end_pt2(i))))
//!   REDUCE (ADD, y(end_pt2(i)), g(x(end_pt1(i)), x(end_pt2(i))))
//! END FORALL
//! ```

use serde::{Deserialize, Serialize};

/// Cost model of one edge/pair iteration in abstract machine "compute units"
/// (used when charging the executor's local arithmetic to the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeKernelCost {
    /// Units charged per edge / pair iteration.
    pub ops_per_iteration: f64,
}

impl Default for EdgeKernelCost {
    fn default() -> Self {
        // ~20 flops per edge flux evaluation, which keeps the executor
        // compute comparable to its communication on the iPSC/860-like cost
        // model, as in the paper's tables.
        EdgeKernelCost {
            ops_per_iteration: 20.0,
        }
    }
}

/// Euler-style edge flux: given the state values at the two endpoints of an
/// edge, return the flux contributions `(to endpoint 1, to endpoint 2)`.
///
/// The exact expression is a stand-in for the Roe flux of the paper's solver:
/// nonlinear, asymmetric and cheap, with contributions that sum to zero so
/// that a global conservation check is available to the tests.
#[inline]
pub fn edge_flux_kernel(x1: f64, x2: f64) -> (f64, f64) {
    let avg = 0.5 * (x1 + x2);
    let diff = x2 - x1;
    // The upwind-style term weighted by x1 makes the flux depend on edge
    // orientation (like a real Roe flux), while the pair still sums to zero.
    let flux = avg * diff + 0.25 * diff.abs() * x1;
    (flux, -flux)
}

/// Electrostatic pair force magnitude along each axis: given positions and
/// charges of two atoms, return the force contribution on atom 1 (atom 2
/// receives the negation).
#[inline]
pub fn pair_force_kernel(
    p1: (f64, f64, f64),
    p2: (f64, f64, f64),
    q1: f64,
    q2: f64,
) -> (f64, f64, f64) {
    let dx = p1.0 - p2.0;
    let dy = p1.1 - p2.1;
    let dz = p1.2 - p2.2;
    let r2 = (dx * dx + dy * dy + dz * dz).max(1e-12);
    let inv_r3 = 1.0 / (r2 * r2.sqrt());
    let s = q1 * q2 * inv_r3;
    (s * dx, s * dy, s * dz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_flux_is_antisymmetric_in_its_outputs() {
        let (f1, f2) = edge_flux_kernel(3.0, 5.0);
        assert_eq!(f1, -f2);
        assert_ne!(f1, 0.0);
    }

    #[test]
    fn edge_flux_of_equal_states_is_zero() {
        let (f1, f2) = edge_flux_kernel(2.5, 2.5);
        assert_eq!(f1, 0.0);
        assert_eq!(f2, 0.0);
    }

    #[test]
    fn edge_flux_is_direction_dependent() {
        // Swapping the endpoints does not simply negate the flux (the |diff|
        // term breaks symmetry), mirroring upwinded CFD fluxes.
        let (a, _) = edge_flux_kernel(1.0, 4.0);
        let (b, _) = edge_flux_kernel(4.0, 1.0);
        assert_ne!(a, -b);
    }

    #[test]
    fn pair_force_is_newtons_third_law_compatible() {
        let f12 = pair_force_kernel((0.0, 0.0, 0.0), (1.0, 2.0, 2.0), -0.8, 0.4);
        let f21 = pair_force_kernel((1.0, 2.0, 2.0), (0.0, 0.0, 0.0), 0.4, -0.8);
        assert!((f12.0 + f21.0).abs() < 1e-12);
        assert!((f12.1 + f21.1).abs() < 1e-12);
        assert!((f12.2 + f21.2).abs() < 1e-12);
    }

    #[test]
    fn opposite_charges_attract() {
        let f = pair_force_kernel((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), -1.0, 1.0);
        // Force on atom 1 points towards atom 2 (+x).
        assert!(f.0 > 0.0);
    }

    #[test]
    fn coincident_atoms_do_not_blow_up() {
        let f = pair_force_kernel((0.5, 0.5, 0.5), (0.5, 0.5, 0.5), 1.0, 1.0);
        assert!(f.0.is_finite() && f.1.is_finite() && f.2.is_finite());
    }

    #[test]
    fn default_cost_is_positive() {
        assert!(EdgeKernelCost::default().ops_per_iteration > 0.0);
    }
}
