//! Synthetic 3-D unstructured meshes standing in for the paper's Euler
//! solver meshes (Mavriplis, 10K and 53K mesh points).
//!
//! The generator builds a jittered 3-D lattice of points inside the unit
//! cube and connects each point to its lattice neighbours plus a subset of
//! face/space diagonals, giving an average degree of ≈ 7 — comparable to the
//! edge/vertex ratio of tetrahedral CFD meshes. Vertices are then renumbered
//! with a seeded random permutation so that a BLOCK distribution of the node
//! arrays cuts a large fraction of the edges, which is exactly the situation
//! the paper's irregular-distribution machinery addresses.

use crate::renumber::{invert_permutation, random_permutation};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic mesh generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Requested number of mesh points (the generator rounds to the nearest
    /// lattice that holds at least this many and then trims).
    pub nnodes: usize,
    /// Jitter applied to lattice positions, as a fraction of the spacing.
    pub jitter: f64,
    /// Probability of adding each diagonal edge (controls average degree).
    pub diagonal_fraction: f64,
    /// Shuffle the vertex numbering (true for all paper-like experiments).
    pub shuffle: bool,
    /// RNG seed.
    pub seed: u64,
}

impl MeshConfig {
    /// The 10K-node mesh of the paper's Tables 1 and 3–4.
    pub fn mesh_10k() -> Self {
        MeshConfig {
            nnodes: 10_000,
            ..Self::default()
        }
    }

    /// The 53K-node mesh of the paper's Tables 1–4.
    pub fn mesh_53k() -> Self {
        MeshConfig {
            nnodes: 53_000,
            ..Self::default()
        }
    }

    /// A small mesh for unit tests.
    pub fn tiny(nnodes: usize) -> Self {
        MeshConfig {
            nnodes,
            ..Self::default()
        }
    }
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            nnodes: 1000,
            jitter: 0.25,
            diagonal_fraction: 0.35,
            shuffle: true,
            seed: 0x53C93,
        }
    }
}

/// A synthetic unstructured mesh: node coordinates plus an edge list given as
/// two endpoint arrays (the paper's `end_pt1` / `end_pt2` indirection
/// arrays).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnstructuredMesh {
    /// Node x coordinates.
    pub xc: Vec<f64>,
    /// Node y coordinates.
    pub yc: Vec<f64>,
    /// Node z coordinates.
    pub zc: Vec<f64>,
    /// First endpoint of each edge.
    pub end_pt1: Vec<u32>,
    /// Second endpoint of each edge.
    pub end_pt2: Vec<u32>,
    /// The configuration the mesh was generated from.
    pub config: MeshConfig,
}

impl UnstructuredMesh {
    /// Generate a mesh from a configuration. Deterministic per configuration.
    pub fn generate(config: MeshConfig) -> Self {
        assert!(config.nnodes >= 8, "mesh needs at least 8 nodes");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        // Lattice dimensions: as cubic as possible while holding >= nnodes.
        let side = (config.nnodes as f64).cbrt().ceil() as usize;
        let (nx, ny) = (side, side);
        let nz = config.nnodes.div_ceil(nx * ny);
        let lattice_nodes = nx * ny * nz;

        let spacing = 1.0 / side as f64;
        let mut xc = Vec::with_capacity(config.nnodes);
        let mut yc = Vec::with_capacity(config.nnodes);
        let mut zc = Vec::with_capacity(config.nnodes);
        // Natural (lattice-ordered) ids of the nodes we keep.
        let keep = config.nnodes.min(lattice_nodes);
        for idx in 0..keep {
            let i = idx % nx;
            let j = (idx / nx) % ny;
            let k = idx / (nx * ny);
            let jit = |rng: &mut ChaCha8Rng| (rng.gen::<f64>() - 0.5) * config.jitter * spacing;
            xc.push(i as f64 * spacing + jit(&mut rng));
            yc.push(j as f64 * spacing + jit(&mut rng));
            zc.push(k as f64 * spacing + jit(&mut rng));
        }

        // Edges: 6-neighbour lattice connectivity plus random diagonals.
        let node_at = |i: usize, j: usize, k: usize| -> Option<u32> {
            let idx = k * nx * ny + j * nx + i;
            (i < nx && j < ny && k < nz && idx < keep).then_some(idx as u32)
        };
        let mut end_pt1 = Vec::new();
        let mut end_pt2 = Vec::new();
        for idx in 0..keep {
            let i = idx % nx;
            let j = (idx / nx) % ny;
            let k = idx / (nx * ny);
            let here = idx as u32;
            // Axis neighbours (only "forward" to avoid duplicates).
            for (di, dj, dk) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
                if let Some(n) = node_at(i + di, j + dj, k + dk) {
                    end_pt1.push(here);
                    end_pt2.push(n);
                }
            }
            // Diagonals, sampled.
            for (di, dj, dk) in [(1, 1, 0), (1, 0, 1), (0, 1, 1), (1, 1, 1)] {
                if rng.gen::<f64>() < config.diagonal_fraction {
                    if let Some(n) = node_at(i + di, j + dj, k + dk) {
                        end_pt1.push(here);
                        end_pt2.push(n);
                    }
                }
            }
        }

        let mut mesh = UnstructuredMesh {
            xc,
            yc,
            zc,
            end_pt1,
            end_pt2,
            config,
        };
        if config.shuffle {
            mesh.apply_permutation(&random_permutation(keep, config.seed ^ 0x5EED));
        }
        mesh
    }

    /// Number of mesh points.
    pub fn nnodes(&self) -> usize {
        self.xc.len()
    }

    /// Number of edges.
    pub fn nedges(&self) -> usize {
        self.end_pt1.len()
    }

    /// Average vertex degree.
    pub fn average_degree(&self) -> f64 {
        if self.nnodes() == 0 {
            0.0
        } else {
            2.0 * self.nedges() as f64 / self.nnodes() as f64
        }
    }

    /// Renumber the nodes: node `v` becomes `perm[v]`. Coordinates move with
    /// their node; endpoint arrays are rewritten in place (edge order is
    /// unchanged).
    pub fn apply_permutation(&mut self, perm: &[u32]) {
        assert_eq!(perm.len(), self.nnodes(), "permutation length mismatch");
        let inv = invert_permutation(perm);
        let n = self.nnodes();
        let mut xc = vec![0.0; n];
        let mut yc = vec![0.0; n];
        let mut zc = vec![0.0; n];
        for (old, &new) in perm.iter().enumerate() {
            let new = new as usize;
            xc[new] = self.xc[old];
            yc[new] = self.yc[old];
            zc[new] = self.zc[old];
        }
        self.xc = xc;
        self.yc = yc;
        self.zc = zc;
        for e in self.end_pt1.iter_mut().chain(self.end_pt2.iter_mut()) {
            *e = perm[*e as usize];
        }
        let _ = inv; // inverse not needed beyond validation
    }

    /// The per-iteration reference lists of the edge loop (`L2` in the
    /// paper): iteration `i` references nodes `end_pt1[i]` and `end_pt2[i]`.
    pub fn edge_iteration_refs(&self) -> Vec<Vec<u32>> {
        self.end_pt1
            .iter()
            .zip(&self.end_pt2)
            .map(|(&a, &b)| vec![a, b])
            .collect()
    }

    /// Undirected edge list as `(end_pt1[i], end_pt2[i])` pairs.
    pub fn edge_pairs(&self) -> Vec<(u32, u32)> {
        self.end_pt1
            .iter()
            .zip(&self.end_pt2)
            .map(|(&a, &b)| (a, b))
            .collect()
    }

    /// Vertex degrees (used for LOAD-weighted partitioning: the paper notes
    /// the vertex weight of loop L2 "would be proportional to the degree of
    /// the vertex").
    pub fn degrees(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nnodes()];
        for (&a, &b) in self.end_pt1.iter().zip(&self.end_pt2) {
            d[a as usize] += 1.0;
            d[b as usize] += 1.0;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let m = UnstructuredMesh::generate(MeshConfig::tiny(500));
        assert_eq!(m.nnodes(), 500);
        assert!(m.nedges() > 500, "a 3-D mesh has more edges than nodes");
        assert!(m.average_degree() > 3.0 && m.average_degree() < 14.0);
    }

    #[test]
    fn endpoints_are_valid_and_not_self_loops() {
        let m = UnstructuredMesh::generate(MeshConfig::tiny(300));
        for (&a, &b) in m.end_pt1.iter().zip(&m.end_pt2) {
            assert!((a as usize) < m.nnodes());
            assert!((b as usize) < m.nnodes());
            assert_ne!(a, b);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = UnstructuredMesh::generate(MeshConfig::tiny(200));
        let b = UnstructuredMesh::generate(MeshConfig::tiny(200));
        assert_eq!(a, b);
        let c = UnstructuredMesh::generate(MeshConfig {
            seed: 1,
            ..MeshConfig::tiny(200)
        });
        assert_ne!(a, c);
    }

    #[test]
    fn coordinates_stay_in_unit_cube_neighbourhood() {
        let m = UnstructuredMesh::generate(MeshConfig::tiny(400));
        for i in 0..m.nnodes() {
            assert!(m.xc[i] > -0.5 && m.xc[i] < 1.5);
            assert!(m.yc[i] > -0.5 && m.yc[i] < 1.5);
            assert!(m.zc[i] > -0.5 && m.zc[i] < 1.5);
        }
    }

    #[test]
    fn shuffled_numbering_destroys_block_locality() {
        // With shuffle=false, consecutive node numbers are spatial
        // neighbours: a BLOCK split of nodes cuts relatively few edges. With
        // shuffle=true, most edges should connect nodes whose numbers land in
        // different halves.
        let mut cfg = MeshConfig::tiny(1000);
        cfg.shuffle = false;
        let natural = UnstructuredMesh::generate(cfg);
        cfg.shuffle = true;
        let shuffled = UnstructuredMesh::generate(cfg);
        let cut = |m: &UnstructuredMesh| {
            let half = (m.nnodes() / 2) as u32;
            m.edge_pairs()
                .iter()
                .filter(|&&(a, b)| (a < half) != (b < half))
                .count()
        };
        assert!(
            cut(&shuffled) > 3 * cut(&natural),
            "shuffled cut {} vs natural cut {}",
            cut(&shuffled),
            cut(&natural)
        );
    }

    #[test]
    fn edge_iteration_refs_match_edges() {
        let m = UnstructuredMesh::generate(MeshConfig::tiny(100));
        let refs = m.edge_iteration_refs();
        assert_eq!(refs.len(), m.nedges());
        assert_eq!(refs[0], vec![m.end_pt1[0], m.end_pt2[0]]);
    }

    #[test]
    fn degrees_sum_to_twice_edges() {
        let m = UnstructuredMesh::generate(MeshConfig::tiny(150));
        let total: f64 = m.degrees().iter().sum();
        assert_eq!(total as usize, 2 * m.nedges());
    }

    #[test]
    fn permutation_preserves_geometry_per_node() {
        let mut cfg = MeshConfig::tiny(64);
        cfg.shuffle = false;
        let base = UnstructuredMesh::generate(cfg);
        let mut permuted = base.clone();
        let perm = random_permutation(64, 5);
        permuted.apply_permutation(&perm);
        for (old, &new) in perm.iter().enumerate() {
            let new = new as usize;
            assert_eq!(base.xc[old], permuted.xc[new]);
            assert_eq!(base.zc[old], permuted.zc[new]);
        }
        assert_eq!(base.nedges(), permuted.nedges());
    }

    #[test]
    #[should_panic(expected = "at least 8 nodes")]
    fn tiny_meshes_rejected() {
        let _ = UnstructuredMesh::generate(MeshConfig::tiny(2));
    }
}
