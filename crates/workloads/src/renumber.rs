//! Vertex renumbering utilities.
//!
//! Real unstructured meshes come out of grid generators with node numberings
//! that bear no relation to spatial locality; the workload generators
//! reproduce that by shuffling their naturally ordered vertices through a
//! seeded random permutation.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The identity permutation of length `n`.
pub fn identity_permutation(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

/// A seeded uniform random permutation of length `n` (deterministic per
/// seed).
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut perm = identity_permutation(n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// Invert a permutation: `inv[perm[i]] = i`.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..perm.len()`.
pub fn invert_permutation(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![u32::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        assert!(
            (p as usize) < perm.len() && inv[p as usize] == u32::MAX,
            "input is not a permutation"
        );
        inv[p as usize] = i as u32;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        assert_eq!(identity_permutation(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let p = random_permutation(100, 7);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity_permutation(100));
        assert_ne!(p, identity_permutation(100));
    }

    #[test]
    fn random_permutation_is_seed_deterministic() {
        assert_eq!(random_permutation(50, 3), random_permutation(50, 3));
        assert_ne!(random_permutation(50, 3), random_permutation(50, 4));
    }

    #[test]
    fn inversion_roundtrips() {
        let p = random_permutation(64, 11);
        let inv = invert_permutation(&p);
        for i in 0..64 {
            assert_eq!(inv[p[i] as usize], i as u32);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn inversion_rejects_duplicates() {
        let _ = invert_permutation(&[0, 0, 1]);
    }
}
