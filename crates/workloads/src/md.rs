//! Synthetic molecular-dynamics workload standing in for the paper's CHARMM
//! 648-atom water simulation.
//!
//! 216 water molecules (3 atoms each = 648 atoms) are placed on a jittered
//! lattice inside a periodic box; the non-bonded interaction list contains
//! every atom pair within a cutoff radius. The electrostatic force loop then
//! has exactly the `L2` shape: each pair iteration reads the positions /
//! charges of its two atoms and accumulates equal-and-opposite force
//! contributions — a left-hand-side ADD reduction through an indirection
//! array.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the water-box generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MdConfig {
    /// Number of water molecules (atoms = 3 × molecules).
    pub nmolecules: usize,
    /// Cutoff radius for the non-bonded pair list, in box-relative units.
    pub cutoff: f64,
    /// Positional jitter as a fraction of the molecular spacing.
    pub jitter: f64,
    /// Shuffle atom numbering (the paper's codes number atoms by molecule,
    /// which is already poorly correlated with space after equilibration).
    pub shuffle: bool,
    /// RNG seed.
    pub seed: u64,
}

impl MdConfig {
    /// The 648-atom (216-water) system of the paper's tables.
    pub fn water_648() -> Self {
        MdConfig {
            nmolecules: 216,
            ..Self::default()
        }
    }

    /// A small system for unit tests.
    pub fn tiny(nmolecules: usize) -> Self {
        MdConfig {
            nmolecules,
            ..Self::default()
        }
    }
}

impl Default for MdConfig {
    fn default() -> Self {
        MdConfig {
            nmolecules: 216,
            cutoff: 0.28,
            jitter: 0.3,
            shuffle: true,
            seed: 0x0A70,
        }
    }
}

/// A water box: atom coordinates, charges and the non-bonded pair list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaterBox {
    /// Atom x coordinates.
    pub xc: Vec<f64>,
    /// Atom y coordinates.
    pub yc: Vec<f64>,
    /// Atom z coordinates.
    pub zc: Vec<f64>,
    /// Partial charges (O ≈ −0.834, H ≈ +0.417 — TIP3P-like).
    pub charge: Vec<f64>,
    /// First atom of each non-bonded pair.
    pub pair1: Vec<u32>,
    /// Second atom of each non-bonded pair.
    pub pair2: Vec<u32>,
    /// The configuration used.
    pub config: MdConfig,
}

impl WaterBox {
    /// Generate a water box. Deterministic per configuration.
    pub fn generate(config: MdConfig) -> Self {
        assert!(config.nmolecules >= 2, "need at least two molecules");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let natoms = 3 * config.nmolecules;

        // Molecules on a cubic lattice filling the unit box.
        let side = (config.nmolecules as f64).cbrt().ceil() as usize;
        let spacing = 1.0 / side as f64;
        let mut xc = Vec::with_capacity(natoms);
        let mut yc = Vec::with_capacity(natoms);
        let mut zc = Vec::with_capacity(natoms);
        let mut charge = Vec::with_capacity(natoms);
        for m in 0..config.nmolecules {
            let i = m % side;
            let j = (m / side) % side;
            let k = m / (side * side);
            let jit = |rng: &mut ChaCha8Rng| (rng.gen::<f64>() - 0.5) * config.jitter * spacing;
            let ox = i as f64 * spacing + jit(&mut rng);
            let oy = j as f64 * spacing + jit(&mut rng);
            let oz = k as f64 * spacing + jit(&mut rng);
            // Oxygen then two hydrogens offset slightly.
            let bond = 0.2 * spacing;
            xc.extend_from_slice(&[ox, ox + bond, ox - bond * 0.5]);
            yc.extend_from_slice(&[oy, oy + bond * 0.3, oy + bond]);
            zc.extend_from_slice(&[oz, oz - bond * 0.2, oz + bond * 0.4]);
            charge.extend_from_slice(&[-0.834, 0.417, 0.417]);
        }

        let mut atom_ids: Vec<u32> = (0..natoms as u32).collect();
        if config.shuffle {
            use rand::seq::SliceRandom;
            atom_ids.shuffle(&mut rng);
            // atom_ids[old] = new label; reorder storage accordingly.
            let mut nxc = vec![0.0; natoms];
            let mut nyc = vec![0.0; natoms];
            let mut nzc = vec![0.0; natoms];
            let mut nch = vec![0.0; natoms];
            for old in 0..natoms {
                let new = atom_ids[old] as usize;
                nxc[new] = xc[old];
                nyc[new] = yc[old];
                nzc[new] = zc[old];
                nch[new] = charge[old];
            }
            xc = nxc;
            yc = nyc;
            zc = nzc;
            charge = nch;
        }

        // Pair list: all pairs within the cutoff (minimum-image periodic
        // distance), excluding intra-molecular pairs when unshuffled is not
        // tracked — a cell-list keeps this O(n).
        let cells = ((1.0 / config.cutoff).floor() as usize).max(1);
        let cell_of =
            |x: f64| -> usize { (((x.rem_euclid(1.0)) * cells as f64) as usize).min(cells - 1) };
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells * cells];
        for a in 0..natoms {
            let c = cell_of(xc[a]) + cells * (cell_of(yc[a]) + cells * cell_of(zc[a]));
            buckets[c].push(a as u32);
        }
        let dist2 = |a: usize, b: usize| -> f64 {
            let mut d2 = 0.0;
            for (pa, pb) in [(&xc, &xc), (&yc, &yc), (&zc, &zc)] {
                let mut d = (pa[a] - pb[b]).abs();
                if d > 0.5 {
                    d = 1.0 - d; // minimum image in the unit box
                }
                d2 += d * d;
            }
            d2
        };
        let cutoff2 = config.cutoff * config.cutoff;
        let mut pair1 = Vec::new();
        let mut pair2 = Vec::new();
        let cells_i = cells as isize;
        for cx in 0..cells_i {
            for cy in 0..cells_i {
                for cz in 0..cells_i {
                    let this = (cx + cells_i * (cy + cells_i * cz)) as usize;
                    for dx in -1..=1isize {
                        for dy in -1..=1isize {
                            for dz in -1..=1isize {
                                let nx = (cx + dx).rem_euclid(cells_i);
                                let ny = (cy + dy).rem_euclid(cells_i);
                                let nz = (cz + dz).rem_euclid(cells_i);
                                let other = (nx + cells_i * (ny + cells_i * nz)) as usize;
                                for &a in &buckets[this] {
                                    for &b in &buckets[other] {
                                        if a < b && dist2(a as usize, b as usize) <= cutoff2 {
                                            pair1.push(a);
                                            pair2.push(b);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Neighbouring cells are visited from both sides, so deduplicate.
        let mut pairs: Vec<(u32, u32)> = pair1.into_iter().zip(pair2).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let (pair1, pair2): (Vec<u32>, Vec<u32>) = pairs.into_iter().unzip();

        WaterBox {
            xc,
            yc,
            zc,
            charge,
            pair1,
            pair2,
            config,
        }
    }

    /// Number of atoms.
    pub fn natoms(&self) -> usize {
        self.xc.len()
    }

    /// Number of non-bonded pairs.
    pub fn npairs(&self) -> usize {
        self.pair1.len()
    }

    /// Per-iteration reference lists of the force loop: pair `i` references
    /// atoms `pair1[i]` and `pair2[i]`.
    pub fn pair_iteration_refs(&self) -> Vec<Vec<u32>> {
        self.pair1
            .iter()
            .zip(&self.pair2)
            .map(|(&a, &b)| vec![a, b])
            .collect()
    }

    /// Pair list as tuples.
    pub fn pair_list(&self) -> Vec<(u32, u32)> {
        self.pair1
            .iter()
            .zip(&self.pair2)
            .map(|(&a, &b)| (a, b))
            .collect()
    }

    /// Per-atom interaction counts (LOAD weights for the partitioner).
    pub fn interaction_counts(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.natoms()];
        for (&a, &b) in self.pair1.iter().zip(&self.pair2) {
            c[a as usize] += 1.0;
            c[b as usize] += 1.0;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_648_has_648_atoms() {
        let w = WaterBox::generate(MdConfig::water_648());
        assert_eq!(w.natoms(), 648);
        assert!(w.npairs() > w.natoms(), "dense pair list expected");
    }

    #[test]
    fn pairs_are_valid_sorted_and_unique() {
        let w = WaterBox::generate(MdConfig::tiny(27));
        let mut seen = std::collections::HashSet::new();
        for (&a, &b) in w.pair1.iter().zip(&w.pair2) {
            assert!(a < b, "pairs stored with a < b");
            assert!((b as usize) < w.natoms());
            assert!(seen.insert((a, b)), "duplicate pair ({a},{b})");
        }
    }

    #[test]
    fn pairs_respect_cutoff() {
        let w = WaterBox::generate(MdConfig::tiny(27));
        let cutoff2 = w.config.cutoff * w.config.cutoff;
        for (&a, &b) in w.pair1.iter().zip(&w.pair2) {
            let (a, b) = (a as usize, b as usize);
            let mut d2 = 0.0;
            for (pa, pb) in [(&w.xc, &w.xc), (&w.yc, &w.yc), (&w.zc, &w.zc)] {
                let mut d = (pa[a] - pb[b]).abs();
                if d > 0.5 {
                    d = 1.0 - d;
                }
                d2 += d * d;
            }
            assert!(d2 <= cutoff2 * 1.0001, "pair ({a},{b}) outside cutoff");
        }
    }

    #[test]
    fn charges_are_neutral_overall() {
        let w = WaterBox::generate(MdConfig::tiny(64));
        let total: f64 = w.charge.iter().sum();
        assert!(total.abs() < 1e-9, "water box should be charge-neutral");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            WaterBox::generate(MdConfig::tiny(27)),
            WaterBox::generate(MdConfig::tiny(27))
        );
    }

    #[test]
    fn iteration_refs_match_pairs() {
        let w = WaterBox::generate(MdConfig::tiny(27));
        let refs = w.pair_iteration_refs();
        assert_eq!(refs.len(), w.npairs());
        assert_eq!(refs[3], vec![w.pair1[3], w.pair2[3]]);
    }

    #[test]
    fn interaction_counts_sum_to_twice_pairs() {
        let w = WaterBox::generate(MdConfig::tiny(27));
        let total: f64 = w.interaction_counts().iter().sum();
        assert_eq!(total as usize, 2 * w.npairs());
    }

    #[test]
    #[should_panic(expected = "at least two molecules")]
    fn single_molecule_rejected() {
        let _ = WaterBox::generate(MdConfig::tiny(1));
    }
}
