//! # chaos-workloads — synthetic irregular workloads
//!
//! The paper evaluates its runtime techniques on two application templates:
//!
//! * a loop over the edges of a **3-D unstructured Euler solver** mesh
//!   (Mavriplis), at 10K and 53K mesh points, and
//! * the **electrostatic force loop of a molecular-dynamics code** (CHARMM)
//!   for a 648-atom water simulation.
//!
//! Neither input deck is publicly available, so this crate provides
//! generators for synthetic equivalents that preserve the properties the
//! experiments depend on:
//!
//! * irregular connectivity with a realistic degree distribution,
//! * spatial structure that geometric (RCB) and spectral (RSB) partitioners
//!   can exploit,
//! * node numberings that are *uncorrelated* with connectivity (the paper's
//!   motivation for irregular distributions: "the way in which the nodes of
//!   an irregular computational mesh are numbered frequently does not have a
//!   useful correspondence to the connectivity pattern"), and
//! * edge/pair-based reduction loops with exactly the shape of the paper's
//!   loop `L2` (Figure 1).
//!
//! Both workloads expose their data in the form the CHAOS runtime consumes:
//! coordinate arrays, endpoint (indirection) arrays and per-iteration
//! reference lists. `ARCHITECTURE.md` § "Crate map" places this crate in
//! the system spine.

#![warn(missing_docs)]

pub mod kernels;
pub mod md;
pub mod mesh;
pub mod renumber;

pub use kernels::{edge_flux_kernel, pair_force_kernel, EdgeKernelCost};
pub use md::{MdConfig, WaterBox};
pub use mesh::{MeshConfig, UnstructuredMesh};
pub use renumber::{identity_permutation, invert_permutation, random_permutation};
