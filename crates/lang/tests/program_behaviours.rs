//! Integration tests for the mini-language executor covering the statement
//! forms and distribution kinds the unit tests do not reach: MAX / MIN
//! reductions, assignments through indirection (loop L1 of the paper's
//! Figure 1), CYCLIC distributions, map-array (`DISTRIBUTE irreg(map)`,
//! Figure 3) distributions, and multiple loops with independent reuse state.

use chaos_dmsim::MachineConfig;
use chaos_lang::{lower_program, parse_program, Executor, ProgramInputs};

fn run(src: &str, inputs: ProgramInputs, nprocs: usize) -> Executor {
    let program = lower_program(parse_program(src).expect("parse")).expect("lower");
    let mut exec = Executor::new(MachineConfig::ipsc860(nprocs), inputs);
    exec.run(&program).expect("run");
    exec
}

#[test]
fn figure1_loop_l1_assignment_through_indirection() {
    // y(ia(i)) = x(ib(i)) + x(ic(i)) — the paper's single-statement loop L1.
    let src = r#"
        REAL*8 x(n), y(n)
        INTEGER ia(m), ib(m), ic(m)
        DECOMPOSITION reg(n), reg2(m)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN ia, ib, ic WITH reg2
        CALL READ_DATA(x, y, ia, ib, ic)
        FORALL i = 1, m
          y(ia(i)) = x(ib(i)) + x(ic(i))
        END FORALL
    "#;
    let n = 24;
    let m = 12;
    // Distinct targets so the assignment has no write conflicts.
    let ia: Vec<u32> = (1..=m as u32).map(|i| i * 2).collect();
    let ib: Vec<u32> = (1..=m as u32).collect();
    let ic: Vec<u32> = (1..=m as u32).map(|i| ((i + 5) % n as u32) + 1).collect();
    let x: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
    let inputs = ProgramInputs::new()
        .scalar("n", n)
        .scalar("m", m)
        .real("x", x.clone())
        .real("y", vec![-1.0; n])
        .int("ia", ia.clone())
        .int("ib", ib.clone())
        .int("ic", ic.clone());
    let exec = run(src, inputs, 4);
    let y = exec.real_global("y").unwrap();
    let mut expected = vec![-1.0; n];
    for i in 0..m {
        expected[ia[i] as usize - 1] = x[ib[i] as usize - 1] + x[ic[i] as usize - 1];
    }
    assert_eq!(y, expected);
}

#[test]
fn max_and_min_reductions() {
    let src = r#"
        REAL*8 x(n), hi(n), lo(n)
        INTEGER e1(m), e2(m)
        DECOMPOSITION reg(n), reg2(m)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, hi, lo WITH reg
        ALIGN e1, e2 WITH reg2
        CALL READ_DATA(x, hi, lo, e1, e2)
        FORALL i = 1, m
          REDUCE(MAX, hi(e1(i)), x(e2(i)))
          REDUCE(MIN, lo(e1(i)), x(e2(i)))
        END FORALL
    "#;
    let n = 16;
    // A small irregular edge set (1-based), deliberately hitting remote nodes.
    let e1: Vec<u32> = vec![1, 1, 5, 9, 9, 13, 2, 2];
    let e2: Vec<u32> = vec![16, 8, 12, 3, 4, 1, 15, 14];
    let m = e1.len();
    let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64).collect();
    let inputs = ProgramInputs::new()
        .scalar("n", n)
        .scalar("m", m)
        .real("x", x.clone())
        .real("hi", vec![f64::NEG_INFINITY; n])
        .real("lo", vec![f64::INFINITY; n])
        .int("e1", e1.clone())
        .int("e2", e2.clone());
    let exec = run(src, inputs, 4);
    let hi = exec.real_global("hi").unwrap();
    let lo = exec.real_global("lo").unwrap();

    let mut expected_hi = vec![f64::NEG_INFINITY; n];
    let mut expected_lo = vec![f64::INFINITY; n];
    for i in 0..m {
        let t = e1[i] as usize - 1;
        let v = x[e2[i] as usize - 1];
        expected_hi[t] = expected_hi[t].max(v);
        expected_lo[t] = expected_lo[t].min(v);
    }
    assert_eq!(hi, expected_hi);
    assert_eq!(lo, expected_lo);
}

#[test]
fn cyclic_distribution_executes_correctly() {
    let src = r#"
        REAL*8 x(n), y(n)
        DECOMPOSITION reg(n)
        DISTRIBUTE reg(CYCLIC)
        ALIGN x, y WITH reg
        CALL READ_DATA(x, y)
        FORALL i = 1, n
          y(i) = x(i) * 3.0 - 1.0
        END FORALL
    "#;
    let n = 23;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let inputs = ProgramInputs::new()
        .scalar("n", n)
        .real("x", x.clone())
        .real("y", vec![0.0; n]);
    let exec = run(src, inputs, 4);
    assert_eq!(exec.decomposition("reg").unwrap().kind_name(), "CYCLIC");
    let y = exec.real_global("y").unwrap();
    let expected: Vec<f64> = x.iter().map(|v| v * 3.0 - 1.0).collect();
    assert_eq!(y, expected);
}

#[test]
fn figure3_map_array_distribution() {
    // Figure 3 of the paper: an irregular distribution specified directly by
    // a map array ("when map(i) is set equal to p, element i ... is assigned
    // to processor p").
    let src = r#"
        REAL*8 x(n), y(n)
        INTEGER map(n), e1(m), e2(m)
        DECOMPOSITION reg(n), regmap(n), reg2(m)
        DISTRIBUTE regmap(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN map WITH regmap
        ALIGN e1, e2 WITH reg2
        CALL READ_DATA(map)
        DISTRIBUTE reg(map)
        ALIGN x, y WITH reg
        CALL READ_DATA(x, y, e1, e2)
        FORALL i = 1, m
          REDUCE(ADD, y(e1(i)), x(e2(i)))
        END FORALL
    "#;
    let n = 20;
    let map: Vec<u32> = (0..n).map(|i| ((i * 3) % 4) as u32).collect(); // 0-based owners
    let e1: Vec<u32> = (1..=10).collect();
    let e2: Vec<u32> = (11..=20).collect();
    let m = e1.len();
    let x: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
    let inputs = ProgramInputs::new()
        .scalar("n", n)
        .scalar("m", m)
        .real("x", x.clone())
        .real("y", vec![0.0; n])
        .int("map", map)
        .int("e1", e1.clone())
        .int("e2", e2.clone());
    let exec = run(src, inputs, 4);
    assert_eq!(exec.decomposition("reg").unwrap().kind_name(), "IRREGULAR");
    let y = exec.real_global("y").unwrap();
    let mut expected = vec![0.0; n];
    for i in 0..m {
        expected[e1[i] as usize - 1] += x[e2[i] as usize - 1];
    }
    assert_eq!(y, expected);
}

#[test]
fn multiple_loops_have_independent_reuse_state() {
    let src = r#"
        REAL*8 x(n), y(n), z(n)
        INTEGER e1(m), e2(m)
        DECOMPOSITION reg(n), reg2(m)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y, z WITH reg
        ALIGN e1, e2 WITH reg2
        CALL READ_DATA(x, y, z, e1, e2)
        FORALL i = 1, m
          REDUCE(ADD, y(e1(i)), x(e2(i)))
        END FORALL
        FORALL i = 1, m
          REDUCE(ADD, z(e2(i)), x(e1(i)))
        END FORALL
    "#;
    let n = 30;
    let e1: Vec<u32> = (1..=15).collect();
    let e2: Vec<u32> = (16..=30).collect();
    let m = e1.len();
    let inputs = ProgramInputs::new()
        .scalar("n", n)
        .scalar("m", m)
        .real("x", (0..n).map(|i| i as f64).collect())
        .real("y", vec![0.0; n])
        .real("z", vec![0.0; n])
        .int("e1", e1)
        .int("e2", e2);
    let program = lower_program(parse_program(src).unwrap()).unwrap();
    let mut exec = Executor::new(MachineConfig::ipsc860(4), inputs);
    exec.run(&program).unwrap();
    // Both loops ran their own inspector once.
    assert_eq!(exec.report().inspector_runs, 2);
    assert_eq!(exec.report().loop_sweeps, 2);
    // Re-running each loop reuses its own saved schedules.
    exec.execute_loop(&program, "L1").unwrap();
    exec.execute_loop(&program, "L2").unwrap();
    assert_eq!(exec.report().inspector_runs, 2);
    assert_eq!(exec.report().reuse_hits, 2);
}

/// A FORALL touching two decompositions that share one distribution: the
/// inspector merges their communication schedules (PARTI schedule merging)
/// and issues a *single* request exchange instead of one per schedule, with
/// strictly fewer messages when the ghost sets overlap — and byte-identical
/// results either way.
#[test]
fn same_distribution_groups_merge_into_one_schedule_exchange() {
    // x lives on rega and the written y on regb — both BLOCK(n), i.e. the
    // same distribution, so the loop has two decomposition groups whose
    // schedules merge. Every iteration references one element from each
    // half of x, so wherever the iteration is placed it needs an
    // off-processor x ghost whose (owner, offset) coincides with a y ghost
    // of the same requester — the merged request exchange deduplicates the
    // shared (owner → requester) messages.
    let src = r#"
        REAL*8 x(n), y(n)
        INTEGER ia(m), ib(m)
        DECOMPOSITION rega(n), regb(n), regc(m)
        DISTRIBUTE rega(BLOCK)
        DISTRIBUTE regb(BLOCK)
        DISTRIBUTE regc(BLOCK)
        ALIGN x WITH rega
        ALIGN y WITH regb
        ALIGN ia, ib WITH regc
        CALL READ_DATA(x, y, ia, ib)
        FORALL i = 1, m
          y(i) = x(ia(i)) + x(ib(i))
        END FORALL
    "#;
    // m != n so the indirection arrays' decomposition has a distinct DAD
    // (with equal sizes the conservative DAD tracking would invalidate the
    // schedule on every write of y).
    let n = 8usize;
    let m = 6usize;
    // Each iteration pairs one upper-half and one lower-half element.
    let ia: Vec<u32> = (0..m as u32).map(|i| i % 4 + 5).collect(); // globals 4..7
    let ib: Vec<u32> = (0..m as u32).map(|i| i % 4 + 1).collect(); // globals 0..3
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 2.0).collect();
    let inputs = ProgramInputs::new()
        .scalar("n", n)
        .scalar("m", m)
        .real("x", x.clone())
        .real("y", vec![0.0; n])
        .int("ia", ia.clone())
        .int("ib", ib.clone());
    let program = lower_program(parse_program(src).unwrap()).unwrap();

    // Incremental schedules are pinned off: this test exercises the classic
    // union-merging path (`schedule_merges` only counts there; the
    // incremental path folds request exchanges without building unions).
    let mut merged =
        Executor::new(MachineConfig::ipsc860(2), inputs.clone()).with_incremental_schedules(false);
    merged.run(&program).unwrap();
    let mut unmerged = Executor::new(MachineConfig::ipsc860(2), inputs.clone())
        .with_schedule_merging(false)
        .with_incremental_schedules(false);
    unmerged.run(&program).unwrap();

    // One merged build exchange vs one per decomposition group.
    let merged_builds = merged
        .machine()
        .stats()
        .records_labelled("L1:schedule-build")
        .count();
    let unmerged_builds = unmerged
        .machine()
        .stats()
        .records_labelled("L1:schedule-build")
        .count();
    assert_eq!(merged.report().schedule_merges, 1);
    assert_eq!(unmerged.report().schedule_merges, 0);
    assert_eq!(merged_builds, 1, "one merged request exchange");
    assert_eq!(unmerged_builds, 2, "one request exchange per schedule");

    // Message counts: the shared (owner → requester) pairs deduplicate, so
    // the merged exchange sends strictly fewer request messages.
    let merged_msgs = merged
        .machine()
        .stats()
        .messages_labelled("L1:schedule-build");
    let unmerged_msgs = unmerged
        .machine()
        .stats()
        .messages_labelled("L1:schedule-build");
    assert!(merged_msgs > 0, "the loop does communicate");
    assert!(
        merged_msgs < unmerged_msgs,
        "merged request exchange must send fewer messages ({merged_msgs} vs {unmerged_msgs})"
    );

    // Merging must not change any observable value, and reuse still works.
    let yr = merged.real_global("y").unwrap();
    let yn = unmerged.real_global("y").unwrap();
    for (a, b) in yr.iter().zip(&yn) {
        assert_eq!(a.to_bits(), b.to_bits(), "merge changed the results");
    }
    // Sequential reference (iterations cover y[0..m]; the tail stays 0).
    for (i, v) in yr.iter().enumerate() {
        let expect = if i < m {
            x[ia[i] as usize - 1] + x[ib[i] as usize - 1]
        } else {
            0.0
        };
        assert!((v - expect).abs() < 1e-12, "y[{i}]: {v} vs {expect}");
    }
    merged.execute_loop(&program, "L1").unwrap();
    assert_eq!(merged.report().reuse_hits, 1);
}

/// Two FORALLs read `x` over the same node distribution with overlapping
/// ghost sets (a chain-edge loop, then a wider face loop). With incremental
/// schedules (the default), the second loop's inspector requests only the
/// ghosts the first loop didn't, and its steady-state sweeps gather only
/// that difference — every avoided message and byte is booked in the
/// machine's `saved` ledger, which must account *exactly* for the gap to
/// the escape-hatch run.
#[test]
fn incremental_schedules_fetch_only_the_ghosts_earlier_loops_didnt() {
    let src = r#"
        REAL*8 x(nnode), y(nnode), z(nnode)
        INTEGER e1(nedge), e2(nedge), f1(nface), f2(nface)
        DECOMPOSITION regn(nnode), rege(nedge), regf(nface)
        DISTRIBUTE regn(BLOCK)
        DISTRIBUTE rege(BLOCK)
        DISTRIBUTE regf(BLOCK)
        ALIGN x, y, z WITH regn
        ALIGN e1, e2 WITH rege
        ALIGN f1, f2 WITH regf
        CALL READ_DATA(x, y, z, e1, e2, f1, f2)
        FORALL i = 1, nedge
          REDUCE(ADD, y(e1(i)), x(e1(i)) * x(e2(i)))
        END FORALL
        FORALL j = 1, nface
          REDUCE(ADD, z(f1(j)), x(f1(j)) + x(f2(j)))
        END FORALL
    "#;
    let nnode = 32usize;
    let nedge = nnode - 1; // chain: (i, i+1)
    let nface = nnode - 2;
    let e1: Vec<u32> = (1..nnode as u32).collect();
    let e2: Vec<u32> = (2..=nnode as u32).collect();
    // Lower-half faces repeat the chain pairs exactly (their ghosts are
    // fully resident after L1 — whole request messages disappear); the
    // upper half uses the wider (i, i+2) stencil (partially resident —
    // only the new ghosts are fetched).
    let f1: Vec<u32> = (1..(nnode - 1) as u32).collect();
    let f2: Vec<u32> = (0..nface as u32)
        .map(|k| if k < nface as u32 / 2 { k + 2 } else { k + 3 })
        .collect();
    let x: Vec<f64> = (0..nnode).map(|i| (i as f64 * 0.41).sin() + 2.0).collect();
    let inputs = ProgramInputs::new()
        .scalar("nnode", nnode)
        .scalar("nedge", nedge)
        .scalar("nface", nface)
        .real("x", x)
        .real("y", vec![0.0; nnode])
        .real("z", vec![0.0; nnode])
        .int("e1", e1)
        .int("e2", e2)
        .int("f1", f1)
        .int("f2", f2);
    let program = lower_program(parse_program(src).expect("parse")).expect("lower");
    let sweeps = 5;

    let drive = |incremental: bool| -> Executor {
        let mut exec = Executor::new(MachineConfig::ipsc860(4), inputs.clone())
            .with_incremental_schedules(incremental);
        exec.run(&program).expect("run");
        for _ in 0..sweeps {
            exec.execute_loop(&program, "L1").expect("sweep L1");
            exec.execute_loop(&program, "L2").expect("sweep L2");
        }
        exec
    };
    let incr = drive(true);
    let full = drive(false);

    // The second loop's binding found resident ghosts; the escape hatch
    // never binds.
    assert!(
        incr.report().incremental_bindings >= 1,
        "L2 must bind incrementally over L1's residents"
    );
    assert_eq!(full.report().incremental_bindings, 0);

    // Savings are booked under both ledgers: the inspector's request
    // exchange and every steady-state gather of the second loop.
    let sched_saved = incr
        .machine()
        .stats()
        .saved_labelled("incremental:schedule-build");
    let gather_saved = incr.machine().stats().saved_labelled("incremental:gather");
    assert!(sched_saved.messages > 0, "request-exchange messages saved");
    assert!(gather_saved.messages > 0, "gather messages saved");
    assert!(gather_saved.bytes > 0, "gather volume saved");
    // One saving per steady-state L2 gather: the program's own sweep plus
    // the extra ones.
    assert_eq!(gather_saved.phases, sweeps + 1);

    // Exact accounting: the saved ledger explains the *entire* message and
    // byte gap to the escape-hatch run.
    let it = incr.machine().stats().grand_totals();
    let ft = full.machine().stats().grand_totals();
    assert!(
        it.messages < ft.messages,
        "incremental sends fewer messages"
    );
    assert!(it.bytes < ft.bytes, "incremental moves fewer bytes");
    let saved_msgs = sched_saved.messages + gather_saved.messages;
    let saved_bytes = sched_saved.bytes + gather_saved.bytes;
    assert_eq!(
        ft.messages - it.messages,
        saved_msgs,
        "message ledger exact"
    );
    assert_eq!(ft.bytes - it.bytes, saved_bytes, "byte ledger exact");

    // Incremental gathers must not change a single bit of any result.
    for name in ["x", "y", "z"] {
        let a = incr.real_global(name).unwrap();
        let b = full.real_global(name).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert_eq!(u.to_bits(), v.to_bits(), "{name} diverged");
        }
    }
}
