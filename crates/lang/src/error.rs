//! Error type shared by the parser, semantic analysis and the executor.

/// Errors produced anywhere in the language pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// Lexical or syntactic error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Semantic error found during analysis.
    Semantic(String),
    /// Error raised while executing the lowered program.
    Runtime(String),
    /// An execution phase failed (injected fault, kernel panic or straggler)
    /// and the configured [`chaos_dmsim::RecoveryPolicy`] did not — or was
    /// not allowed to — recover it. Carries the typed
    /// `(epoch, rank, lane, cause)` diagnosis.
    Phase(chaos_dmsim::PhaseError),
}

impl LangError {
    /// Construct a parse error.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        LangError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Construct a semantic error.
    pub fn semantic(message: impl Into<String>) -> Self {
        LangError::Semantic(message.into())
    }

    /// Construct a runtime error.
    pub fn runtime(message: impl Into<String>) -> Self {
        LangError::Runtime(message.into())
    }

    /// Wrap an unrecovered phase failure.
    pub fn phase(err: chaos_dmsim::PhaseError) -> Self {
        LangError::Phase(err)
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LangError::Semantic(m) => write!(f, "semantic error: {m}"),
            LangError::Runtime(m) => write!(f, "runtime error: {m}"),
            LangError::Phase(e) => write!(f, "unrecovered phase failure: {e}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        assert!(LangError::parse(3, "unexpected token")
            .to_string()
            .contains("line 3"));
        assert!(LangError::semantic("x undeclared")
            .to_string()
            .contains("semantic"));
        assert!(LangError::runtime("boom").to_string().contains("runtime"));
    }
}
