//! Caching compiled kernels alongside the schedule-reuse registry.
//!
//! Compilation is an inspector-phase cost: a kernel's bindings are resolved
//! against one inspector run's group layout and ghost counts, so the kernel
//! is exactly as reusable as the inspector results themselves. The cache is
//! therefore keyed the same way the [`ReuseRegistry`](chaos_runtime::ReuseRegistry)
//! keys its records — by the dense [`LoopId`] handle, a plain vector
//! index — and the executor invalidates a loop's entry whenever it re-runs
//! that loop's inspector. Iteration 2+ of every FORALL skips compilation
//! exactly like it skips inspection.
//!
//! An entry also owns the loop's steady-state sweep buffers (one
//! [`RankSweepArea`] per rank: gathered ghost rows, off-processor write
//! buffers and the VM register file, sized to the cached schedules), so
//! reused sweeps never re-allocate the workload-sized buffers — per-sweep
//! work allocates only O(ranks) small state vectors.

use super::compile::CompiledKernel;
use super::vm::RankSweepArea;
use chaos_runtime::{DadSignature, LoopId};
use std::collections::HashMap;
use std::sync::Arc;

/// Reusable per-loop sweep storage: one owned [`RankSweepArea`] per rank,
/// shaped by the kernel's bindings and the cached schedules' ghost counts.
/// Rank-major so the fused sweep can hand rank `p` `&mut areas[p]` during
/// compute and share `&areas` with every rank during scatter-combine.
#[derive(Debug, Clone, Default)]
pub struct SweepBuffers {
    /// Per-rank sweep areas, indexed by rank.
    pub areas: Vec<RankSweepArea>,
}

impl SweepBuffers {
    /// Allocate buffers for a set of bindings given each group's per-rank
    /// ghost counts (`ghost_counts[group][rank]`).
    pub fn for_bindings(b: &super::compile::KernelBindings, ghost_counts: &[Vec<usize>]) -> Self {
        let nprocs = ghost_counts.first().map_or(0, Vec::len);
        let areas = (0..nprocs)
            .map(|p| RankSweepArea {
                ghosts: b
                    .ghosts
                    .iter()
                    .map(|g| vec![0.0; ghost_counts[g.group as usize][p]])
                    .collect(),
                contrib: b
                    .write_bufs
                    .iter()
                    .map(|w| vec![0.0; ghost_counts[w.group as usize][p]])
                    .collect(),
                touched: vec![false; b.write_bufs.len()],
                regs: Vec::new(),
            })
            .collect();
        SweepBuffers { areas }
    }
}

/// The resident value rows of one `(distribution, array)` ghost region:
/// what the shared region currently holds for that array, carried across
/// loops and sweeps so later loops can fetch only the ghosts earlier loops
/// didn't. Freshness is tracked per region chunk against the array's write
/// stamp (`era`): when the stamp moves, every chunk's values are stale and
/// the next reader of each chunk falls back to a full gather.
#[derive(Debug, Clone, Default)]
pub struct RegionValues {
    /// Per-rank resident value rows, sized to the region (grown lazily).
    pub rows: Vec<Vec<f64>>,
    /// The array write stamp the freshness flags are valid for.
    pub era: u64,
    /// `fresh[c]` — region chunk `c`'s slots hold the array's current
    /// values (gathered this era, not overwritten since).
    pub fresh: Vec<bool>,
}

/// One cached loop: the compiled kernel (shared, immutable) plus its
/// mutable sweep buffers.
#[derive(Debug, Clone)]
pub struct KernelEntry {
    /// The compiled bytecode and bindings.
    pub kernel: Arc<CompiledKernel>,
    /// Steady-state sweep storage.
    pub buffers: SweepBuffers,
}

/// The kernel cache: dense [`LoopId`]-indexed entries, mirroring the
/// reuse registry's record table. Compile / reuse statistics live in the
/// executor's `ExecReport` (`kernels_compiled` / `kernel_reuse_hits`) —
/// the cache itself only stores entries.
#[derive(Debug, Clone, Default)]
pub struct KernelCache {
    entries: Vec<Option<KernelEntry>>,
    /// Resident ghost-region value rows, keyed by distribution signature
    /// then array name. Lives here (not in the reuse registry) because the
    /// rows are value state, snapshotted and restored with the kernels.
    region_values: HashMap<DadSignature, HashMap<String, RegionValues>>,
}

impl KernelCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove and return the loop's entry (the executor takes it for the
    /// sweep and [`put`](KernelCache::put)s it back, avoiding clones and
    /// borrow conflicts).
    pub fn take(&mut self, id: LoopId) -> Option<KernelEntry> {
        self.entries.get_mut(id.index()).and_then(Option::take)
    }

    /// Store (or restore) the loop's entry.
    pub fn put(&mut self, id: LoopId, entry: KernelEntry) {
        if self.entries.len() <= id.index() {
            self.entries.resize_with(id.index() + 1, || None);
        }
        self.entries[id.index()] = Some(entry);
    }

    /// Drop the loop's entry — called whenever the loop's inspector re-runs
    /// (the bindings' ghost counts, and possibly the group layout, are
    /// stale).
    pub fn invalidate(&mut self, id: LoopId) {
        if let Some(slot) = self.entries.get_mut(id.index()) {
            *slot = None;
        }
    }

    /// The resident value rows of the `(sig, array)` ghost region, created
    /// empty on first use. Steady-state lookups allocate nothing: the name
    /// is only cloned into the key on the first miss.
    pub fn region_values_mut(&mut self, sig: DadSignature, array: &str) -> &mut RegionValues {
        let inner = self.region_values.entry(sig).or_default();
        if !inner.contains_key(array) {
            inner.insert(array.to_string(), RegionValues::default());
        }
        inner.get_mut(array).expect("just inserted")
    }

    /// Drop every resident region-value row (used when regions themselves
    /// are rebuilt from scratch, e.g. on machine-size changes in tests).
    pub fn clear_region_values(&mut self) {
        self.region_values.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_entry() -> KernelEntry {
        use crate::kernel::compile::{compile_kernel, GroupSpec};
        use crate::lower::lower_program;
        use crate::parser::parse_program;
        let src = r#"
            REAL*8 x(n), y(n)
            DECOMPOSITION reg(n)
            DISTRIBUTE reg(BLOCK)
            ALIGN x, y WITH reg
            FORALL i = 1, n
              y(i) = x(i)
            END FORALL
        "#;
        let cp = lower_program(parse_program(src).unwrap()).unwrap();
        let plan = &cp.plans["L1"];
        let groups = vec![GroupSpec {
            decomp: "reg".to_string(),
            slot_ids: (0..plan.slots.len()).collect(),
        }];
        let kernel = Arc::new(compile_kernel(plan, &groups).unwrap());
        let buffers = SweepBuffers::for_bindings(&kernel.bindings, &[vec![2, 3]]);
        KernelEntry { kernel, buffers }
    }

    #[test]
    fn take_put_invalidate_roundtrip() {
        let mut cache = KernelCache::new();
        let id = LoopId::new("kernel-cache-test-L1");
        assert!(cache.take(id).is_none());
        cache.put(id, dummy_entry());
        let e = cache.take(id).expect("entry present");
        assert!(cache.take(id).is_none(), "take removes the entry");
        cache.put(id, e);
        cache.invalidate(id);
        assert!(cache.take(id).is_none());
    }

    #[test]
    fn buffers_are_shaped_by_ghost_counts() {
        let e = dummy_entry();
        // One area per rank, each shaped by its rank's ghost count.
        assert_eq!(e.buffers.areas.len(), 2);
        for (p, area) in e.buffers.areas.iter().enumerate() {
            assert_eq!(area.ghosts.len(), e.kernel.bindings.ghosts.len());
            for g in &area.ghosts {
                assert_eq!(g.len(), [2, 3][p]);
            }
            assert_eq!(area.contrib.len(), e.kernel.bindings.write_bufs.len());
            for c in &area.contrib {
                assert_eq!(c.len(), [2, 3][p]);
            }
            assert_eq!(area.touched.len(), e.kernel.bindings.write_bufs.len());
        }
    }
}
