//! Runtime kernel compilation: FORALL bodies as register bytecode executed
//! rank-parallel.
//!
//! This module is the "compiled local kernel" half of the paper's runtime
//! compilation story. The inspector/executor machinery (PRs 1–2) made the
//! *communication* of an irregular loop fast and reusable; what remained
//! interpreted was the loop body itself — a per-element walk of
//! [`CompiledExpr`](crate::lower::CompiledExpr) trees on the driver thread.
//! This subsystem removes that overhead in three pieces:
//!
//! * [`compile`] — lowers a [`LoopPlan`](crate::lower::LoopPlan) into a
//!   [`CompiledKernel`]: a flat struct-of-arrays instruction arena over a
//!   small register file, with every array slot, ghost buffer and
//!   off-processor write buffer resolved against the cached CSR schedules
//!   at compile time;
//! * [`vm`] — the [`RankState`] rank-local borrows plus the
//!   [`RankSweepArea`] owned per-rank sweep storage, and the two executors
//!   over them: [`run_rank`] (the bytecode VM, with slot CSE: a
//!   per-iteration preamble pins each distinct read-only slot into a
//!   dedicated register once) and [`run_rank_interpreted`] (the retained
//!   tree-walking oracle). Both run inside `Backend::run_compute` or the
//!   fused `Backend::run_sweep`, so interpreted programs execute
//!   rank-parallel end-to-end on every engine;
//! * [`cache`] — the [`KernelCache`], keyed by dense
//!   [`LoopId`](chaos_runtime::LoopId) handles alongside the schedule-reuse
//!   registry: a loop recompiles exactly when it re-inspects, and reused
//!   sweeps skip compilation *and* buffer allocation.
//!
//! The VM's floating-point operation sequence is identical to the
//! tree-walker's by construction (post-order emission), so the two paths
//! produce byte-identical array values, modeled clocks and communication
//! statistics — property-tested in `tests/kernel_equivalence.rs`.

pub mod cache;
pub mod compile;
pub mod vm;

pub use cache::{KernelCache, KernelEntry, RegionValues, SweepBuffers};
pub use compile::{
    compile_kernel, ArrLoc, CompiledKernel, GhostBinding, GroupSpec, KernelBindings, Op,
    SlotBinding, WriteBinding, NO_GHOST,
};
pub use vm::{eflux, run_rank, run_rank_interpreted, RankState, RankSweepArea};
