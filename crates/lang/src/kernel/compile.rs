//! Lowering FORALL bodies from [`CompiledExpr`] trees to flat register
//! bytecode.
//!
//! The compiler runs once per (loop, inspector run): it binds every slot of
//! the [`LoopPlan`] against the cached inspector layout (which decomposition
//! group the slot's localized references live in, which ghost buffer serves
//! its reads, which write buffer collects its off-processor writes) and
//! flattens the statement trees into a linear instruction stream over a
//! small register file. The result is a [`CompiledKernel`] the
//! [`KernelVm`](crate::kernel::vm) executes as a rank-local compute kernel —
//! no name lookups, no tree recursion, no per-element allocation.
//!
//! # Bytecode layout
//!
//! Instructions live in a struct-of-arrays arena: four parallel vectors
//! `ops` / `dst` / `a` / `b` (opcode, destination register, operands), plus
//! a deduplicated `consts` pool.
//!
//! The register file is split into three banks. Registers `0..nconsts`
//! hold the body's literal pool, loaded by a *setup region*
//! (`ops[..iter_start]`) the VM runs once per rank per sweep. Registers
//! `nconsts..nconsts+npinned` pin the body's common subexpressions: every
//! distinct slot the body reads whose array is never written is loaded
//! exactly once per iteration by a preamble at the head of the
//! per-iteration region, and all its uses read the pinned register (slot
//! CSE — the classic `LoadSlot` re-resolution cost drops from one per use
//! to one per iteration). Slots of *written* arrays are excluded: a store
//! earlier in the iteration may change what a later read observes, so
//! their loads stay in source position. Scratch registers sit above both
//! banks and are allocated stack-style during post-order emission — an
//! expression of depth *d* uses scratch registers `0..=d` — and since
//! loads never round, evaluation order (and therefore every
//! floating-point rounding) is identical to the tree-walking
//! interpreter's.
//!
//! | op         | dst         | a          | b               |
//! |------------|-------------|------------|-----------------|
//! | `LoadConst`| register    | const idx  | —               |
//! | `LoadSlot` | register    | slot id    | —               |
//! | binary ops | register    | lhs reg    | rhs reg         |
//! | unary ops  | register    | arg reg    | —               |
//! | `Eflux1/2` | register    | arg-1 reg  | arg-2 reg       |
//! | `Store*`   | target slot | value reg  | write-buffer id |

use crate::ast::Intrinsic;
use crate::lower::{CompiledExpr, CompiledStmt, LoopPlan};
use chaos_runtime::ScatterKind;

/// Sentinel for "this slot is never read, it has no ghost buffer".
pub const NO_GHOST: u32 = u32::MAX;

/// One decomposition group of the cached inspector state: the group's
/// decomposition name and the plan slots localized together in it (the
/// inspector's `localized` rows interleave these slots per iteration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    /// Decomposition name (the executor's group key).
    pub decomp: String,
    /// Plan slot ids in the group, in localization order.
    pub slot_ids: Vec<usize>,
}

/// Where a slot's array lives during a sweep: moved into the mutable
/// written-array set, or borrowed read-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrLoc {
    /// Index into [`KernelBindings::written`].
    Written(u16),
    /// Index into [`KernelBindings::read_only`].
    ReadOnly(u16),
}

/// Everything the VM needs to resolve one slot at one iteration, computed
/// once at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBinding {
    /// Dense index of the slot's decomposition group.
    pub group: u16,
    /// Position of the slot inside its group's localization row.
    pub pos: u32,
    /// Number of slots in the group (the localization row stride).
    pub stride: u32,
    /// Where the slot's array lives during the sweep.
    pub arr: ArrLoc,
    /// Ghost buffer holding the slot's off-processor reads ([`NO_GHOST`]
    /// when the slot is write-only).
    pub ghost: u32,
}

/// One gathered ghost buffer: group `group`'s schedule moves array `array`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhostBinding {
    /// Dense group index.
    pub group: u16,
    /// The array gathered through the group's schedule.
    pub array: String,
}

/// One off-processor write buffer: contributions of kind `kind` to `array`,
/// scattered through group `group`'s schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteBinding {
    /// Dense group index.
    pub group: u16,
    /// The array the contributions are scattered into.
    pub array: String,
    /// Index of `array` in [`KernelBindings::written`].
    pub written: u16,
    /// The combine applied at the owners.
    pub kind: ScatterKind,
}

/// The sweep-state schema of one compiled loop: which arrays are written
/// (moved into the rank-parallel state) vs read-only, how each slot
/// resolves, which ghost buffers to gather and which write buffers to
/// scatter — everything resolved against the CSR schedules at compile time
/// so the per-element hot path does no name lookups.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBindings {
    /// Decomposition groups, in the executor's (name-sorted) group order.
    pub groups: Vec<GroupSpec>,
    /// Arrays the body writes (sorted; moved into the mutable sweep state).
    pub written: Vec<String>,
    /// Arrays the body only reads (sorted; borrowed shared).
    pub read_only: Vec<String>,
    /// Per-slot resolution data, indexed by plan slot id.
    pub slots: Vec<SlotBinding>,
    /// Ghost buffers to gather before the compute phase, in gather order.
    pub ghosts: Vec<GhostBinding>,
    /// Write buffers to scatter after the compute phase, in statement
    /// first-appearance order.
    pub write_bufs: Vec<WriteBinding>,
}

impl KernelBindings {
    /// Bind a plan against the cached inspector layout. Fails when the plan
    /// exceeds the bytecode's index widths or references a slot outside the
    /// layout (both indicate a bug upstream, but the error is graceful).
    pub fn bind(plan: &LoopPlan, groups: &[GroupSpec]) -> Result<Self, String> {
        if plan.slots.len() > u16::MAX as usize {
            return Err(format!("loop '{}' has too many slots", plan.label));
        }
        let written = plan.written_arrays.clone();
        let read_mask = plan.read_slot_mask();
        let mut read_only: Vec<String> = plan
            .data_arrays
            .iter()
            .filter(|a| !written.contains(a))
            .cloned()
            .collect();
        read_only.sort();
        let arr_loc = |array: &str| -> Result<ArrLoc, String> {
            if let Some(w) = written.iter().position(|a| a == array) {
                Ok(ArrLoc::Written(w as u16))
            } else if let Some(r) = read_only.iter().position(|a| a == array) {
                Ok(ArrLoc::ReadOnly(r as u16))
            } else {
                Err(format!("array '{array}' missing from the plan's arrays"))
            }
        };

        // Slot → (group, pos, stride).
        let mut placement: Vec<Option<(u16, u32, u32)>> = vec![None; plan.slots.len()];
        for (g, spec) in groups.iter().enumerate() {
            let stride = spec.slot_ids.len() as u32;
            for (pos, &sid) in spec.slot_ids.iter().enumerate() {
                placement[sid] = Some((g as u16, pos as u32, stride));
            }
        }

        // Ghost buffers: per group (group order), the group's read arrays in
        // sorted order — exactly the executor's historical gather order.
        let mut ghosts: Vec<GhostBinding> = Vec::new();
        for (g, spec) in groups.iter().enumerate() {
            let mut arrays: Vec<&String> = spec
                .slot_ids
                .iter()
                .map(|&sid| &plan.slots[sid].array)
                .filter(|a| {
                    plan.slots
                        .iter()
                        .enumerate()
                        .any(|(i, s)| read_mask[i] && s.array == **a)
                })
                .collect();
            arrays.sort();
            arrays.dedup();
            for a in arrays {
                ghosts.push(GhostBinding {
                    group: g as u16,
                    array: a.clone(),
                });
            }
        }

        let mut slots = Vec::with_capacity(plan.slots.len());
        for (i, slot) in plan.slots.iter().enumerate() {
            let (group, pos, stride) =
                placement[i].ok_or_else(|| format!("slot {i} missing from the group layout"))?;
            let ghost = if read_mask[i] {
                ghosts
                    .iter()
                    .position(|gb| gb.group == group && gb.array == slot.array)
                    .map(|x| x as u32)
                    .ok_or_else(|| format!("read slot {i} has no ghost buffer"))?
            } else {
                NO_GHOST
            };
            slots.push(SlotBinding {
                group,
                pos,
                stride,
                arr: arr_loc(&slot.array)?,
                ghost,
            });
        }

        // Write buffers in statement first-appearance order (the
        // deterministic scatter order both executor paths share).
        let mut write_bufs: Vec<WriteBinding> = Vec::new();
        for stmt in &plan.stmts {
            let target = stmt.target();
            let kind = stmt.scatter_kind();
            let sb = &slots[target];
            let array = &plan.slots[target].array;
            let exists = write_bufs
                .iter()
                .any(|wb| wb.group == sb.group && wb.array == *array && wb.kind == kind);
            if !exists {
                let ArrLoc::Written(w) = sb.arr else {
                    return Err(format!("target array '{array}' is not in the written set"));
                };
                write_bufs.push(WriteBinding {
                    group: sb.group,
                    array: array.clone(),
                    written: w,
                    kind,
                });
            }
        }
        if write_bufs.len() > u16::MAX as usize {
            return Err(format!("loop '{}' has too many write buffers", plan.label));
        }

        Ok(KernelBindings {
            groups: groups.to_vec(),
            written,
            read_only,
            slots,
            ghosts,
            write_bufs,
        })
    }

    /// The write-buffer id a statement's off-processor writes land in.
    pub fn write_buf_of(&self, stmt: &CompiledStmt, plan: &LoopPlan) -> u16 {
        let target = stmt.target();
        let kind = stmt.scatter_kind();
        let sb = &self.slots[target];
        let array = &plan.slots[target].array;
        self.write_bufs
            .iter()
            .position(|wb| wb.group == sb.group && wb.array == *array && wb.kind == kind)
            .expect("write buffer bound for every statement") as u16
    }
}

/// Opcodes of the kernel bytecode. The `Store*` family carries the combine
/// in the opcode, so the VM never re-derives an operator per statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// `reg[dst] = consts[a]`.
    LoadConst,
    /// `reg[dst] = value of slot a at the current iteration`.
    LoadSlot,
    /// `reg[dst] = reg[a] + reg[b]`.
    Add,
    /// `reg[dst] = reg[a] - reg[b]`.
    Sub,
    /// `reg[dst] = reg[a] * reg[b]`.
    Mul,
    /// `reg[dst] = reg[a] / reg[b]`.
    Div,
    /// `reg[dst] = sqrt(reg[a])`.
    Sqrt,
    /// `reg[dst] = abs(reg[a])`.
    Abs,
    /// `reg[dst] = eflux(reg[a], reg[b]).0`.
    Eflux1,
    /// `reg[dst] = eflux(reg[a], reg[b]).1`.
    Eflux2,
    /// Assign `reg[a]` to slot `dst` (write buffer `b` when off-processor).
    StoreAssign,
    /// Accumulate `reg[a]` into slot `dst` with `+`.
    StoreAdd,
    /// Accumulate `reg[a]` into slot `dst` with `max`.
    StoreMax,
    /// Accumulate `reg[a]` into slot `dst` with `min`.
    StoreMin,
}

/// A compiled loop body: bindings plus the flat instruction arena.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// Slot / buffer bindings resolved against the inspector layout.
    pub bindings: KernelBindings,
    /// Opcodes (struct-of-arrays with `dst` / `a` / `b`).
    pub ops: Vec<Op>,
    /// Destination register or target slot, per instruction.
    pub dst: Vec<u16>,
    /// First operand (register, slot id or const index), per instruction.
    pub a: Vec<u16>,
    /// Second operand (register or write-buffer id), per instruction.
    pub b: Vec<u16>,
    /// Deduplicated literal pool.
    pub consts: Vec<f64>,
    /// Register-file size.
    pub nregs: u16,
    /// First instruction of the per-iteration region: `ops[..iter_start]`
    /// is the setup region (const loads) the VM runs once per rank per
    /// sweep; `ops[iter_start..]` (pinned-slot preamble + statements) runs
    /// every iteration.
    pub iter_start: usize,
}

impl CompiledKernel {
    /// Total number of instructions, including the once-per-sweep setup
    /// region `ops[..iter_start]`.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for an empty loop body.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

struct Emitter {
    ops: Vec<Op>,
    dst: Vec<u16>,
    a: Vec<u16>,
    b: Vec<u16>,
    consts: Vec<f64>,
    nregs: u16,
    /// First scratch register: consts and pinned slots sit below it.
    scratch_base: u16,
    /// Pinned slots (slot id → pinned register), first-encounter order.
    pinned: Vec<(usize, u16)>,
}

impl Emitter {
    fn push(&mut self, op: Op, dst: u16, a: u16, b: u16) {
        self.ops.push(op);
        self.dst.push(dst);
        self.a.push(a);
        self.b.push(b);
    }

    /// Register of literal `v` — also its index in the (pre-scanned, fully
    /// populated) const pool, since consts occupy registers `0..nconsts`.
    fn const_reg(&self, v: f64) -> u16 {
        let bits = v.to_bits();
        self.consts
            .iter()
            .position(|c| c.to_bits() == bits)
            .expect("pre-scan visited every literal") as u16
    }

    fn reg(&mut self, depth: usize) -> Result<u16, String> {
        let r = u16::try_from(depth)
            .ok()
            .and_then(|d| d.checked_add(self.scratch_base))
            .ok_or_else(|| "expression too deep".to_string())?;
        self.nregs = self.nregs.max(r + 1);
        Ok(r)
    }

    /// Post-order emission: the expression's value lands in scratch
    /// register `scratch_base + depth` — except literals and pinned slots,
    /// which resolve to their dedicated registers without emitting an
    /// instruction. Left-to-right operand order matches the tree-walker's
    /// evaluation order exactly, and loads never round, so the elision
    /// cannot change any floating-point result.
    fn emit_expr(&mut self, e: &CompiledExpr, depth: usize) -> Result<u16, String> {
        match e {
            CompiledExpr::Lit(v) => Ok(self.const_reg(*v)),
            CompiledExpr::Slot(s) => {
                if let Some(&(_, r)) = self.pinned.iter().find(|(sid, _)| sid == s) {
                    return Ok(r);
                }
                let dst = self.reg(depth)?;
                let slot = u16::try_from(*s).map_err(|_| "slot id overflow".to_string())?;
                self.push(Op::LoadSlot, dst, slot, 0);
                Ok(dst)
            }
            CompiledExpr::Binary { op, lhs, rhs } => {
                let dst = self.reg(depth)?;
                let a = self.emit_expr(lhs, depth)?;
                let b = self.emit_expr(rhs, depth + 1)?;
                let opcode = match op {
                    '+' => Op::Add,
                    '-' => Op::Sub,
                    '*' => Op::Mul,
                    '/' => Op::Div,
                    other => return Err(format!("unknown binary operator '{other}'")),
                };
                self.push(opcode, dst, a, b);
                Ok(dst)
            }
            CompiledExpr::Call { intrinsic, args } => {
                let dst = self.reg(depth)?;
                let mut regs = Vec::with_capacity(args.len());
                for (i, arg) in args.iter().enumerate() {
                    regs.push(self.emit_expr(arg, depth + i)?);
                }
                let (opcode, arity) = match intrinsic {
                    Intrinsic::Eflux1 => (Op::Eflux1, 2),
                    Intrinsic::Eflux2 => (Op::Eflux2, 2),
                    Intrinsic::Sqrt => (Op::Sqrt, 1),
                    Intrinsic::Abs => (Op::Abs, 1),
                };
                if regs.len() != arity {
                    return Err(format!(
                        "intrinsic {intrinsic:?} takes {arity} arguments, got {}",
                        regs.len()
                    ));
                }
                let b = if arity == 2 { regs[1] } else { 0 };
                self.push(opcode, dst, regs[0], b);
                Ok(dst)
            }
        }
    }
}

/// Pre-scan one expression in the emitter's exact DFS order, collecting the
/// literal pool (bit-pattern deduplicated, first-encounter order — the same
/// pool the per-use emission historically built) and the pinnable slots:
/// reads whose array is never written by the body, so an iteration's
/// earlier stores cannot change what the load observes.
fn prescan(
    e: &CompiledExpr,
    bindings: &KernelBindings,
    consts: &mut Vec<f64>,
    pinned: &mut Vec<usize>,
) {
    match e {
        CompiledExpr::Lit(v) => {
            let bits = v.to_bits();
            if !consts.iter().any(|c| c.to_bits() == bits) {
                consts.push(*v);
            }
        }
        CompiledExpr::Slot(s) => {
            if matches!(bindings.slots[*s].arr, ArrLoc::ReadOnly(_)) && !pinned.contains(s) {
                pinned.push(*s);
            }
        }
        CompiledExpr::Binary { lhs, rhs, .. } => {
            prescan(lhs, bindings, consts, pinned);
            prescan(rhs, bindings, consts, pinned);
        }
        CompiledExpr::Call { args, .. } => {
            for arg in args {
                prescan(arg, bindings, consts, pinned);
            }
        }
    }
}

/// Compile a loop body against the cached inspector layout: bind every slot
/// and buffer, pre-scan the statements for the const pool and the pinnable
/// slots, then flatten the statements into the bytecode arena — a
/// once-per-sweep const-load setup region followed by the per-iteration
/// region (pinned-slot preamble, then the statements).
pub fn compile_kernel(plan: &LoopPlan, groups: &[GroupSpec]) -> Result<CompiledKernel, String> {
    let bindings = KernelBindings::bind(plan, groups)?;
    let mut consts = Vec::new();
    let mut pinned_slots = Vec::new();
    for stmt in &plan.stmts {
        prescan(stmt.value(), &bindings, &mut consts, &mut pinned_slots);
    }
    let nconsts = u16::try_from(consts.len()).map_err(|_| "constant pool overflow".to_string())?;
    let scratch_base = u16::try_from(consts.len() + pinned_slots.len())
        .map_err(|_| "register file overflow".to_string())?;
    let mut e = Emitter {
        ops: Vec::new(),
        dst: Vec::new(),
        a: Vec::new(),
        b: Vec::new(),
        consts,
        nregs: scratch_base,
        scratch_base,
        pinned: Vec::with_capacity(pinned_slots.len()),
    };
    // Setup region: load the const pool into its register bank once per
    // rank per sweep.
    for c in 0..nconsts {
        e.push(Op::LoadConst, c, c, 0);
    }
    let iter_start = e.ops.len();
    // Per-iteration preamble: pin each read-only slot into its register.
    for (j, &s) in pinned_slots.iter().enumerate() {
        let r = nconsts + j as u16;
        let slot = u16::try_from(s).map_err(|_| "slot id overflow".to_string())?;
        e.push(Op::LoadSlot, r, slot, 0);
        e.pinned.push((s, r));
    }
    for stmt in &plan.stmts {
        let src = e.emit_expr(stmt.value(), 0)?;
        let target = u16::try_from(stmt.target()).map_err(|_| "slot id overflow".to_string())?;
        let wb = bindings.write_buf_of(stmt, plan);
        let opcode = match stmt.scatter_kind() {
            ScatterKind::Store => Op::StoreAssign,
            ScatterKind::Add => Op::StoreAdd,
            ScatterKind::Max => Op::StoreMax,
            ScatterKind::Min => Op::StoreMin,
        };
        e.push(opcode, target, src, wb);
    }
    Ok(CompiledKernel {
        bindings,
        ops: e.ops,
        dst: e.dst,
        a: e.a,
        b: e.b,
        consts: e.consts,
        nregs: e.nregs,
        iter_start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::parser::parse_program;

    const EDGE_LOOP: &str = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#;

    fn edge_plan() -> LoopPlan {
        lower_program(parse_program(EDGE_LOOP).unwrap())
            .unwrap()
            .plans["L1"]
            .clone()
    }

    fn edge_groups(plan: &LoopPlan) -> Vec<GroupSpec> {
        // All four slots reference x / y, aligned with "reg".
        vec![GroupSpec {
            decomp: "reg".to_string(),
            slot_ids: (0..plan.slots.len()).collect(),
        }]
    }

    #[test]
    fn bindings_resolve_slots_and_buffers() {
        let plan = edge_plan();
        let b = KernelBindings::bind(&plan, &edge_groups(&plan)).unwrap();
        assert_eq!(b.written, vec!["y"]);
        assert_eq!(b.read_only, vec!["x"]);
        // x is gathered (read), y is not (write-only targets).
        assert_eq!(b.ghosts.len(), 1);
        assert_eq!(b.ghosts[0].array, "x");
        // Two REDUCE(ADD, y, ...) statements share one write buffer.
        assert_eq!(b.write_bufs.len(), 1);
        assert_eq!(b.write_bufs[0].kind, ScatterKind::Add);
        assert_eq!(b.write_bufs[0].array, "y");
        for (i, sb) in b.slots.iter().enumerate() {
            assert_eq!(sb.group, 0);
            assert_eq!(sb.stride, plan.slots.len() as u32);
            assert_eq!(sb.pos, i as u32);
        }
        // The x slots read through the ghost buffer; the y slots do not.
        let xs: Vec<_> = plan
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.array == "x")
            .map(|(i, _)| i)
            .collect();
        for i in 0..plan.slots.len() {
            if xs.contains(&i) {
                assert_eq!(b.slots[i].ghost, 0);
                assert_eq!(b.slots[i].arr, ArrLoc::ReadOnly(0));
            } else {
                assert_eq!(b.slots[i].ghost, NO_GHOST);
                assert_eq!(b.slots[i].arr, ArrLoc::Written(0));
            }
        }
    }

    #[test]
    fn bytecode_shape_of_the_edge_loop() {
        let plan = edge_plan();
        let k = compile_kernel(&plan, &edge_groups(&plan)).unwrap();
        // Slot CSE: the two x reads are pinned once by the per-iteration
        // preamble, then both EFLUX statements read the pinned registers —
        // 2 preamble loads + (Eflux + Store) per statement = 6 total,
        // versus 8 with per-use LoadSlots.
        assert_eq!(k.len(), 6);
        assert!(!k.is_empty());
        // No literals → no setup region; the per-iteration region is the
        // whole program.
        assert_eq!(k.iter_start, 0);
        assert!(k.consts.is_empty());
        assert_eq!(
            k.ops,
            vec![
                Op::LoadSlot, // pin x(end_pt1) → r0
                Op::LoadSlot, // pin x(end_pt2) → r1
                Op::Eflux1,
                Op::StoreAdd,
                Op::Eflux2,
                Op::StoreAdd,
            ]
        );
        // Both Eflux ops read the pinned bank and land in scratch r2.
        assert_eq!(k.nregs, 3);
        assert_eq!((k.a[2], k.b[2], k.dst[2]), (0, 1, 2));
        assert_eq!((k.a[4], k.b[4], k.dst[4]), (0, 1, 2));
        // SoA arenas stay parallel.
        assert_eq!(k.dst.len(), k.len());
        assert_eq!(k.a.len(), k.len());
        assert_eq!(k.b.len(), k.len());
    }

    #[test]
    fn constants_are_deduplicated() {
        let src = r#"
            REAL*8 x(n), y(n)
            DECOMPOSITION reg(n)
            DISTRIBUTE reg(BLOCK)
            ALIGN x, y WITH reg
            FORALL i = 1, n
              y(i) = x(i) * 2.0 + 2.0
            END FORALL
        "#;
        let cp = lower_program(parse_program(src).unwrap()).unwrap();
        let plan = &cp.plans["L1"];
        let groups = vec![GroupSpec {
            decomp: "reg".to_string(),
            slot_ids: (0..plan.slots.len()).collect(),
        }];
        let k = compile_kernel(plan, &groups).unwrap();
        // The two uses of 2.0 share one pool entry, loaded into r0 by the
        // once-per-sweep setup region.
        assert_eq!(k.consts, vec![2.0]);
        assert_eq!(k.iter_start, 1);
        assert_eq!(k.ops[0], Op::LoadConst);
        // Per iteration: pin x → r1, then Mul / Add in scratch r2, Store.
        assert_eq!(
            k.ops[1..],
            [Op::LoadSlot, Op::Mul, Op::Add, Op::StoreAssign]
        );
        assert_eq!(k.len(), 5);
        assert_eq!(k.nregs, 3);
        // Both arithmetic ops read the shared const register r0.
        assert_eq!((k.a[2], k.b[2], k.dst[2]), (1, 0, 2));
        assert_eq!((k.a[3], k.b[3], k.dst[3]), (2, 0, 2));
    }

    #[test]
    fn mixed_store_kinds_get_separate_write_buffers() {
        let src = r#"
            REAL*8 x(n), y(n)
            INTEGER ia(m)
            DECOMPOSITION reg(n), reg2(m)
            DISTRIBUTE reg(BLOCK)
            DISTRIBUTE reg2(BLOCK)
            ALIGN x, y WITH reg
            ALIGN ia WITH reg2
            FORALL i = 1, m
              y(ia(i)) = x(ia(i))
              REDUCE(MAX, y(ia(i)), x(ia(i)))
            END FORALL
        "#;
        let cp = lower_program(parse_program(src).unwrap()).unwrap();
        let plan = &cp.plans["L1"];
        let groups = vec![GroupSpec {
            decomp: "reg".to_string(),
            slot_ids: (0..plan.slots.len()).collect(),
        }];
        let b = KernelBindings::bind(plan, &groups).unwrap();
        assert_eq!(b.write_bufs.len(), 2);
        assert_eq!(b.write_bufs[0].kind, ScatterKind::Store);
        assert_eq!(b.write_bufs[1].kind, ScatterKind::Max);
    }
}
