//! The register VM that executes compiled kernels rank-parallel, and the
//! retained tree-walking interpreter it is differentially checked against.
//!
//! Both executors consume the same pair of per-rank structures:
//! [`RankState`] borrows everything one virtual processor reads or writes
//! *in place* during a compute phase (its own shards of the written arrays,
//! shared views of the read-only arrays, its localized reference rows),
//! while [`RankSweepArea`] *owns* the rank's sweep-scoped storage — gathered
//! ghost rows, off-processor write-buffer rows, touched flags and the
//! register file — so the fused sweep can hand each rank `&mut` its area
//! during compute and then share all areas immutably with every rank during
//! the scatter-combine stage. Both are `Send`, so the executor hands one
//! pair per rank to [`chaos_dmsim::Backend::run_compute`] /
//! `Backend::run_sweep` and the sweep runs on every engine — including one
//! OS thread per rank under `ThreadedBackend` — with byte-identical
//! results.
//!
//! [`run_rank`] is the compiled hot path: the once-per-sweep setup region
//! (`ops[..iter_start]`, const loads) runs first, then a linear walk of the
//! per-iteration region per iteration — pinned-slot preamble (slot CSE:
//! each distinct read-only slot loads once per iteration) followed by the
//! statements — with registers in a flat `f64` file persisted in the
//! rank's [`RankSweepArea`]. Its floating-point operation sequence is
//! *identical* to the tree-walker's ([`run_rank_interpreted`]) — post-order
//! emission preserves evaluation order, and loads never round — which is
//! what makes the byte-for-byte differential tests possible.

use super::compile::{ArrLoc, CompiledKernel, KernelBindings, Op, SlotBinding};
use crate::ast::Intrinsic;
use crate::lower::{CompiledExpr, LoopPlan};
use chaos_runtime::{LocalRef, ScatterKind};

/// The edge-flux intrinsic shared with the workload crate's kernels. The
/// arithmetic is duplicated here (rather than depending on `chaos-workloads`)
/// to keep the language crate's dependency graph minimal; the cross-crate
/// integration tests assert the two stay identical.
#[inline]
pub fn eflux(x1: f64, x2: f64) -> (f64, f64) {
    let avg = 0.5 * (x1 + x2);
    let diff = x2 - x1;
    let flux = avg * diff + 0.25 * diff.abs() * x1;
    (flux, -flux)
}

/// Apply a statement's combine to a cell *inside the compute loop* (an
/// owned element or a write-buffer slot). Unlike
/// [`ScatterKind::apply`], `Store` here assigns unconditionally — the NaN
/// guard belongs only to the scatter phase, where NaN marks untouched
/// buffer slots.
#[inline]
fn combine_in_loop(kind: ScatterKind, cell: &mut f64, v: f64) {
    match kind {
        ScatterKind::Add => *cell += v,
        ScatterKind::Max => *cell = cell.max(v),
        ScatterKind::Min => *cell = cell.min(v),
        ScatterKind::Store => *cell = v,
    }
}

/// Everything rank `rank` reads or writes *in place* during one compute
/// phase. Built by the executor from the cached inspector state and handed
/// through `Backend::run_compute` / `Backend::run_sweep`, so the borrows
/// are provably rank-disjoint.
pub struct RankState<'a> {
    /// The executing rank.
    pub rank: usize,
    /// The rank's iteration list (local iteration numbers, 0-based).
    pub iters: &'a [u32],
    /// Mutable shards of the written arrays, indexed like
    /// [`KernelBindings::written`].
    pub shards: Vec<&'a mut [f64]>,
    /// Shared shards of the read-only arrays, indexed like
    /// [`KernelBindings::read_only`].
    pub read_shards: Vec<&'a [f64]>,
    /// The rank's localized reference row per decomposition group, indexed
    /// like [`KernelBindings::groups`].
    pub localized: Vec<&'a [LocalRef]>,
    /// Per ghost buffer (indexed like [`KernelBindings::ghosts`]): `Some`
    /// holds the rank's slot re-binding map into a shared resident ghost
    /// region — ghost slot `g` is stored at row position `map[g]` — while
    /// `None` means the buffer is rank-local and slots index it directly.
    pub ghost_maps: Vec<Option<&'a [u32]>>,
}

/// The rank's *owned* sweep-scoped storage, split from [`RankState`] so the
/// fused sweep's stages can alias it stage-appropriately: during compute
/// each rank holds `&mut` its own area; during the scatter-combine stage
/// every rank reads all areas through a shared `&[RankSweepArea]` while
/// mutating only its [`RankState`] shards. Rows are indexed like the
/// corresponding [`KernelBindings`] tables.
#[derive(Debug, Clone, Default)]
pub struct RankSweepArea {
    /// The rank's row of each gathered ghost buffer, indexed like
    /// [`KernelBindings::ghosts`].
    pub ghosts: Vec<Vec<f64>>,
    /// The rank's row of each off-processor write buffer, indexed like
    /// [`KernelBindings::write_bufs`].
    pub contrib: Vec<Vec<f64>>,
    /// `touched[wb]` is set when the rank wrote write buffer `wb` (untouched
    /// buffers are not scattered, exactly like the lazily-created buffers of
    /// the original driver loop).
    pub touched: Vec<bool>,
    /// The VM's register file, persisted across sweeps so steady-state
    /// iterations are allocation-free (lazily grown to the kernel's
    /// `nregs`).
    pub regs: Vec<f64>,
}

impl RankSweepArea {
    /// Reset the write-buffer rows to their identities and clear the touched
    /// flags — the per-sweep prologue both executors share.
    pub fn reset_write_buffers(&mut self, bindings: &KernelBindings) {
        for (wb, row) in self.contrib.iter_mut().enumerate() {
            row.fill(bindings.write_bufs[wb].kind.identity());
        }
        self.touched.fill(false);
    }

    /// Grow the register file to at least `nregs` slots (no-op in steady
    /// state).
    fn ensure_regs(&mut self, nregs: usize) {
        if self.regs.len() < nregs {
            self.regs.resize(nregs, 0.0);
        }
    }
}

impl RankState<'_> {
    /// The localized reference of `slot` at the rank's `iter_pos`-th
    /// iteration.
    #[inline]
    fn slot_ref(&self, sb: &SlotBinding, iter_pos: usize) -> LocalRef {
        self.localized[sb.group as usize][iter_pos * sb.stride as usize + sb.pos as usize]
    }

    /// Read the value of `slot` at the rank's `iter_pos`-th iteration.
    #[inline]
    fn read_slot(&self, sb: &SlotBinding, iter_pos: usize, ghosts: &[Vec<f64>]) -> f64 {
        match self.slot_ref(sb, iter_pos) {
            LocalRef::Owned(off) => match sb.arr {
                ArrLoc::Written(w) => self.shards[w as usize][off as usize],
                ArrLoc::ReadOnly(r) => self.read_shards[r as usize][off as usize],
            },
            LocalRef::Ghost(g) => {
                debug_assert_ne!(sb.ghost, super::compile::NO_GHOST, "write-only slot read");
                let at = match self.ghost_maps[sb.ghost as usize] {
                    Some(map) => map[g as usize] as usize,
                    None => g as usize,
                };
                ghosts[sb.ghost as usize][at]
            }
        }
    }

    /// Combine `v` into `slot`'s target cell: the rank's own shard when the
    /// element is owned, the statement's write buffer when it is not.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn write_slot(
        &mut self,
        sb: &SlotBinding,
        iter_pos: usize,
        wb: usize,
        kind: ScatterKind,
        v: f64,
        contrib: &mut [Vec<f64>],
        touched: &mut [bool],
    ) {
        match self.slot_ref(sb, iter_pos) {
            LocalRef::Owned(off) => {
                let ArrLoc::Written(w) = sb.arr else {
                    unreachable!("store target bound to a read-only array")
                };
                combine_in_loop(kind, &mut self.shards[w as usize][off as usize], v);
            }
            LocalRef::Ghost(g) => {
                touched[wb] = true;
                combine_in_loop(kind, &mut contrib[wb][g as usize], v);
            }
        }
    }
}

/// Execute the compiled kernel over the rank's iterations: the executor's
/// compute phase on the bytecode hot path. The setup region runs once (its
/// const loads persist in the area's register file), then the per-iteration
/// region is walked as zipped slices (one linear pass, no per-operand
/// bounds checks) per iteration.
pub fn run_rank(kernel: &CompiledKernel, st: &mut RankState<'_>, area: &mut RankSweepArea) {
    area.reset_write_buffers(&kernel.bindings);
    area.ensure_regs(kernel.nregs.max(1) as usize);
    let RankSweepArea {
        ghosts,
        contrib,
        touched,
        regs,
    } = area;
    let slots = &kernel.bindings.slots;
    let setup = kernel
        .ops
        .iter()
        .zip(&kernel.dst)
        .zip(&kernel.a)
        .take(kernel.iter_start);
    for ((&op, &d), &x) in setup {
        debug_assert_eq!(op, Op::LoadConst, "setup region is const loads only");
        let _ = op;
        regs[d as usize] = kernel.consts[x as usize];
    }
    for iter_pos in 0..st.iters.len() {
        let instrs = kernel.ops[kernel.iter_start..]
            .iter()
            .zip(&kernel.dst[kernel.iter_start..])
            .zip(&kernel.a[kernel.iter_start..])
            .zip(&kernel.b[kernel.iter_start..]);
        for (((&op, &d), &x), &y) in instrs {
            let (d, x, y) = (d as usize, x as usize, y as usize);
            match op {
                Op::LoadConst => regs[d] = kernel.consts[x],
                Op::LoadSlot => regs[d] = st.read_slot(&slots[x], iter_pos, ghosts),
                Op::Add => regs[d] = regs[x] + regs[y],
                Op::Sub => regs[d] = regs[x] - regs[y],
                Op::Mul => regs[d] = regs[x] * regs[y],
                Op::Div => regs[d] = regs[x] / regs[y],
                Op::Sqrt => regs[d] = regs[x].sqrt(),
                Op::Abs => regs[d] = regs[x].abs(),
                Op::Eflux1 => regs[d] = eflux(regs[x], regs[y]).0,
                Op::Eflux2 => regs[d] = eflux(regs[x], regs[y]).1,
                Op::StoreAssign => st.write_slot(
                    &slots[d],
                    iter_pos,
                    y,
                    ScatterKind::Store,
                    regs[x],
                    contrib,
                    touched,
                ),
                Op::StoreAdd => st.write_slot(
                    &slots[d],
                    iter_pos,
                    y,
                    ScatterKind::Add,
                    regs[x],
                    contrib,
                    touched,
                ),
                Op::StoreMax => st.write_slot(
                    &slots[d],
                    iter_pos,
                    y,
                    ScatterKind::Max,
                    regs[x],
                    contrib,
                    touched,
                ),
                Op::StoreMin => st.write_slot(
                    &slots[d],
                    iter_pos,
                    y,
                    ScatterKind::Min,
                    regs[x],
                    contrib,
                    touched,
                ),
            }
        }
    }
}

/// The interpreter's per-rank name-resolution environment. The seed
/// interpreter resolved every slot read by *name* per element (a
/// `String`-keyed map lookup per read, two `String` clones per ghost
/// access); the oracle-hoist satellite moves that resolution behind a
/// one-time binding table built here, once per sweep: the constructor
/// still walks the name-keyed maps (decomposition-name group map,
/// array-name location map, `(decomposition, array)` ghost map — so the
/// two modes still resolve through genuinely different paths and a binding
/// bug cannot cancel out of the differential tests), but the per-read hot
/// path indexes the resolved per-slot tables. Output is byte-identical:
/// resolution is pure lookup, so hoisting it cannot change a value. The
/// per-statement combine kind and write-buffer resolution are likewise
/// hoisted once per sweep, and no per-element closure is constructed.
struct OracleEnv {
    /// Slot → group index, resolved through the decomposition-name map.
    slot_group: Vec<usize>,
    /// Slot → (pos, stride) inside its group's localization row.
    slot_pos: Vec<(u32, u32)>,
    /// Slot → array location, resolved through the array-name map.
    slot_arr: Vec<ArrLoc>,
    /// Slot → ghost buffer id, resolved through the
    /// `(decomposition, array)` map (`usize::MAX` for write-only slots,
    /// which never read).
    slot_ghost: Vec<usize>,
}

impl OracleEnv {
    fn new(plan: &LoopPlan, bindings: &KernelBindings) -> Self {
        // The seed's name-keyed maps, now built and consulted exactly once
        // per sweep instead of once per element read.
        let group_of: std::collections::BTreeMap<String, usize> = bindings
            .groups
            .iter()
            .enumerate()
            .map(|(g, spec)| (spec.decomp.clone(), g))
            .collect();
        let mut arr_of = std::collections::HashMap::new();
        for (w, name) in bindings.written.iter().enumerate() {
            arr_of.insert(name.clone(), ArrLoc::Written(w as u16));
        }
        for (r, name) in bindings.read_only.iter().enumerate() {
            arr_of.insert(name.clone(), ArrLoc::ReadOnly(r as u16));
        }
        let ghost_of: std::collections::HashMap<(String, String), usize> = bindings
            .ghosts
            .iter()
            .enumerate()
            .map(|(gid, gb)| {
                (
                    (
                        bindings.groups[gb.group as usize].decomp.clone(),
                        gb.array.clone(),
                    ),
                    gid,
                )
            })
            .collect();

        let mut slot_group = Vec::with_capacity(bindings.slots.len());
        let mut slot_pos = Vec::with_capacity(bindings.slots.len());
        let mut slot_arr = Vec::with_capacity(bindings.slots.len());
        let mut slot_ghost = Vec::with_capacity(bindings.slots.len());
        for (sid, sb) in bindings.slots.iter().enumerate() {
            let decomp = &bindings.groups[sb.group as usize].decomp;
            let array = &plan.slots[sid].array;
            slot_group.push(group_of[decomp]);
            slot_pos.push((sb.pos, sb.stride));
            slot_arr.push(arr_of[array]);
            slot_ghost.push(
                ghost_of
                    .get(&(decomp.clone(), array.clone()))
                    .copied()
                    .unwrap_or(usize::MAX),
            );
        }
        OracleEnv {
            slot_group,
            slot_pos,
            slot_arr,
            slot_ghost,
        }
    }

    /// The seed's `resolve`: localized reference of a slot, through the
    /// hoisted group table.
    fn resolve(&self, st: &RankState<'_>, sid: usize, iter_pos: usize) -> LocalRef {
        let (pos, stride) = self.slot_pos[sid];
        st.localized[self.slot_group[sid]][iter_pos * stride as usize + pos as usize]
    }

    /// The seed's `read_slot`: resolve, then fetch the value through the
    /// hoisted array / ghost tables.
    fn read_slot(
        &self,
        st: &RankState<'_>,
        ghosts: &[Vec<f64>],
        sid: usize,
        iter_pos: usize,
    ) -> f64 {
        match self.resolve(st, sid, iter_pos) {
            LocalRef::Owned(off) => match self.slot_arr[sid] {
                ArrLoc::Written(w) => st.shards[w as usize][off as usize],
                ArrLoc::ReadOnly(r) => st.read_shards[r as usize][off as usize],
            },
            LocalRef::Ghost(g) => {
                let gid = self.slot_ghost[sid];
                let at = match st.ghost_maps[gid] {
                    Some(map) => map[g as usize] as usize,
                    None => g as usize,
                };
                ghosts[gid][at]
            }
        }
    }
}

/// Recursive tree-walking evaluation of one expression — the retained
/// per-element interpreter the VM is checked against (and measured against
/// in `perf_check`'s BENCH_3 rows). Intrinsic calls collect their arguments
/// into a fresh vector, as the seed interpreter did.
fn eval_tree(
    e: &CompiledExpr,
    env: &OracleEnv,
    st: &RankState<'_>,
    ghosts: &[Vec<f64>],
    iter_pos: usize,
) -> f64 {
    match e {
        CompiledExpr::Lit(v) => *v,
        CompiledExpr::Slot(s) => env.read_slot(st, ghosts, *s, iter_pos),
        CompiledExpr::Binary { op, lhs, rhs } => {
            let a = eval_tree(lhs, env, st, ghosts, iter_pos);
            let b = eval_tree(rhs, env, st, ghosts, iter_pos);
            match op {
                '+' => a + b,
                '-' => a - b,
                '*' => a * b,
                '/' => a / b,
                _ => unreachable!("parser only emits + - * /"),
            }
        }
        CompiledExpr::Call { intrinsic, args } => {
            let v: Vec<f64> = args
                .iter()
                .map(|arg| eval_tree(arg, env, st, ghosts, iter_pos))
                .collect();
            match intrinsic {
                Intrinsic::Eflux1 => eflux(v[0], v[1]).0,
                Intrinsic::Eflux2 => eflux(v[0], v[1]).1,
                Intrinsic::Sqrt => v[0].sqrt(),
                Intrinsic::Abs => v[0].abs(),
            }
        }
    }
}

/// Execute the loop body by walking the `CompiledExpr` trees per element —
/// the differential oracle. The statements' targets, combine kinds and
/// write buffers are hoisted out of the iteration loop (they are
/// plan-static, the satellite fix over the seed's per-statement
/// re-derivation), and each read resolves arrays and ghost buffers through
/// the tree-walker environment's once-per-sweep binding table
/// (`OracleEnv`) built from the seed's
/// name-keyed maps.
pub fn run_rank_interpreted(
    plan: &LoopPlan,
    bindings: &KernelBindings,
    st: &mut RankState<'_>,
    area: &mut RankSweepArea,
) {
    area.reset_write_buffers(bindings);
    let RankSweepArea {
        ghosts,
        contrib,
        touched,
        ..
    } = area;
    let env = OracleEnv::new(plan, bindings);
    // Hoisted per-statement data: target slot, combine kind, write buffer.
    let stmt_ops: Vec<(usize, ScatterKind, u16)> = plan
        .stmts
        .iter()
        .map(|s| (s.target(), s.scatter_kind(), bindings.write_buf_of(s, plan)))
        .collect();
    for iter_pos in 0..st.iters.len() {
        for (stmt, &(target, kind, wb)) in plan.stmts.iter().zip(&stmt_ops) {
            let v = eval_tree(stmt.value(), &env, st, ghosts, iter_pos);
            // The write applies through the target's resolved location.
            let lr = env.resolve(st, target, iter_pos);
            match lr {
                LocalRef::Owned(off) => {
                    let ArrLoc::Written(w) = env.slot_arr[target] else {
                        unreachable!("store target bound to a read-only array")
                    };
                    combine_in_loop(kind, &mut st.shards[w as usize][off as usize], v);
                }
                LocalRef::Ghost(g) => {
                    touched[wb as usize] = true;
                    combine_in_loop(kind, &mut contrib[wb as usize][g as usize], v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::compile::{compile_kernel, GroupSpec};
    use crate::lower::lower_program;
    use crate::parser::parse_program;

    /// Drive both executors over a tiny synthetic single-rank state and
    /// compare every written bit.
    #[test]
    fn vm_and_tree_walker_agree_on_a_synthetic_rank() {
        let src = r#"
            REAL*8 x(n), y(n)
            INTEGER ia(m)
            DECOMPOSITION reg(n), reg2(m)
            DISTRIBUTE reg(BLOCK)
            DISTRIBUTE reg2(BLOCK)
            ALIGN x, y WITH reg
            ALIGN ia WITH reg2
            FORALL i = 1, m
              REDUCE(ADD, y(ia(i)), SQRT(ABS(x(ia(i)) * 3.0 - 1.0)))
              y(ia(i)) = y(ia(i)) / 2.0
            END FORALL
        "#;
        let cp = lower_program(parse_program(src).unwrap()).unwrap();
        let plan = &cp.plans["L1"];
        let groups = vec![GroupSpec {
            decomp: "reg".to_string(),
            slot_ids: (0..plan.slots.len()).collect(),
        }];
        let kernel = compile_kernel(plan, &groups).unwrap();
        // Both x and y are read, so each gets a ghost buffer (sorted order).
        assert_eq!(kernel.bindings.ghosts.len(), 2);

        // One rank, 3 iterations: refs 0 and 2 owned, ref 1 a ghost.
        let localized = [
            LocalRef::Owned(0),
            LocalRef::Owned(0),
            LocalRef::Ghost(0),
            LocalRef::Ghost(0),
            LocalRef::Owned(1),
            LocalRef::Owned(1),
        ];
        let run = |use_vm: bool| -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<bool>) {
            let mut y = vec![1.0, 2.0];
            let x = vec![0.5, -0.25];
            let nwb = kernel.bindings.write_bufs.len();
            let mut area = RankSweepArea {
                ghosts: vec![vec![1.5], vec![-0.75]],
                contrib: (0..nwb).map(|_| vec![0.0; 1]).collect(),
                touched: vec![false; nwb],
                regs: Vec::new(),
            };
            {
                let mut st = RankState {
                    rank: 0,
                    iters: &[0, 1, 2],
                    shards: vec![&mut y],
                    read_shards: vec![&x],
                    localized: vec![&localized],
                    ghost_maps: vec![None; kernel.bindings.ghosts.len()],
                };
                if use_vm {
                    run_rank(&kernel, &mut st, &mut area);
                } else {
                    run_rank_interpreted(plan, &kernel.bindings, &mut st, &mut area);
                }
            }
            (y, x, area.contrib.concat(), area.touched)
        };
        let a = run(true);
        let b = run(false);
        for (u, v) in a.0.iter().zip(&b.0) {
            assert_eq!(u.to_bits(), v.to_bits(), "owned writes diverged");
        }
        for (u, v) in a.2.iter().zip(&b.2) {
            assert_eq!(u.to_bits(), v.to_bits(), "write buffers diverged");
        }
        assert_eq!(a.3, b.3, "touched flags diverged");
        assert!(a.3.iter().any(|&t| t), "the ghost write marks its buffer");
    }

    #[test]
    fn eflux_matches_the_workload_kernel_shape() {
        let (f, g) = eflux(1.25, -0.5);
        assert_eq!(f, -g);
        let avg = 0.5 * (1.25 + -0.5);
        let diff: f64 = -0.5 - 1.25;
        assert_eq!(f, avg * diff + 0.25 * diff.abs() * 1.25);
    }
}
