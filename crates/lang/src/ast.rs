//! Abstract syntax of the mini-language.
//!
//! The grammar is deliberately close to the paper's figures. A program is a
//! flat list of statements; sizes (`nnode`, `nedge`, ...) are symbolic
//! scalars bound at execution time through [`crate::exec::ProgramInputs`].
//!
//! Indexing is 1-based, as in Fortran: `FORALL i = 1, nedge` iterates over
//! `1..=nedge`, and indirection-array *values* are 1-based element numbers.

use serde::{Deserialize, Serialize};

/// Elemental type of a declared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElemType {
    /// `REAL*8`
    Real,
    /// `INTEGER`
    Integer,
}

/// A scalar size expression: a literal, a named scalar, or `name - literal`
/// (enough for `nedge`, `53000`, `nnode-1`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeExpr {
    /// Literal value.
    Lit(usize),
    /// Named scalar looked up in the program inputs.
    Name(String),
    /// `Name - offset`.
    NameMinus(String, usize),
}

/// How an array is indexed inside a `FORALL` body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Index {
    /// Directly by the loop variable: `x(i)`.
    LoopVar,
    /// Through one level of indirection: `x(ia(i))` — `ia` is a distributed
    /// integer array indexed by the loop variable (the only indirect form
    /// the paper's techniques handle).
    Indirect(String),
}

/// A reference to a distributed array element inside a loop body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayRef {
    /// Array name.
    pub array: String,
    /// Index form.
    pub index: Index,
}

/// Reduction operators allowed on the left-hand side of `REDUCE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Accumulate with `+`.
    Add,
    /// Accumulate with `max`.
    Max,
    /// Accumulate with `min`.
    Min,
}

/// Built-in scalar functions usable in loop bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Intrinsic {
    /// First component of the Euler edge flux (`f` in the paper's loop L2).
    Eflux1,
    /// Second component of the Euler edge flux (`g` in the paper's loop L2).
    Eflux2,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
}

/// Expressions inside a loop body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Floating-point literal.
    Lit(f64),
    /// Distributed-array element.
    Ref(ArrayRef),
    /// Binary arithmetic.
    Binary {
        /// Operator: `+`, `-`, `*`, `/`.
        op: char,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Intrinsic call.
    Call {
        /// Which intrinsic.
        intrinsic: Intrinsic,
        /// Argument list.
        args: Vec<Expr>,
    },
}

/// A statement inside a `FORALL` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoopStmt {
    /// `target = expr` — no loop-carried dependence allowed.
    Assign {
        /// Left-hand side element.
        target: ArrayRef,
        /// Right-hand side expression.
        value: Expr,
    },
    /// `REDUCE(op, target, expr)` — the only loop-carried dependence the
    /// paper's model admits.
    Reduce {
        /// Reduction operator.
        op: ReduceOp,
        /// Accumulation target.
        target: ArrayRef,
        /// Contribution expression.
        value: Expr,
    },
}

/// A section of a `CONSTRUCT` directive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstructSection {
    /// `GEOMETRY(dim, xc, yc, zc)`.
    Geometry(Vec<String>),
    /// `LOAD(weight)`.
    Load(String),
    /// `LINK(E, list1, list2)`.
    Link {
        /// Number of edges.
        count: SizeExpr,
        /// First endpoint array.
        list1: String,
        /// Second endpoint array.
        list2: String,
    },
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `REAL x(n), y(n)` / `INTEGER ia(m)`.
    Declare {
        /// Element type.
        ty: ElemType,
        /// `(name, size)` pairs.
        arrays: Vec<(String, SizeExpr)>,
    },
    /// `DECOMPOSITION reg(n)[, reg2(m) ...]`, optionally `DYNAMIC`.
    Decomposition {
        /// `(name, size)` pairs.
        decomps: Vec<(String, SizeExpr)>,
        /// Whether declared DYNAMIC (redistributable).
        dynamic: bool,
    },
    /// `DISTRIBUTE reg(BLOCK)` / `DISTRIBUTE reg(CYCLIC)` /
    /// `DISTRIBUTE reg(map)` where `map` is an integer array.
    Distribute {
        /// Decomposition name.
        decomp: String,
        /// `"BLOCK"`, `"CYCLIC"`, or the name of a map array / distfmt.
        format: String,
    },
    /// `ALIGN x, y WITH reg`.
    Align {
        /// Array names.
        arrays: Vec<String>,
        /// Decomposition name.
        decomp: String,
    },
    /// `READ_DATA(a, b, ...)` — bind externally supplied values to arrays.
    ReadData {
        /// Arrays to fill from the program inputs.
        arrays: Vec<String>,
    },
    /// `CONSTRUCT G (n, <sections>)`.
    Construct {
        /// GeoCoL name.
        name: String,
        /// Vertex count.
        nvertices: SizeExpr,
        /// Sections.
        sections: Vec<ConstructSection>,
    },
    /// `SET distfmt BY PARTITIONING G USING RSB`.
    SetPartition {
        /// Name of the distribution-format variable being defined.
        distfmt: String,
        /// GeoCoL name.
        geocol: String,
        /// Partitioner name (resolved through the geocol registry).
        partitioner: String,
    },
    /// `REDISTRIBUTE reg(distfmt)`.
    Redistribute {
        /// Decomposition to redistribute.
        decomp: String,
        /// Distribution-format variable produced by `SET`.
        distfmt: String,
    },
    /// `FORALL i = lo, hi ... END FORALL`.
    Forall {
        /// Loop label (used as the schedule-reuse loop id); generated
        /// automatically when the source does not name the loop.
        label: String,
        /// Loop variable name.
        var: String,
        /// Lower bound (1-based, inclusive).
        lo: SizeExpr,
        /// Upper bound (1-based, inclusive).
        hi: SizeExpr,
        /// Body statements.
        body: Vec<LoopStmt>,
    },
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Program {
    /// Top-level statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// All `FORALL` labels in source order.
    pub fn loop_labels(&self) -> Vec<&str> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Forall { label, .. } => Some(label.as_str()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_labels_extracted_in_order() {
        let p = Program {
            stmts: vec![
                Stmt::ReadData { arrays: vec![] },
                Stmt::Forall {
                    label: "L1".into(),
                    var: "i".into(),
                    lo: SizeExpr::Lit(1),
                    hi: SizeExpr::Name("n".into()),
                    body: vec![],
                },
                Stmt::Forall {
                    label: "L2".into(),
                    var: "i".into(),
                    lo: SizeExpr::Lit(1),
                    hi: SizeExpr::Lit(10),
                    body: vec![],
                },
            ],
        };
        assert_eq!(p.loop_labels(), vec!["L1", "L2"]);
    }

    #[test]
    fn ast_nodes_are_comparable() {
        let r1 = ArrayRef {
            array: "x".into(),
            index: Index::Indirect("ia".into()),
        };
        let r2 = r1.clone();
        assert_eq!(r1, r2);
        let e = Expr::Binary {
            op: '+',
            lhs: Box::new(Expr::Ref(r1)),
            rhs: Box::new(Expr::Lit(1.0)),
        };
        assert_eq!(e, e.clone());
    }
}
