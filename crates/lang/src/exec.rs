//! The generated-code interpreter: executes a lowered program on the CHAOS
//! runtime over a simulated machine.
//!
//! This module plays the role of the code the Fortran 90D compiler *emits*:
//! directives become calls into the mapper coupler, and each `FORALL`
//! becomes the guarded inspector/executor sequence of Figure 6 —
//!
//! ```text
//! if reuse-check(L) fails:
//!     partition iterations of L
//!     run inspector (translate, dedup, build schedules, allocate ghosts)
//!     save inspector results and DAD/last_mod records
//! gather off-processor data            \
//! run the local iterations              |  every executor sweep
//! scatter-add off-processor reductions /
//! record that L wrote its left-hand-side arrays
//! ```
//!
//! Two simplifications relative to a production compiler: indirection-array values are read from the shared address
//! space when building access patterns (their translation/dedup/schedule
//! costs are still charged), and assignments whose left-hand side lands
//! off-processor are resolved with a last-writer-wins scatter.

use crate::ast::*;
use crate::error::LangError;
use crate::kernel::{
    compile_kernel, run_rank, run_rank_interpreted, GroupSpec, KernelBindings, KernelCache,
    KernelEntry, RankState, RankSweepArea, SweepBuffers,
};
use crate::lower::{CompiledProgram, LoopPlan, RefSlot};
use chaos_dmsim::{
    Backend, Counter, FaultPlan, Machine, MachineConfig, MetricsRegistry, PhaseError, PhaseKind,
    PooledBackend, RecoveryPolicy, ThreadedBackend, TraceEventKind, TraceSink,
};
use chaos_geocol::partitioner_by_name;
use chaos_runtime::{
    charge_checkpoint, gather_inline, gather_inline_mapped, gather_inline_offset, gather_rows,
    gather_rows_mapped, gather_rows_offset, scatter_combine_rows, scatter_pack_kernel,
    scatter_reduce_rows, AccessPattern, DistArray, Distribution, GeoColSpec, Inspector,
    InspectorResult, IterPartitionPolicy, IterationPartition, LocalizeScratch, LoopId,
    MapperCoupler, ReuseRegistry,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Hard cap on total attempts of one FORALL across every recovery policy —
/// a backstop against non-injected (organic) panics that would otherwise
/// retry forever, set far above any plausible `max_attempts`.
const OVERALL_ATTEMPT_CAP: u32 = 32;

/// Checkpoint cadence used when [`RecoveryPolicy::RollbackToCheckpoint`] is
/// selected without an explicit `with_checkpoint_every`.
const DEFAULT_CHECKPOINT_EVERY: u64 = 8;

/// Statistics label under which the inspector books request-exchange
/// traffic *avoided* by incremental schedules (ghosts already requested by
/// earlier loops). Read back through
/// [`chaos_dmsim::StatsRegistry::saved_labelled`]; never part of the real
/// totals.
pub const SAVED_SCHEDULE_LABEL: &str = "incremental:schedule-build";

/// Statistics label under which executor sweeps book gather traffic
/// *avoided* because the resident ghost region already held fresh values
/// fetched by earlier loops.
pub const SAVED_GATHER_LABEL: &str = "incremental:gather";

/// Values bound to the program's symbolic sizes and `READ_DATA` arrays.
#[derive(Debug, Clone, Default)]
pub struct ProgramInputs {
    /// Scalar sizes (`nnode`, `nedge`, ...).
    pub scalars: HashMap<String, usize>,
    /// REAL array initial values, keyed by array name.
    pub real_arrays: HashMap<String, Vec<f64>>,
    /// INTEGER array initial values (1-based element numbers), keyed by name.
    pub int_arrays: HashMap<String, Vec<u32>>,
}

impl ProgramInputs {
    /// Create an empty set of inputs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a scalar size.
    pub fn scalar(mut self, name: &str, value: usize) -> Self {
        self.scalars.insert(name.to_string(), value);
        self
    }

    /// Bind a REAL array.
    pub fn real(mut self, name: &str, values: Vec<f64>) -> Self {
        self.real_arrays.insert(name.to_string(), values);
        self
    }

    /// Bind an INTEGER array (values are 1-based element numbers).
    pub fn int(mut self, name: &str, values: Vec<u32>) -> Self {
        self.int_arrays.insert(name.to_string(), values);
        self
    }
}

/// Counters describing what happened during execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Number of `FORALL` sweeps executed.
    pub loop_sweeps: usize,
    /// Number of inspector (re-)runs.
    pub inspector_runs: usize,
    /// Number of sweeps that reused saved inspector results.
    pub reuse_hits: usize,
    /// Number of iteration-partitioning passes.
    pub iteration_partitions: usize,
    /// Number of REDISTRIBUTE operations performed (counting each array).
    pub arrays_redistributed: usize,
    /// Number of kernel (re)compilations (compiled mode only; a loop
    /// recompiles exactly when its inspector re-runs).
    pub kernels_compiled: usize,
    /// Number of sweeps that reused a cached compiled kernel.
    pub kernel_reuse_hits: usize,
    /// Number of schedule merges performed by the inspector (each merge
    /// folds one additional same-distribution group's schedule into the
    /// union whose request exchange is charged once for the cluster; only
    /// counted on the non-incremental path, which builds explicit unions).
    pub schedule_merges: usize,
    /// Number of incremental region bindings whose request exchange was
    /// smaller than the loop's full schedule — i.e. cross-loop bindings
    /// where ghosts already resident from earlier loops were not
    /// re-requested.
    pub incremental_bindings: usize,
}

/// How FORALL bodies execute during the sweep's compute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Compile each body to register bytecode (cached per loop alongside
    /// the inspector results) and run it on the [`crate::kernel`] VM — the
    /// default fast path.
    #[default]
    Compiled,
    /// Walk the `CompiledExpr` trees per element — the retained oracle the
    /// compiled path is differentially tested against.
    Interpreted,
}

/// One decomposition group's cached inspector state.
#[derive(Debug, Clone)]
struct CachedGroup {
    /// The loop-plan slot ids belonging to this group.
    slot_ids: Vec<usize>,
    /// The group's inspector result (schedule, localized rows, ghost
    /// counts) — always the loop's *own* full schedule.
    result: InspectorResult,
    /// The group's binding into the shared resident ghost region of its
    /// distribution, when incremental schedules are enabled (`None` when
    /// they are off; the sweep then gathers the own schedule directly).
    region: Option<chaos_runtime::RegionBinding>,
}

/// Cached inspector state for one loop.
#[derive(Debug, Clone)]
struct CachedLoop {
    iter_part: IterationPartition,
    /// One cached group per decomposition group, keyed by decomposition
    /// name.
    groups: BTreeMap<String, CachedGroup>,
}

/// A restorable copy of everything a FORALL sweep can touch: the machine
/// (clocks, statistics, epoch), the program's distributed arrays, the reuse
/// registry, the kernel cache (so recompile/reuse counters replay
/// identically) and the executor's own bookkeeping. Restoring a snapshot
/// and re-running the same statements is bit-identical to never having
/// failed, because failed regions never replay their charge ledgers and
/// every consumed fault stays consumed (the machine clone shares the fault
/// plan's flags).
#[derive(Debug, Clone)]
struct ExecSnapshot {
    machine: Machine,
    registry: ReuseRegistry,
    kernels: KernelCache,
    real: HashMap<String, DistArray<f64>>,
    int: HashMap<String, DistArray<u32>>,
    decomp_dist: HashMap<String, Distribution>,
    array_decomp: HashMap<String, String>,
    geocols: HashMap<String, chaos_geocol::GeoCoL>,
    distfmts: HashMap<String, Distribution>,
    cache: HashMap<String, CachedLoop>,
    report: ExecReport,
}

/// The interpreter / generated-code driver.
///
/// Generic over the SPMD execution engine: with the default [`Machine`]
/// backend the runtime phases (index translation, dedup, gather, compute,
/// scatter) run rank-serially on the driver thread; with a
/// [`ThreadedBackend`] every virtual processor runs them on its own OS
/// thread, and with a [`PooledBackend`] on a pool of long-lived workers
/// (no per-phase spawn cost) — all with byte-identical results, clocks and
/// statistics. The
/// per-iteration arithmetic is compiled to register bytecode (see
/// [`crate::kernel`]) and executed through `Backend::run_compute`, so whole
/// programs run rank-parallel end-to-end; [`KernelMode::Interpreted`]
/// retains the tree-walking oracle for differential testing.
#[derive(Debug)]
pub struct Executor<B: Backend = Machine> {
    backend: B,
    registry: ReuseRegistry,
    kernels: KernelCache,
    kernel_mode: KernelMode,
    merge_schedules: bool,
    /// Build cross-loop incremental schedules (default): each group's
    /// schedule is bound into its distribution's shared resident ghost
    /// region and only the ghosts earlier loops didn't fetch are requested;
    /// sweeps then gather only the difference when the resident chunks are
    /// still fresh. Disabling restores per-loop self-contained schedules.
    incremental_schedules: bool,
    /// Run each sweep as one fused `Backend::run_sweep` region (default) —
    /// gathers folded in driver-side, one epoch, one engine release — or,
    /// when disabled, as the historical per-phase sequence (the escape
    /// hatch, and the baseline arm of the BENCH_7 gate).
    phase_fusion: bool,
    inputs: ProgramInputs,
    reuse_enabled: bool,
    iter_policy: IterPartitionPolicy,

    real: HashMap<String, DistArray<f64>>,
    int: HashMap<String, DistArray<u32>>,
    decomp_dist: HashMap<String, Distribution>,
    array_decomp: HashMap<String, String>,
    geocols: HashMap<String, chaos_geocol::GeoCoL>,
    distfmts: HashMap<String, Distribution>,
    cache: HashMap<String, CachedLoop>,
    report: ExecReport,

    // --- fault recovery (see ARCHITECTURE.md § "Fault model & recovery") ---
    policy: RecoveryPolicy,
    /// Checkpoint cadence in machine epochs; 0 disables checkpointing.
    checkpoint_every: u64,
    checkpoint: Option<Box<ExecSnapshot>>,
    /// FORALLs executed since the checkpoint, in order — rollback restores
    /// the checkpoint and replays these (deterministically, since consumed
    /// faults never refire) before re-running the failed loop.
    journal: Vec<LoopPlan>,
    /// REAL/INTEGER arrays written since the last checkpoint refresh: only
    /// these are re-copied (values-only, allocation-free in steady state)
    /// and only their words are charged.
    dirty: HashSet<String>,
    /// A directive changed distributions/alignments since the checkpoint:
    /// the next refresh must re-clone everything, not just dirty values.
    structural_change: bool,
}

impl Executor<Machine> {
    /// Create an executor over a fresh machine (sequential engine).
    pub fn new(config: MachineConfig, inputs: ProgramInputs) -> Self {
        Self::with_backend(Machine::new(config), inputs)
    }
}

impl Executor<ThreadedBackend> {
    /// Create an executor whose runtime phases run rank-parallel, one OS
    /// thread per virtual processor.
    pub fn new_threaded(config: MachineConfig, inputs: ProgramInputs) -> Self {
        Self::with_backend(ThreadedBackend::from_config(config), inputs)
    }
}

impl Executor<PooledBackend> {
    /// Create an executor whose runtime phases run rank-parallel on a pool
    /// of long-lived workers (ranks striped over `min(nprocs, cores)`
    /// lanes) — the low-per-phase-overhead engine, byte-identical to the
    /// other two. Kernel sweeps, gathers, scatters, inspector passes and
    /// REDISTRIBUTE all execute through the pool.
    pub fn new_pooled(config: MachineConfig, inputs: ProgramInputs) -> Self {
        Self::with_backend(PooledBackend::from_config(config), inputs)
    }

    /// [`Executor::new_pooled`] with an explicit worker count (which may
    /// exceed the rank or core count; results never depend on it).
    pub fn new_pooled_with_workers(
        config: MachineConfig,
        workers: usize,
        inputs: ProgramInputs,
    ) -> Self {
        Self::with_backend(
            PooledBackend::from_config_with_workers(config, workers),
            inputs,
        )
    }

    /// Arm the pool's barrier deadline: a worker lane that fails to arrive
    /// within `deadline` (e.g. an injected [`chaos_dmsim::FaultKind::LaneStall`])
    /// surfaces as [`chaos_dmsim::PhaseError::Straggler`] naming the hung
    /// rank, its lane and each lane's progress, instead of blocking silently.
    pub fn with_barrier_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.backend.set_barrier_deadline(deadline);
        self
    }
}

impl<B: Backend> Executor<B> {
    /// Create an executor over an explicit SPMD execution engine.
    pub fn with_backend(backend: B, inputs: ProgramInputs) -> Self {
        Executor {
            backend,
            registry: ReuseRegistry::new(),
            kernels: KernelCache::new(),
            kernel_mode: KernelMode::default(),
            merge_schedules: true,
            incremental_schedules: true,
            phase_fusion: true,
            inputs,
            reuse_enabled: true,
            iter_policy: IterPartitionPolicy::AlmostOwnerComputes,
            real: HashMap::new(),
            int: HashMap::new(),
            decomp_dist: HashMap::new(),
            array_decomp: HashMap::new(),
            geocols: HashMap::new(),
            distfmts: HashMap::new(),
            cache: HashMap::new(),
            report: ExecReport::default(),
            policy: RecoveryPolicy::default(),
            checkpoint_every: 0,
            checkpoint: None,
            journal: Vec::new(),
            dirty: HashSet::new(),
            structural_change: false,
        }
    }

    /// Enable or disable the schedule-reuse mechanism (Table 1 compares the
    /// two). Disabling it forces a full inspector before every sweep.
    pub fn with_reuse(mut self, enabled: bool) -> Self {
        self.reuse_enabled = enabled;
        self
    }

    /// Override the iteration-partitioning policy (default:
    /// almost-owner-computes).
    pub fn with_iteration_policy(mut self, policy: IterPartitionPolicy) -> Self {
        self.iter_policy = policy;
        self
    }

    /// Select how loop bodies execute (default: compiled to bytecode). The
    /// interpreted mode is the retained tree-walking oracle; both modes
    /// produce byte-identical values, clocks and statistics.
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Enable or disable sweep phase fusion (default: enabled). Fused,
    /// every executor sweep runs gather → compute → scatter as a *single*
    /// backend region — one epoch, one engine release, one completion
    /// barrier — instead of one region per phase. Values, virtual clocks
    /// and communication statistics are byte-identical either way (only
    /// epoch counts differ, which shifts `(epoch, rank)` fault
    /// coordinates); disabling is the escape hatch and the baseline arm of
    /// the fusion benchmark gate.
    pub fn with_phase_fusion(mut self, enabled: bool) -> Self {
        self.phase_fusion = enabled;
        self
    }

    /// Enable or disable PARTI schedule merging (default: enabled). When a
    /// FORALL's decomposition groups share one distribution, their
    /// schedules are merged and the inspector issues a single request
    /// exchange instead of one per schedule.
    pub fn with_schedule_merging(mut self, enabled: bool) -> Self {
        self.merge_schedules = enabled;
        self
    }

    /// Enable or disable cross-loop incremental schedules (default:
    /// enabled). Incremental, each FORALL's schedule is bound into the
    /// shared resident ghost region of its distribution: the inspector
    /// requests only the ghosts earlier loops didn't already fetch (one
    /// tagged-offset exchange folds groups over *different* distributions
    /// when schedule merging is also on), and steady-state sweeps gather
    /// only that difference whenever the resident chunks are still fresh
    /// for the read array. Values, virtual clocks and communication
    /// statistics stay byte-identical to the non-incremental build for
    /// single-group loops; disabling is the escape hatch that restores
    /// per-loop self-contained schedules (and the explicit union-merging
    /// counted by `schedule_merges`).
    pub fn with_incremental_schedules(mut self, enabled: bool) -> Self {
        self.incremental_schedules = enabled;
        self
    }

    /// Install a deterministic [`FaultPlan`] on the machine: every engine
    /// consults it at each per-rank kernel entry, and FORALL execution is
    /// guarded so failures surface as [`LangError::Phase`] (or are recovered
    /// per the [`RecoveryPolicy`]).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.backend.machine_mut().install_fault_plan(Some(plan));
        self
    }

    /// Install a [`TraceSink`] flight recorder on the machine: every engine
    /// records span events (epoch boundaries, kernel enter/exit, pool
    /// release/arrival, stage-barrier waits, replays, checkpoint refreshes,
    /// fault firings, recovery attempts) stamped with both measured wall
    /// time and the modeled clock. Tracing never changes modeled clocks,
    /// values or statistics; with no sink installed the hooks are a single
    /// branch. Share the `Arc` to read the timeline afterwards — see
    /// [`TraceSink::chrome_trace_json`] and [`TraceSink::summary`].
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.backend.machine_mut().install_trace(Some(sink));
        self
    }

    /// Install a [`MetricsRegistry`] on the machine: every engine feeds it
    /// from the same hook points the flight recorder uses — epoch counts,
    /// per-lane kernel/combine/replay span histograms, barrier waits, pack
    /// volume, checkpoint refreshes, fault firings and recovery attempts —
    /// and the machine's phase-kind transitions feed the cost-model auditor
    /// (modeled-vs-wall drift per [`PhaseKind`]). Metering never changes
    /// modeled clocks, values or statistics; with no registry installed the
    /// hooks are a single branch. Share the `Arc` and call
    /// [`MetricsRegistry::snapshot`] / [`MetricsRegistry::audit_report`]
    /// once the pool is quiescent.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.backend.machine_mut().install_metrics(Some(registry));
        self
    }

    /// Select what happens when a FORALL phase fails (default:
    /// [`RecoveryPolicy::Abort`]). Selecting
    /// [`RecoveryPolicy::RollbackToCheckpoint`] enables epoch checkpointing
    /// at the default cadence if [`Executor::with_checkpoint_every`] was not
    /// called.
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        if matches!(policy, RecoveryPolicy::RollbackToCheckpoint) && self.checkpoint_every == 0 {
            self.checkpoint_every = DEFAULT_CHECKPOINT_EVERY;
        }
        self
    }

    /// Checkpoint the execution state every `epochs` machine epochs (0
    /// disables checkpointing). A checkpoint copies the machine's clocks /
    /// statistics and the program's arrays (values-only for arrays dirtied
    /// since the previous checkpoint) and charges the modeled scan cost
    /// through [`chaos_runtime::charge_checkpoint`].
    pub fn with_checkpoint_every(mut self, epochs: u64) -> Self {
        self.checkpoint_every = epochs;
        self
    }

    /// The simulated machine (clocks, statistics).
    pub fn machine(&self) -> &Machine {
        self.backend.machine()
    }

    /// Mutable access to the machine (the bench harness uses this to tag
    /// phase kinds around directive groups).
    pub fn machine_mut(&mut self) -> &mut Machine {
        self.backend.machine_mut()
    }

    /// Execution counters.
    pub fn report(&self) -> &ExecReport {
        &self.report
    }

    /// The reuse registry (for inspecting hit/miss counts).
    pub fn registry(&self) -> &ReuseRegistry {
        &self.registry
    }

    /// Gather a REAL array back to a global vector (verification helper).
    pub fn real_global(&self, name: &str) -> Option<Vec<f64>> {
        self.real.get(name).map(DistArray::to_global)
    }

    /// The current distribution of a decomposition, if distributed.
    pub fn decomposition(&self, name: &str) -> Option<&Distribution> {
        self.decomp_dist.get(name)
    }

    /// Run every statement of the program once, in source order.
    pub fn run(&mut self, program: &CompiledProgram) -> Result<(), LangError> {
        for stmt in program.program.stmts.clone() {
            self.run_stmt(program, &stmt)?;
        }
        Ok(())
    }

    /// Re-execute a single `FORALL` (one executor sweep). Used by the
    /// benchmark harness to run the "100 iterations" of the paper's tables.
    pub fn execute_loop(
        &mut self,
        program: &CompiledProgram,
        label: &str,
    ) -> Result<(), LangError> {
        let plan = program
            .plans
            .get(label)
            .ok_or_else(|| LangError::runtime(format!("no FORALL labelled '{label}'")))?
            .clone();
        self.run_forall_recovered(&plan)
    }

    fn run_stmt(&mut self, program: &CompiledProgram, stmt: &Stmt) -> Result<(), LangError> {
        if let Stmt::Forall { label, .. } = stmt {
            let plan = program.plans[label].clone();
            return self.run_forall_recovered(&plan);
        }
        let result = match stmt {
            Stmt::Declare { .. } | Stmt::Decomposition { .. } => return Ok(()),
            Stmt::Distribute { decomp, format } => self.run_distribute(program, decomp, format),
            Stmt::Align { arrays, decomp } => self.run_align(program, arrays, decomp),
            Stmt::ReadData { arrays } => self.run_read_data(arrays),
            Stmt::Construct {
                name,
                nvertices,
                sections,
            } => self.run_construct(name, nvertices, sections),
            Stmt::SetPartition {
                distfmt,
                geocol,
                partitioner,
            } => self.run_set_partition(distfmt, geocol, partitioner),
            Stmt::Redistribute { decomp, distfmt } => self.run_redistribute(decomp, distfmt),
            Stmt::Forall { .. } => unreachable!("handled above"),
        };
        // Directives change distributions, alignments or array storage, so
        // the journal's only-FORALLs-since-checkpoint invariant would break:
        // force a full checkpoint refresh right after any of them.
        if result.is_ok() && self.checkpoint_every > 0 {
            self.structural_change = true;
            self.refresh_checkpoint();
        }
        result
    }

    fn eval_size(&self, size: &SizeExpr) -> Result<usize, LangError> {
        match size {
            SizeExpr::Lit(n) => Ok(*n),
            SizeExpr::Name(name) => self
                .inputs
                .scalars
                .get(name)
                .copied()
                .ok_or_else(|| LangError::runtime(format!("scalar '{name}' was not provided"))),
            SizeExpr::NameMinus(name, k) => {
                let base = self.eval_size(&SizeExpr::Name(name.clone()))?;
                Ok(base.saturating_sub(*k))
            }
        }
    }

    fn run_distribute(
        &mut self,
        program: &CompiledProgram,
        decomp: &str,
        format: &str,
    ) -> Result<(), LangError> {
        let size_expr = program
            .info
            .decomps
            .get(decomp)
            .ok_or_else(|| LangError::runtime(format!("unknown decomposition '{decomp}'")))?
            .clone();
        let n = self.eval_size(&size_expr)?;
        let p = self.backend.nprocs();
        let dist = match format.to_ascii_uppercase().as_str() {
            "BLOCK" => Distribution::block(n, p),
            "CYCLIC" => Distribution::cyclic(n, p),
            _ => {
                // Map-array distribution: the named INTEGER array holds the
                // owning processor of every element (0-based processor ids).
                let map = self
                    .int
                    .get(format)
                    .map(DistArray::to_global)
                    .or_else(|| self.inputs.int_arrays.get(format).cloned())
                    .ok_or_else(|| {
                        LangError::runtime(format!(
                            "DISTRIBUTE format '{format}' is not a known map array"
                        ))
                    })?;
                if map.len() != n {
                    return Err(LangError::runtime(format!(
                        "map array '{format}' has {} entries but decomposition '{decomp}' has {n}",
                        map.len()
                    )));
                }
                Distribution::irregular_from_map(&map, p)
            }
        };
        self.decomp_dist.insert(decomp.to_string(), dist);
        Ok(())
    }

    fn run_align(
        &mut self,
        program: &CompiledProgram,
        arrays: &[String],
        decomp: &str,
    ) -> Result<(), LangError> {
        let dist = self.decomp_dist.get(decomp).cloned().ok_or_else(|| {
            LangError::runtime(format!(
                "ALIGN with '{decomp}' before the decomposition was DISTRIBUTEd"
            ))
        })?;
        for name in arrays {
            let ty = program.info.array(name)?.ty;
            self.array_decomp.insert(name.clone(), decomp.to_string());
            match ty {
                ElemType::Real => {
                    self.real
                        .insert(name.clone(), DistArray::new(name, dist.clone()));
                }
                ElemType::Integer => {
                    self.int
                        .insert(name.clone(), DistArray::new(name, dist.clone()));
                }
            }
            self.registry.note_array_write(name);
        }
        Ok(())
    }

    fn run_read_data(&mut self, arrays: &[String]) -> Result<(), LangError> {
        for name in arrays {
            if let Some(arr) = self.real.get_mut(name) {
                let values = self.inputs.real_arrays.get(name).ok_or_else(|| {
                    LangError::runtime(format!("no input data for REAL array '{name}'"))
                })?;
                *arr = DistArray::from_global(name, arr.dist().clone(), values);
            } else if let Some(arr) = self.int.get_mut(name) {
                let values = self.inputs.int_arrays.get(name).ok_or_else(|| {
                    LangError::runtime(format!("no input data for INTEGER array '{name}'"))
                })?;
                *arr = DistArray::from_global(name, arr.dist().clone(), values);
            } else {
                return Err(LangError::runtime(format!(
                    "READ_DATA of array '{name}' before it was ALIGNed"
                )));
            }
            self.registry.note_array_write(name);
        }
        Ok(())
    }

    fn run_construct(
        &mut self,
        name: &str,
        nvertices: &SizeExpr,
        sections: &[ConstructSection],
    ) -> Result<(), LangError> {
        let n = self.eval_size(nvertices)?;
        // Build zero-based endpoint copies for LINK sections (language values
        // are 1-based).
        let mut link_arrays: Option<(DistArray<u32>, DistArray<u32>)> = None;
        let mut geometry_names: Vec<String> = Vec::new();
        let mut load_name: Option<String> = None;
        for s in sections {
            match s {
                ConstructSection::Geometry(axes) => geometry_names = axes.clone(),
                ConstructSection::Load(w) => load_name = Some(w.clone()),
                ConstructSection::Link { list1, list2, .. } => {
                    let to_zero_based =
                        |arr: &DistArray<u32>| -> Result<DistArray<u32>, LangError> {
                            let global: Vec<u32> = arr
                                .to_global()
                                .iter()
                                .map(|&v| v.saturating_sub(1))
                                .collect();
                            Ok(DistArray::from_global(
                                arr.name(),
                                arr.dist().clone(),
                                &global,
                            ))
                        };
                    let a = self.int.get(list1).ok_or_else(|| {
                        LangError::runtime(format!("LINK array '{list1}' not available"))
                    })?;
                    let b = self.int.get(list2).ok_or_else(|| {
                        LangError::runtime(format!("LINK array '{list2}' not available"))
                    })?;
                    link_arrays = Some((to_zero_based(a)?, to_zero_based(b)?));
                }
            }
        }

        let geometry_arrays: Vec<&DistArray<f64>> = geometry_names
            .iter()
            .map(|g| {
                self.real.get(g).ok_or_else(|| {
                    LangError::runtime(format!("GEOMETRY array '{g}' not available"))
                })
            })
            .collect::<Result<_, _>>()?;
        let load_array =
            match &load_name {
                Some(w) => Some(self.real.get(w).ok_or_else(|| {
                    LangError::runtime(format!("LOAD array '{w}' not available"))
                })?),
                None => None,
            };

        let mut spec = GeoColSpec::new(n).with_geometry(geometry_arrays);
        if let Some(l) = load_array {
            spec = spec.with_load(l);
        }
        if let Some((a, b)) = &link_arrays {
            spec = spec.with_link(a, b);
        }
        let geocol = MapperCoupler.construct_geocol(self.backend.machine_mut(), &spec);
        self.geocols.insert(name.to_string(), geocol);
        Ok(())
    }

    fn run_set_partition(
        &mut self,
        distfmt: &str,
        geocol: &str,
        partitioner: &str,
    ) -> Result<(), LangError> {
        let g = self.geocols.get(geocol).ok_or_else(|| {
            LangError::runtime(format!("GeoCoL '{geocol}' has not been CONSTRUCTed"))
        })?;
        let p = partitioner_by_name(partitioner).ok_or_else(|| {
            LangError::runtime(format!(
                "unknown partitioner '{partitioner}' (known: {:?})",
                chaos_geocol::registered_partitioner_names()
            ))
        })?;
        let outcome = MapperCoupler.partition(&mut self.backend, p.as_ref(), g);
        self.distfmts
            .insert(distfmt.to_string(), outcome.distribution);
        Ok(())
    }

    fn run_redistribute(&mut self, decomp: &str, distfmt: &str) -> Result<(), LangError> {
        let new_dist = self.distfmts.get(distfmt).cloned().ok_or_else(|| {
            LangError::runtime(format!("unknown distribution format '{distfmt}'"))
        })?;
        let aligned: Vec<String> = self
            .array_decomp
            .iter()
            .filter(|(_, d)| d.as_str() == decomp)
            .map(|(a, _)| a.clone())
            .collect();
        for name in aligned {
            if let Some(arr) = self.real.get_mut(&name) {
                MapperCoupler.redistribute(&mut self.backend, &mut self.registry, arr, &new_dist);
                self.report.arrays_redistributed += 1;
            } else if let Some(arr) = self.int.get_mut(&name) {
                MapperCoupler.redistribute(&mut self.backend, &mut self.registry, arr, &new_dist);
                self.report.arrays_redistributed += 1;
            }
            // The shards moved: any resident ghost-region values for the
            // array are stale regardless of which distribution they were
            // gathered under.
            self.registry.note_array_write(&name);
        }
        self.decomp_dist.insert(decomp.to_string(), new_dist);
        Ok(())
    }

    // ----- fault recovery ---------------------------------------------------

    /// Clone everything a sweep can touch into a restorable snapshot.
    fn take_snapshot(&self) -> ExecSnapshot {
        ExecSnapshot {
            machine: self.backend.machine().clone(),
            registry: self.registry.clone(),
            kernels: self.kernels.clone(),
            real: self.real.clone(),
            int: self.int.clone(),
            decomp_dist: self.decomp_dist.clone(),
            array_decomp: self.array_decomp.clone(),
            geocols: self.geocols.clone(),
            distfmts: self.distfmts.clone(),
            cache: self.cache.clone(),
            report: self.report.clone(),
        }
    }

    /// Roll the executor (and its machine) back to `snap`. The fault plan's
    /// consumed flags live outside the snapshot (shared `Arc`), so faults
    /// that already fired stay consumed after the restore.
    fn restore_snapshot(&mut self, snap: &ExecSnapshot) {
        *self.backend.machine_mut() = snap.machine.clone();
        self.registry = snap.registry.clone();
        self.kernels = snap.kernels.clone();
        self.real = snap.real.clone();
        self.int = snap.int.clone();
        self.decomp_dist = snap.decomp_dist.clone();
        self.array_decomp = snap.array_decomp.clone();
        self.geocols = snap.geocols.clone();
        self.distfmts = snap.distfmts.clone();
        self.cache = snap.cache.clone();
        self.report = snap.report.clone();
    }

    /// Modeled words each rank scans to copy the dirty (or, on a structural
    /// refresh, all) arrays into the checkpoint.
    fn checkpoint_rank_words(&self, everything: bool) -> Vec<usize> {
        let mut words = vec![0usize; self.backend.nprocs()];
        let include = |name: &str| everything || self.dirty.contains(name);
        for (name, arr) in &self.real {
            if include(name) {
                for (p, w) in words.iter_mut().enumerate() {
                    *w += arr.local(p).len();
                }
            }
        }
        for (name, arr) in &self.int {
            if include(name) {
                for (p, w) in words.iter_mut().enumerate() {
                    *w += arr.local(p).len();
                }
            }
        }
        words
    }

    /// Take (or incrementally refresh) the epoch checkpoint, charging the
    /// modeled scan cost of the words actually copied. Unchanged arrays are
    /// left alone — only dirty shards are re-copied, values-only, reusing
    /// the checkpoint's existing storage.
    fn refresh_checkpoint(&mut self) {
        let full = self.structural_change || self.checkpoint.is_none();
        let rank_words = self.checkpoint_rank_words(full);
        // The refresh is a real SPMD phase: classify it as Checkpoint (not
        // whatever kind the surrounding code had active) so the registry
        // attributes its scan cost to the checkpoint subsystem.
        let prev_kind = self
            .backend
            .machine_mut()
            .set_phase_kind(Some(PhaseKind::Checkpoint));
        charge_checkpoint(&mut self.backend, &rank_words);
        self.backend.machine_mut().set_phase_kind(prev_kind);
        if let Some(t) = self.backend.machine().tracer() {
            t.record_driver(TraceEventKind::CheckpointRefresh, full as u32);
        }
        if let Some(m) = self.backend.machine().metrics() {
            m.incr(None, Counter::CheckpointRefreshes, 1);
        }

        match self.checkpoint.as_deref_mut() {
            Some(ckpt) if !full => {
                for name in &self.dirty {
                    if let (Some(dst), Some(src)) = (ckpt.real.get_mut(name), self.real.get(name)) {
                        dst.copy_values_from(src);
                    }
                    if let (Some(dst), Some(src)) = (ckpt.int.get_mut(name), self.int.get(name)) {
                        dst.copy_values_from(src);
                    }
                }
                ckpt.machine = self.backend.machine().clone();
                ckpt.registry = self.registry.clone();
                ckpt.kernels = self.kernels.clone();
                ckpt.cache = self.cache.clone();
                ckpt.report = self.report.clone();
            }
            _ => self.checkpoint = Some(Box::new(self.take_snapshot())),
        }
        self.journal.clear();
        self.dirty.clear();
        self.structural_change = false;
    }

    /// Refresh the checkpoint if the cadence says one is due.
    fn maybe_checkpoint(&mut self) {
        if self.checkpoint_every == 0 {
            return;
        }
        let due = match &self.checkpoint {
            None => true,
            Some(c) => {
                let (cur, ck) = (self.backend.machine().epoch(), c.machine.epoch());
                // `ck > cur`: the checkpoint was refreshed during an attempt
                // that then failed and was rolled back to a pre-refresh
                // snapshot — redo the refresh (and its modeled charges) so
                // the recovered timeline matches the fault-free one.
                ck > cur || cur - ck >= self.checkpoint_every
            }
        };
        if due {
            self.refresh_checkpoint();
        }
    }

    /// Record a successfully executed FORALL for rollback replay.
    fn note_sweep(&mut self, plan: &LoopPlan) {
        if self.checkpoint_every == 0 {
            return;
        }
        self.journal.push(plan.clone());
        for a in &plan.written_arrays {
            self.dirty.insert(a.clone());
        }
    }

    /// Flight-recorder hook for a failed attempt: record the diagnosis on
    /// the driver ring and freeze the recorder's tail, so every
    /// [`PhaseError`] path leaves the events leading up to the failure
    /// inspectable through [`TraceSink::error_tail`]. A no-op when no sink
    /// is installed.
    fn trace_diagnosed(&self, err: &PhaseError) {
        if let Some(t) = self.backend.machine().tracer() {
            t.record_driver(TraceEventKind::ErrorDiagnosed, err.epoch() as u32);
            t.capture_error_tail();
        }
        if let Some(m) = self.backend.machine().metrics() {
            m.incr(None, Counter::ErrorsDiagnosed, 1);
        }
    }

    /// Run one FORALL attempt with panic containment: a panic (injected or
    /// organic) or a pending flaw (straggler) becomes a typed
    /// [`PhaseError`]. Mirrors `Backend::try_run_*`, but wraps the whole
    /// gather → compute → scatter sweep.
    fn attempt_forall(&mut self, plan: &LoopPlan) -> Result<Result<(), LangError>, PhaseError> {
        let attempt = match catch_unwind(AssertUnwindSafe(|| self.run_forall(plan))) {
            Ok(inner) => match self.backend.take_phase_flaw() {
                Some(flaw) => Err(flaw),
                None => Ok(inner),
            },
            Err(payload) => {
                let _ = self.backend.take_phase_flaw();
                Err(PhaseError::from_payload(
                    self.backend.machine().epoch(),
                    payload,
                ))
            }
        };
        if let Err(flaw) = &attempt {
            self.trace_diagnosed(flaw);
        }
        attempt
    }

    /// Like [`Self::attempt_forall`], but also covers the epoch-checkpoint
    /// refresh: the refresh charges modeled scan cost through the backend
    /// (a real SPMD phase), so an injected fault can fire inside it. A
    /// failure leaves the previous checkpoint and journal intact — the
    /// retry path restores a snapshot and redoes refresh + sweep.
    fn attempt_checkpoint_and_forall(
        &mut self,
        plan: &LoopPlan,
    ) -> Result<Result<(), LangError>, PhaseError> {
        let attempt = match catch_unwind(AssertUnwindSafe(|| {
            self.maybe_checkpoint();
            self.run_forall(plan)
        })) {
            Ok(inner) => match self.backend.take_phase_flaw() {
                Some(flaw) => Err(flaw),
                None => Ok(inner),
            },
            Err(payload) => {
                let _ = self.backend.take_phase_flaw();
                Err(PhaseError::from_payload(
                    self.backend.machine().epoch(),
                    payload,
                ))
            }
        };
        if let Err(flaw) = &attempt {
            self.trace_diagnosed(flaw);
        }
        attempt
    }

    /// Execute a FORALL under the configured recovery policy.
    ///
    /// Recovery is *discard and re-run*: a failed region's charge ledgers
    /// were never replayed onto the machine, and restoring a snapshot
    /// rewinds whatever the driver-side phases did commit, so a recovered
    /// run is bit-identical (values, clock bits, statistics) to a fault-free
    /// run — the property `tests/fault_recovery.rs` and the backend
    /// equivalence proptest check on all three engines.
    fn run_forall_recovered(&mut self, plan: &LoopPlan) -> Result<(), LangError> {
        // Fast path: nothing to guard against and no recovery requested —
        // run unwrapped, exactly as before this subsystem existed.
        let guarded = self.backend.machine().fault_plan().is_some()
            || !matches!(self.policy, RecoveryPolicy::Abort);
        if !guarded {
            self.maybe_checkpoint();
            let result = self.run_forall(plan);
            if result.is_ok() {
                self.note_sweep(plan);
            }
            return result;
        }

        // The pre-sweep snapshot is taken *before* the checkpoint refresh:
        // the refresh charges modeled scan cost through the backend, so a
        // fault can fire inside it too — the attempt below therefore covers
        // checkpoint + sweep, and a retry redoes both from this snapshot.
        let presweep: Option<Box<ExecSnapshot>> = match self.policy {
            RecoveryPolicy::RetryPhase { .. } | RecoveryPolicy::DegradeToMachine => {
                Some(Box::new(self.take_snapshot()))
            }
            _ => None,
        };
        // The checkpoint bookkeeping lives outside ExecSnapshot (the
        // snapshot must not nest a second full copy of the state), so stash
        // it separately: if the attempt's checkpoint refresh succeeds but
        // the sweep then fails, the retry must redo the refresh with the
        // same dirty set to charge the same modeled scan cost.
        let premarks = presweep.as_ref().map(|_| {
            (
                self.journal.clone(),
                self.dirty.clone(),
                self.structural_change,
            )
        });
        let restore_marks = |slf: &mut Self| {
            if let Some((journal, dirty, structural)) = &premarks {
                slf.journal.clone_from(journal);
                slf.dirty.clone_from(dirty);
                slf.structural_change = *structural;
            }
        };

        let mut attempts: u32 = 0;
        loop {
            match self.attempt_checkpoint_and_forall(plan) {
                Ok(inner) => {
                    if inner.is_ok() {
                        self.note_sweep(plan);
                    }
                    return inner;
                }
                Err(flaw) => {
                    attempts += 1;
                    if attempts >= OVERALL_ATTEMPT_CAP {
                        return Err(LangError::phase(flaw));
                    }
                    match self.policy {
                        RecoveryPolicy::Abort => return Err(LangError::phase(flaw)),
                        RecoveryPolicy::RetryPhase {
                            max_attempts,
                            backoff,
                        } => {
                            if attempts > max_attempts {
                                return Err(LangError::phase(flaw));
                            }
                            if !backoff.is_zero() {
                                std::thread::sleep(backoff);
                            }
                            if let Some(t) = self.backend.machine().tracer() {
                                t.record_driver(TraceEventKind::RetryAttempt, attempts);
                            }
                            if let Some(m) = self.backend.machine().metrics() {
                                m.incr(None, Counter::RetryAttempts, 1);
                            }
                            self.restore_snapshot(presweep.as_ref().expect("taken above"));
                            restore_marks(self);
                        }
                        RecoveryPolicy::RollbackToCheckpoint => {
                            let Some(ckpt) = self.checkpoint.take() else {
                                return Err(LangError::phase(flaw));
                            };
                            if let Some(t) = self.backend.machine().tracer() {
                                t.record_driver(TraceEventKind::Rollback, attempts);
                            }
                            if let Some(m) = self.backend.machine().metrics() {
                                m.incr(None, Counter::Rollbacks, 1);
                            }
                            self.restore_snapshot(&ckpt);
                            self.checkpoint = Some(ckpt);
                            // Replay the journal: the loops that ran since
                            // the checkpoint re-execute deterministically
                            // (their faults are consumed). A failure during
                            // replay is not retried further.
                            let journal = std::mem::take(&mut self.journal);
                            let mut replay_err = None;
                            for replayed in &journal {
                                match self.attempt_forall(replayed) {
                                    Ok(Ok(())) => {}
                                    Ok(Err(e)) => {
                                        replay_err = Some(e);
                                        break;
                                    }
                                    Err(f) => {
                                        replay_err = Some(LangError::phase(f));
                                        break;
                                    }
                                }
                            }
                            self.journal = journal;
                            if let Some(e) = replay_err {
                                return Err(e);
                            }
                        }
                        RecoveryPolicy::DegradeToMachine => {
                            if let Some(t) = self.backend.machine().tracer() {
                                t.record_driver(TraceEventKind::Degrade, attempts);
                            }
                            if let Some(m) = self.backend.machine().metrics() {
                                m.incr(None, Counter::Degrades, 1);
                            }
                            self.backend.degrade();
                            self.restore_snapshot(presweep.as_ref().expect("taken above"));
                            restore_marks(self);
                        }
                    }
                }
            }
        }
    }

    // ----- FORALL execution -------------------------------------------------

    fn run_forall(&mut self, plan: &LoopPlan) -> Result<(), LangError> {
        let lo = self.eval_size(&plan.lo)?;
        let hi = self.eval_size(&plan.hi)?;
        let niters = hi.saturating_sub(lo).saturating_add(1);
        if hi < lo {
            return Ok(());
        }

        // Reuse check (Section 3): compare the arrays' current DADs and the
        // indirection arrays' modification stamps with what the last
        // inspector recorded.
        let loop_id = LoopId::new(&plan.label);
        let data_dads: Vec<_> = plan
            .data_arrays
            .iter()
            .map(|a| self.real_dad(a))
            .collect::<Result<_, _>>()?;
        let ind_dads: Vec<_> = plan
            .indirection_arrays
            .iter()
            .map(|a| self.int_dad(a))
            .collect::<Result<_, _>>()?;

        let prev_kind = self
            .backend
            .machine_mut()
            .set_phase_kind(Some(PhaseKind::Inspector));
        let can_reuse = if self.reuse_enabled {
            self.registry
                .check_on_machine(
                    self.backend.machine_mut(),
                    &plan.label,
                    &loop_id,
                    &data_dads,
                    &ind_dads,
                )
                .can_reuse()
                && self.cache.contains_key(&plan.label)
        } else {
            false
        };

        if can_reuse {
            self.report.reuse_hits += 1;
        } else {
            self.run_inspector(plan, lo, niters)?;
            self.registry
                .save_inspector(loop_id, data_dads.clone(), ind_dads.clone());
            // The kernel's bindings were resolved against the previous
            // inspector state: recompile on the next sweep.
            self.kernels.invalidate(loop_id);
        }
        self.backend.machine_mut().set_phase_kind(prev_kind);

        // Executor sweep.
        let prev_kind = self
            .backend
            .machine_mut()
            .set_phase_kind(Some(PhaseKind::Executor));
        self.run_executor(plan)?;
        self.backend.machine_mut().set_phase_kind(prev_kind);

        // The loop (one executed block of code) may have written its LHS
        // arrays: stamp their DADs.
        let written_dads: Vec<_> = plan
            .written_arrays
            .iter()
            .map(|a| self.real_dad(a))
            .collect::<Result<Vec<_>, _>>()?;
        let refs: Vec<&chaos_runtime::Dad> = written_dads.iter().collect();
        self.registry.record_write_block(&refs);
        for a in &plan.written_arrays {
            self.registry.note_array_write(a);
        }

        self.report.loop_sweeps += 1;
        Ok(())
    }

    fn real_dad(&self, name: &str) -> Result<chaos_runtime::Dad, LangError> {
        self.real
            .get(name)
            .map(DistArray::dad)
            .ok_or_else(|| LangError::runtime(format!("REAL array '{name}' not materialized")))
    }

    fn int_dad(&self, name: &str) -> Result<chaos_runtime::Dad, LangError> {
        self.int
            .get(name)
            .map(DistArray::dad)
            .ok_or_else(|| LangError::runtime(format!("INTEGER array '{name}' not materialized")))
    }

    /// Decomposition name of a slot's array.
    fn slot_decomp(&self, slot: &RefSlot) -> Result<String, LangError> {
        self.array_decomp
            .get(&slot.array)
            .cloned()
            .ok_or_else(|| LangError::runtime(format!("array '{}' not ALIGNed", slot.array)))
    }

    /// Run iteration partitioning and the inspector(s) for a loop, caching
    /// the results.
    fn run_inspector(
        &mut self,
        plan: &LoopPlan,
        lo: usize,
        niters: usize,
    ) -> Result<(), LangError> {
        // Snapshot the indirection arrays' global values (1-based) once.
        let mut ind_values: HashMap<String, Vec<u32>> = HashMap::new();
        for ia in &plan.indirection_arrays {
            let arr = self.int.get(ia).ok_or_else(|| {
                LangError::runtime(format!("indirection array '{ia}' not materialized"))
            })?;
            ind_values.insert(ia.clone(), arr.to_global());
            // Reading the indirection array costs one pass over it.
            let words = arr.len() as f64 / self.backend.nprocs() as f64;
            self.backend.machine_mut().charge_compute_all(words);
        }

        // Global reference index of a slot at (1-based) iteration `it`.
        let global_of = |slot: &RefSlot, it: usize| -> Result<usize, LangError> {
            match &slot.index {
                Index::LoopVar => Ok(it - 1),
                Index::Indirect(ia) => {
                    let vals = &ind_values[ia];
                    let v = *vals.get(it - 1).ok_or_else(|| {
                        LangError::runtime(format!(
                            "iteration {it} out of range for indirection array '{ia}'"
                        ))
                    })?;
                    if v == 0 {
                        return Err(LangError::runtime(format!(
                            "indirection array '{ia}' contains 0 at iteration {it} (values are 1-based)"
                        )));
                    }
                    Ok(v as usize - 1)
                }
            }
        };

        // Iteration partitioning (phase B). Partition with respect to the
        // indirectly-referenced data decomposition; regular loops fall back
        // to a block partition of the iteration space.
        let policy = if plan.irregular {
            self.iter_policy
        } else {
            IterPartitionPolicy::BlockOfIterations
        };
        let part_dist = if plan.irregular {
            let decomp = plan
                .slots
                .iter()
                .find(|s| matches!(s.index, Index::Indirect(_)))
                .map(|s| self.slot_decomp(s))
                .transpose()?
                .expect("irregular loop has an indirect slot");
            self.decomp_dist.get(&decomp).cloned().ok_or_else(|| {
                LangError::runtime(format!("decomposition '{decomp}' not distributed"))
            })?
        } else {
            Distribution::block(niters.max(1), self.backend.nprocs())
        };
        let mut iteration_refs: Vec<Vec<u32>> = Vec::with_capacity(niters);
        for it in lo..lo + niters {
            let mut refs = Vec::with_capacity(plan.slots.len());
            for slot in &plan.slots {
                if plan.irregular && slot.index == Index::LoopVar {
                    continue; // iteration-aligned refs do not drive placement
                }
                refs.push(global_of(slot, it)? as u32);
            }
            iteration_refs.push(refs);
        }
        let prev_kind = self
            .backend
            .machine_mut()
            .set_phase_kind(Some(PhaseKind::Inspector));
        let iter_part = chaos_runtime::iterpart::partition_iterations(
            self.backend.machine_mut(),
            &part_dist,
            &iteration_refs,
            policy,
        );
        self.report.iteration_partitions += 1;

        // Group slots by the decomposition of their array and build each
        // group's access pattern.
        let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, slot) in plan.slots.iter().enumerate() {
            groups.entry(self.slot_decomp(slot)?).or_default().push(i);
        }

        let nprocs = self.backend.nprocs();
        struct PendingGroup {
            decomp: String,
            slot_ids: Vec<usize>,
            dist: Distribution,
            pattern: AccessPattern,
        }
        let mut pending: Vec<PendingGroup> = Vec::with_capacity(groups.len());
        for (decomp, slot_ids) in groups {
            let dist = self.decomp_dist.get(&decomp).cloned().ok_or_else(|| {
                LangError::runtime(format!("decomposition '{decomp}' not distributed"))
            })?;
            let mut pattern = AccessPattern::new(nprocs);
            for p in 0..nprocs {
                let refs = &mut pattern.refs[p];
                refs.reserve(iter_part.iters(p).len() * slot_ids.len());
                for &it0 in iter_part.iters(p) {
                    let it = lo + it0 as usize;
                    for &sid in &slot_ids {
                        refs.push(global_of(&plan.slots[sid], it)? as u32);
                    }
                }
            }
            pending.push(PendingGroup {
                decomp,
                slot_ids,
                dist,
                pattern,
            });
        }

        let mut results: Vec<Option<InspectorResult>> = (0..pending.len()).map(|_| None).collect();
        let mut regions: Vec<Option<chaos_runtime::RegionBinding>> =
            (0..pending.len()).map(|_| None).collect();
        if self.incremental_schedules {
            // Incremental cross-loop path: localize every group with its
            // request exchange deferred, bind each schedule into its
            // distribution's shared resident ghost region (computing the
            // difference against the union of ghosts already requested by
            // earlier loops), and exchange only the missing ghosts. With
            // schedule merging on, one tagged-offset exchange folds every
            // group's difference — including groups over *different*
            // distributions — into a single message per processor pair.
            let loop_key = LoopId::new(&plan.label).index() as u32;
            let mut scratch = LocalizeScratch::default();
            for i in 0..pending.len() {
                let g = &pending[i];
                let r = Inspector.localize_deferred_exchange(
                    &mut self.backend,
                    &plan.label,
                    &g.dist,
                    &g.pattern,
                    &mut scratch,
                );
                results[i] = Some(r);
            }
            let mut full_msgs = 0usize;
            let mut full_words = 0usize;
            for i in 0..pending.len() {
                let g = &pending[i];
                let r = results[i].as_ref().expect("localized");
                let sig = chaos_runtime::Dad::of(&g.dist).signature();
                let rb = self.registry.region_bind(sig, loop_key, &r.schedule);
                if rb.diff.total_ghosts() < r.schedule.total_ghosts() {
                    self.report.incremental_bindings += 1;
                }
                full_msgs += r.schedule.message_count();
                full_words += r.schedule.total_ghosts();
                regions[i] = Some(rb);
            }
            let (msgs, words) = if self.merge_schedules {
                let parts: Vec<&chaos_runtime::CommSchedule> = regions
                    .iter()
                    .map(|rb| &rb.as_ref().expect("bound").diff)
                    .collect();
                chaos_runtime::charge_merged_request_exchange(
                    self.backend.machine_mut(),
                    &plan.label,
                    &parts,
                )
            } else {
                let mut msgs = 0usize;
                let mut words = 0usize;
                for rb in regions.iter().flatten() {
                    rb.diff
                        .charge_build_exchange(self.backend.machine_mut(), &plan.label);
                    msgs += rb.diff.message_count();
                    words += rb.diff.total_ghosts();
                }
                (msgs, words)
            };
            if full_msgs > msgs || full_words > words {
                self.backend.machine_mut().note_schedule_savings(
                    SAVED_SCHEDULE_LABEL,
                    full_msgs.saturating_sub(msgs),
                    full_words.saturating_sub(words),
                );
            }
        } else {
            // Cluster groups whose decompositions share one distribution:
            // their schedules are merged (PARTI schedule merging) and the
            // request exchange is issued once for the union instead of once
            // per schedule. Groups over distinct distributions run the
            // classic one-inspector-per-group path unchanged.
            let mut clusters: Vec<Vec<usize>> = Vec::new();
            for i in 0..pending.len() {
                let slot = if self.merge_schedules {
                    clusters
                        .iter_mut()
                        .find(|c| pending[c[0]].dist.same_as(&pending[i].dist))
                } else {
                    None
                };
                match slot {
                    Some(c) => c.push(i),
                    None => clusters.push(vec![i]),
                }
            }

            for cluster in &clusters {
                if cluster.len() == 1 {
                    let g = &pending[cluster[0]];
                    let r = Inspector.localize(&mut self.backend, &plan.label, &g.dist, &g.pattern);
                    results[cluster[0]] = Some(r);
                    continue;
                }
                // Localize every member with its request exchange deferred,
                // then fold the members' schedules into one union schedule
                // (`CommSchedule::merge_union` — the maps-free form of PARTI's
                // schedule merge) and charge a *single* request
                // exchange for it: one combined message per (owner, requester)
                // pair carries every member's offset lists, with shared
                // (owner, offset) entries deduplicated. Executor phases keep
                // the per-group schedules — gathers/scatters are per
                // (group, array), and moving the union ghost set on every
                // steady-state sweep would trade a one-time build saving for
                // recurring executor traffic.
                let mut scratch = LocalizeScratch::default();
                for &i in cluster {
                    let g = &pending[i];
                    let r = Inspector.localize_deferred_exchange(
                        &mut self.backend,
                        &plan.label,
                        &g.dist,
                        &g.pattern,
                        &mut scratch,
                    );
                    results[i] = Some(r);
                }
                let schedule_of = |i: usize| &results[i].as_ref().expect("localized").schedule;
                let mut merged = schedule_of(cluster[0]).clone();
                for &i in &cluster[1..] {
                    merged = merged.merge_union(schedule_of(i));
                    self.report.schedule_merges += 1;
                }
                merged.charge_build_exchange(self.backend.machine_mut(), &plan.label);
            }
        }

        let mut cached_groups: BTreeMap<String, CachedGroup> = BTreeMap::new();
        for ((g, r), region) in pending.into_iter().zip(results).zip(regions) {
            let result = r.expect("every group localized");
            cached_groups.insert(
                g.decomp,
                CachedGroup {
                    slot_ids: g.slot_ids,
                    result,
                    region,
                },
            );
        }
        self.backend.machine_mut().set_phase_kind(prev_kind);

        self.cache.insert(
            plan.label.clone(),
            CachedLoop {
                iter_part,
                groups: cached_groups,
            },
        );
        self.report.inspector_runs += 1;
        Ok(())
    }

    /// One executor sweep of a loop using the cached inspector state.
    ///
    /// The cached state is taken out of the map for the duration of the
    /// sweep (no per-sweep clone of the localized references) and restored
    /// afterwards.
    fn run_executor(&mut self, plan: &LoopPlan) -> Result<(), LangError> {
        let Some(cached) = self.cache.remove(&plan.label) else {
            return Err(LangError::runtime(format!(
                "no inspector state cached for '{}'",
                plan.label
            )));
        };
        let result = self.run_executor_cached(plan, &cached);
        self.cache.insert(plan.label.clone(), cached);
        result
    }

    /// Dispatch the sweep to the compiled-kernel or tree-walking body.
    fn run_executor_cached(
        &mut self,
        plan: &LoopPlan,
        cached: &CachedLoop,
    ) -> Result<(), LangError> {
        match self.kernel_mode {
            KernelMode::Compiled => {
                // Kernel reuse mirrors schedule reuse: the entry was
                // invalidated iff the inspector re-ran.
                let loop_id = LoopId::new(&plan.label);
                let mut entry = match self.kernels.take(loop_id) {
                    Some(e) => {
                        self.report.kernel_reuse_hits += 1;
                        e
                    }
                    None => {
                        let groups = Self::group_specs(cached);
                        let kernel =
                            Arc::new(compile_kernel(plan, &groups).map_err(LangError::runtime)?);
                        let ghost_counts: Vec<Vec<usize>> = cached
                            .groups
                            .values()
                            .map(|g| g.result.ghost_counts.clone())
                            .collect();
                        let buffers = SweepBuffers::for_bindings(&kernel.bindings, &ghost_counts);
                        self.report.kernels_compiled += 1;
                        KernelEntry { kernel, buffers }
                    }
                };
                let kernel = Arc::clone(&entry.kernel);
                let res = self.run_sweep(
                    plan,
                    cached,
                    &kernel.bindings,
                    &mut entry.buffers,
                    |st, area| run_rank(&kernel, st, area),
                );
                self.kernels.put(loop_id, entry);
                res
            }
            KernelMode::Interpreted => {
                // The oracle neither compiles nor caches: bindings and
                // buffers are rebuilt every sweep, and the body walks the
                // expression trees per element.
                let groups = Self::group_specs(cached);
                let bindings = KernelBindings::bind(plan, &groups).map_err(LangError::runtime)?;
                let ghost_counts: Vec<Vec<usize>> = cached
                    .groups
                    .values()
                    .map(|g| g.result.ghost_counts.clone())
                    .collect();
                let mut buffers = SweepBuffers::for_bindings(&bindings, &ghost_counts);
                self.run_sweep(plan, cached, &bindings, &mut buffers, |st, area| {
                    run_rank_interpreted(plan, &bindings, st, area)
                })
            }
        }
    }

    /// The cached inspector layout as the kernel compiler's group specs.
    fn group_specs(cached: &CachedLoop) -> Vec<GroupSpec> {
        cached
            .groups
            .iter()
            .map(|(decomp, g)| GroupSpec {
                decomp: decomp.clone(),
                slot_ids: g.slot_ids.clone(),
            })
            .collect()
    }

    /// The executor sweep shared by both kernel modes: gather every bound
    /// ghost buffer, run the body rank-parallel, then scatter the touched
    /// write buffers — all in the bindings' deterministic order, so the two
    /// modes (and all three engines, fused or not) agree byte-for-byte on
    /// values, clocks and statistics.
    ///
    /// With phase fusion on (default) the whole sweep is *one*
    /// [`Backend::run_sweep`] region: gathers are folded in driver-side via
    /// [`gather_inline`] and the scatters run as the region's pack/combine
    /// stages — one epoch, one engine release. With fusion off each phase
    /// is its own backend region, exactly as the original driver loop.
    fn run_sweep<K>(
        &mut self,
        plan: &LoopPlan,
        cached: &CachedLoop,
        bindings: &KernelBindings,
        bufs: &mut SweepBuffers,
        body: K,
    ) -> Result<(), LangError>
    where
        K: Fn(&mut RankState<'_>, &mut RankSweepArea) + Sync,
    {
        let nprocs = self.backend.nprocs();
        let groups: Vec<&CachedGroup> = cached.groups.values().collect();

        // Every bound array must be materialized before any state is moved.
        for name in bindings.written.iter().chain(&bindings.read_only) {
            if !self.real.contains_key(name) {
                return Err(LangError::runtime(format!(
                    "array '{name}' not materialized"
                )));
            }
        }

        // Gather phase: one gather per bound ghost buffer. Fused, the
        // gathers run driver-side inside the sweep's single epoch; unfused,
        // each is its own backend region.
        //
        // A region-bound buffer (incremental schedules) first swaps the
        // `(distribution, array)` resident region rows in place of its
        // loop-local rows — they are swapped back at the end of the sweep,
        // so resident values persist across loops and sweeps. If every
        // chunk this binding depends on still holds fresh values for the
        // array, only the binding's own difference is gathered (into its
        // chunk); otherwise the loop's full schedule is gathered through
        // the slot re-binding map, refreshing the binding's chunk.
        for (gid, gb) in bindings.ghosts.iter().enumerate() {
            let group = groups[gb.group as usize];
            let result = &group.result;
            let arr = self.real.get(&gb.array).expect("checked above");
            let Some(rb) = &group.region else {
                let rows = bufs.areas.iter_mut().map(|a| &mut a.ghosts[gid]);
                if self.phase_fusion {
                    gather_inline(self.backend.machine_mut(), &result.schedule, arr, rows);
                } else {
                    gather_rows(&mut self.backend, &result.schedule, arr, rows);
                }
                continue;
            };
            let region = self
                .registry
                .region(rb.sig)
                .expect("region bound by the inspector");
            let stamp = self.registry.array_stamp(&gb.array);
            let rv = self.kernels.region_values_mut(rb.sig, &gb.array);
            if rv.era != stamp {
                // The array was written since the region rows were last
                // gathered: every chunk's values are stale for it.
                rv.era = stamp;
                rv.fresh.iter_mut().for_each(|f| *f = false);
            }
            if rv.fresh.len() < region.nchunks() {
                rv.fresh.resize(region.nchunks(), false);
            }
            if rv.rows.len() < nprocs {
                rv.rows.resize_with(nprocs, Vec::new);
            }
            for (p, row) in rv.rows.iter_mut().enumerate() {
                if row.len() < region.size(p) {
                    row.resize(region.size(p), 0.0);
                }
            }
            for (p, area) in bufs.areas.iter_mut().enumerate() {
                std::mem::swap(&mut area.ghosts[gid], &mut rv.rows[p]);
            }
            let deps_fresh = rb.deps.iter().all(|&c| rv.fresh[c as usize]);
            if deps_fresh {
                // Everything outside this binding's own chunk is resident
                // and fresh: fetch only the ghosts earlier loops didn't.
                let rows = bufs.areas.iter_mut().map(|a| &mut a.ghosts[gid]);
                if self.phase_fusion {
                    gather_inline_offset(self.backend.machine_mut(), &rb.diff, arr, &rb.base, rows);
                } else {
                    gather_rows_offset(&mut self.backend, &rb.diff, arr, &rb.base, rows);
                }
                let msgs = result.schedule.message_count() - rb.diff.message_count();
                let words = result.schedule.total_ghosts() - rb.diff.total_ghosts();
                if msgs > 0 || words > 0 {
                    self.backend.machine_mut().note_schedule_savings(
                        SAVED_GATHER_LABEL,
                        msgs,
                        words,
                    );
                }
            } else {
                // A dependency chunk is stale: gather the loop's own full
                // schedule, scattered through the slot re-binding map.
                let rows = bufs.areas.iter_mut().map(|a| &mut a.ghosts[gid]);
                if self.phase_fusion {
                    gather_inline_mapped(
                        self.backend.machine_mut(),
                        &result.schedule,
                        arr,
                        &rb.slot_map,
                        rows,
                    );
                } else {
                    gather_rows_mapped(
                        &mut self.backend,
                        &result.schedule,
                        arr,
                        &rb.slot_map,
                        rows,
                    );
                }
            }
            rv.fresh[rb.chunk as usize] = true;
        }

        // Move the written arrays out of the environment so their shards
        // can be loaned mutably, one per rank, into the compute kernels.
        let mut written: Vec<DistArray<f64>> = bindings
            .written
            .iter()
            .map(|name| self.real.remove(name).expect("checked above"))
            .collect();
        // Write buffer `j` combines into the shard of the array it is bound
        // to — written names are unique, so the position is well-defined.
        let wb_shard: Vec<usize> = bindings
            .write_bufs
            .iter()
            .map(|w| {
                bindings
                    .written
                    .iter()
                    .position(|n| *n == w.array)
                    .expect("write buffer binds a written array")
            })
            .collect();

        {
            let real = &self.real;
            let read_arrays: Vec<&DistArray<f64>> = bindings
                .read_only
                .iter()
                .map(|name| real.get(name).expect("checked above"))
                .collect();
            let mut states: Vec<RankState<'_>> = (0..nprocs)
                .map(|p| RankState {
                    rank: p,
                    iters: cached.iter_part.iters(p),
                    shards: Vec::with_capacity(written.len()),
                    read_shards: read_arrays.iter().map(|a| a.local(p)).collect(),
                    localized: groups
                        .iter()
                        .map(|g| g.result.localized[p].as_slice())
                        .collect(),
                    ghost_maps: bindings
                        .ghosts
                        .iter()
                        .map(|gb| {
                            groups[gb.group as usize]
                                .region
                                .as_ref()
                                .map(|rb| rb.slot_map[p].as_slice())
                        })
                        .collect(),
                })
                .collect();
            for arr in written.iter_mut() {
                for (p, shard) in arr.par_shards_mut().enumerate() {
                    states[p].shards.push(shard);
                }
            }

            let ops_per_iteration = plan.ops_per_iteration;
            if self.phase_fusion {
                // One region for the rest of the sweep: compute plus every
                // scatter's pack/combine, with one epoch and one release.
                self.backend.run_sweep(
                    &mut states,
                    &mut bufs.areas,
                    |ctx, st: &mut RankState<'_>, area: &mut RankSweepArea| {
                        let iters = st.iters.len();
                        body(st, area);
                        ctx.charge_compute(ctx.rank(), iters as f64 * ops_per_iteration);
                    },
                    bindings.write_bufs.len(),
                    |areas: &[RankSweepArea], j| areas.iter().any(|a| a.touched[j]),
                    |ctx, j| {
                        let binding = &bindings.write_bufs[j];
                        scatter_pack_kernel(ctx, &groups[binding.group as usize].result.schedule);
                    },
                    |ctx, j, st: &mut RankState<'_>, areas: &[RankSweepArea]| {
                        let binding = &bindings.write_bufs[j];
                        let kind = binding.kind;
                        scatter_combine_rows(
                            ctx,
                            &groups[binding.group as usize].result.schedule,
                            |p| areas[p].contrib[j].as_slice(),
                            &mut st.shards[wb_shard[j]][..],
                            &|a, b| kind.apply(a, b),
                        );
                    },
                );
            } else {
                // Compute phase: the body runs rank-parallel; each rank
                // charges its own iterations' arithmetic.
                let paired: Vec<(RankState<'_>, &mut RankSweepArea)> =
                    states.into_iter().zip(bufs.areas.iter_mut()).collect();
                self.backend.run_compute(
                    paired,
                    |ctx, (mut st, area): (RankState<'_>, &mut RankSweepArea)| {
                        let iters = st.iters.len();
                        body(&mut st, area);
                        ctx.charge_compute(ctx.rank(), iters as f64 * ops_per_iteration);
                    },
                );
            }
        }

        for (name, arr) in bindings.written.iter().zip(written) {
            self.real.insert(name.clone(), arr);
        }

        // Scatter phase (unfused only — fused sweeps ran the scatters
        // inside the single region): touched write buffers only (untouched
        // buffers carry nothing but identities — the lazily-created buffers
        // of the original driver loop never existed), in binding order.
        if !self.phase_fusion {
            for (wb, binding) in bindings.write_bufs.iter().enumerate() {
                if !bufs.areas.iter().any(|a| a.touched[wb]) {
                    continue;
                }
                let result = &groups[binding.group as usize].result;
                let arr = self
                    .real
                    .get_mut(&binding.array)
                    .expect("written array restored above");
                let areas = &bufs.areas;
                scatter_reduce_rows(
                    &mut self.backend,
                    &result.schedule,
                    arr,
                    |p| areas[p].contrib[wb].as_slice(),
                    binding.kind,
                );
            }
        }

        // Park the resident region rows back in the kernel cache (the
        // reverse of the gather-phase swap) so their values persist for the
        // next loop over the same distribution.
        for (gid, gb) in bindings.ghosts.iter().enumerate() {
            let Some(rb) = &groups[gb.group as usize].region else {
                continue;
            };
            let rv = self.kernels.region_values_mut(rb.sig, &gb.array);
            for (p, area) in bufs.areas.iter_mut().enumerate() {
                std::mem::swap(&mut area.ghosts[gid], &mut rv.rows[p]);
            }
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    /// The edge-flux intrinsic (the arithmetic lives with the kernel VM
    /// now; this alias keeps the sequential references readable).
    use crate::kernel::eflux as chaos_workloads_eflux;
    use crate::lower::lower_program;
    use crate::parser::parse_program;

    const EDGE_PROGRAM: &str = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        CALL READ_DATA(x, y, end_pt1, end_pt2)
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#;

    /// A small chain mesh: node i connects to node i+1 (1-based values).
    /// Note nedge = nnode - 1 so that the node and edge decompositions have
    /// *different* DADs; with equal sizes the conservative DAD-based write
    /// tracking would (correctly, but unhelpfully for this test) invalidate
    /// the schedule every sweep because y shares a DAD with the endpoint
    /// arrays.
    fn ring_inputs(nnode: usize) -> ProgramInputs {
        let nedge = nnode - 1;
        let e1: Vec<u32> = (1..nnode as u32).collect();
        let e2: Vec<u32> = (2..=nnode as u32).collect();
        let x: Vec<f64> = (0..nnode).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        ProgramInputs::new()
            .scalar("nnode", nnode)
            .scalar("nedge", nedge)
            .real("x", x)
            .real("y", vec![0.0; nnode])
            .int("end_pt1", e1)
            .int("end_pt2", e2)
    }

    /// Sequential reference for the edge loop.
    fn reference_y(inputs: &ProgramInputs) -> Vec<f64> {
        let x = &inputs.real_arrays["x"];
        let e1 = &inputs.int_arrays["end_pt1"];
        let e2 = &inputs.int_arrays["end_pt2"];
        let mut y = inputs.real_arrays["y"].clone();
        for i in 0..e1.len() {
            let a = e1[i] as usize - 1;
            let b = e2[i] as usize - 1;
            let (f1, f2) = chaos_workloads_eflux(x[a], x[b]);
            y[a] += f1;
            y[b] += f2;
        }
        y
    }

    fn compiled() -> CompiledProgram {
        lower_program(parse_program(EDGE_PROGRAM).unwrap()).unwrap()
    }

    #[test]
    fn edge_loop_matches_sequential_reference() {
        let inputs = ring_inputs(40);
        let expected = reference_y(&inputs);
        let cp = compiled();
        let mut exec = Executor::new(MachineConfig::ipsc860(4), inputs);
        exec.run(&cp).unwrap();
        let y = exec.real_global("y").unwrap();
        for (i, (a, b)) in y.iter().zip(&expected).enumerate() {
            assert!((a - b).abs() < 1e-10, "y[{i}]: {a} vs {b}");
        }
        assert_eq!(exec.report().loop_sweeps, 1);
        assert_eq!(exec.report().inspector_runs, 1);
    }

    #[test]
    fn threaded_backend_runs_whole_programs_bit_identically() {
        // The same program on the sequential and the rank-parallel engines:
        // identical values, identical modeled clocks, identical statistics.
        let inputs = random_inputs(300, 1200);
        let cp = compiled();
        let mut seq = Executor::new(MachineConfig::ipsc860(4), inputs.clone());
        let mut thr = Executor::new_threaded(MachineConfig::ipsc860(4), inputs);
        seq.run(&cp).unwrap();
        thr.run(&cp).unwrap();
        for _ in 0..3 {
            seq.execute_loop(&cp, "L1").unwrap();
            thr.execute_loop(&cp, "L1").unwrap();
        }
        let ys = seq.real_global("y").unwrap();
        let yt = thr.real_global("y").unwrap();
        for (i, (a, b)) in ys.iter().zip(&yt).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "y[{i}] diverged: {a} vs {b}");
        }
        assert_eq!(seq.report(), thr.report());
        let (es, et) = (seq.machine().elapsed(), thr.machine().elapsed());
        for p in 0..4 {
            assert_eq!(es.per_proc[p].to_bits(), et.per_proc[p].to_bits());
        }
        let (ss, st) = (
            seq.machine().stats().grand_totals(),
            thr.machine().stats().grand_totals(),
        );
        assert_eq!(ss.messages, st.messages);
        assert_eq!(ss.bytes, st.bytes);
        assert_eq!(ss.phases, st.phases);
        assert_eq!(ss.comm_seconds.to_bits(), st.comm_seconds.to_bits());
    }

    #[test]
    fn pooled_backend_runs_whole_programs_bit_identically() {
        // The same program on the sequential engine and the persistent
        // worker pool (with ranks deliberately striped over fewer lanes):
        // identical values, identical modeled clocks, identical statistics.
        let inputs = random_inputs(300, 1200);
        let cp = compiled();
        let mut seq = Executor::new(MachineConfig::ipsc860(4), inputs.clone());
        let mut pool = Executor::new_pooled_with_workers(MachineConfig::ipsc860(4), 3, inputs);
        seq.run(&cp).unwrap();
        pool.run(&cp).unwrap();
        for _ in 0..3 {
            seq.execute_loop(&cp, "L1").unwrap();
            pool.execute_loop(&cp, "L1").unwrap();
        }
        let ys = seq.real_global("y").unwrap();
        let yp = pool.real_global("y").unwrap();
        for (i, (a, b)) in ys.iter().zip(&yp).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "y[{i}] diverged: {a} vs {b}");
        }
        assert_eq!(seq.report(), pool.report());
        let (es, ep) = (seq.machine().elapsed(), pool.machine().elapsed());
        for p in 0..4 {
            assert_eq!(es.per_proc[p].to_bits(), ep.per_proc[p].to_bits());
        }
        let (ss, sp) = (
            seq.machine().stats().grand_totals(),
            pool.machine().stats().grand_totals(),
        );
        assert_eq!(ss.messages, sp.messages);
        assert_eq!(ss.bytes, sp.bytes);
        assert_eq!(ss.phases, sp.phases);
        assert_eq!(ss.comm_seconds.to_bits(), sp.comm_seconds.to_bits());
    }

    #[test]
    fn repartition_phases_run_rank_parallel_and_bit_identically() {
        // The MAPPED_PROGRAM's CONSTRUCT → SET ... BY PARTITIONING (RSB) →
        // REDISTRIBUTE preamble routes the partitioner's scans and the
        // remap through the backend: the whole program must agree across
        // Machine, ThreadedBackend and PooledBackend — values, modeled
        // clocks and statistics, bit for bit — including the partitioner
        // phase itself.
        let inputs = ring_inputs(64);
        let cp = lower_program(parse_program(MAPPED_PROGRAM).unwrap()).unwrap();
        let mut seq = Executor::new(MachineConfig::ipsc860(4), inputs.clone());
        let mut thr = Executor::new_threaded(MachineConfig::ipsc860(4), inputs.clone());
        let mut pool = Executor::new_pooled_with_workers(MachineConfig::ipsc860(4), 3, inputs);
        seq.run(&cp).unwrap();
        thr.run(&cp).unwrap();
        pool.run(&cp).unwrap();
        for _ in 0..2 {
            seq.execute_loop(&cp, "L1").unwrap();
            thr.execute_loop(&cp, "L1").unwrap();
            pool.execute_loop(&cp, "L1").unwrap();
        }
        // The node decomposition really was repartitioned (irregular now).
        assert_eq!(seq.decomposition("reg").unwrap().kind_name(), "IRREGULAR");
        let ys = seq.real_global("y").unwrap();
        for other in [
            &thr.real_global("y").unwrap(),
            &pool.real_global("y").unwrap(),
        ] {
            for (i, (a, b)) in ys.iter().zip(other.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "y[{i}] diverged: {a} vs {b}");
            }
        }
        let es = seq.machine().elapsed();
        for elapsed in [thr.machine().elapsed(), pool.machine().elapsed()] {
            for p in 0..4 {
                assert_eq!(es.per_proc[p].to_bits(), elapsed.per_proc[p].to_bits());
            }
        }
        let ss = seq.machine().stats().grand_totals();
        for stats in [
            thr.machine().stats().grand_totals(),
            pool.machine().stats().grand_totals(),
        ] {
            assert_eq!(ss.messages, stats.messages);
            assert_eq!(ss.bytes, stats.bytes);
            assert_eq!(ss.phases, stats.phases);
            assert_eq!(ss.comm_seconds.to_bits(), stats.comm_seconds.to_bits());
        }
        assert_eq!(seq.report(), thr.report());
        assert_eq!(seq.report(), pool.report());
    }

    #[test]
    fn repeated_sweeps_reuse_the_schedule() {
        let inputs = ring_inputs(32);
        let cp = compiled();
        let mut exec = Executor::new(MachineConfig::ipsc860(4), inputs);
        exec.run(&cp).unwrap();
        for _ in 0..5 {
            exec.execute_loop(&cp, "L1").unwrap();
        }
        assert_eq!(exec.report().loop_sweeps, 6);
        assert_eq!(exec.report().inspector_runs, 1, "inspector runs once");
        assert_eq!(exec.report().reuse_hits, 5);
    }

    #[test]
    fn disabling_reuse_reruns_the_inspector_every_sweep() {
        let inputs = ring_inputs(32);
        let cp = compiled();
        let mut exec = Executor::new(MachineConfig::ipsc860(4), inputs).with_reuse(false);
        exec.run(&cp).unwrap();
        for _ in 0..4 {
            exec.execute_loop(&cp, "L1").unwrap();
        }
        assert_eq!(exec.report().inspector_runs, 5);
        assert_eq!(exec.report().reuse_hits, 0);
    }

    /// Inputs with randomly connected edges, so the inspector has real work
    /// to do (many off-processor references): this is where schedule reuse
    /// pays off, as in the paper's meshes.
    fn random_inputs(nnode: usize, nedge: usize) -> ProgramInputs {
        let mut state = 0xC4A05u64;
        let mut next = |m: usize| -> u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize % m) as u32 + 1
        };
        let mut e1 = Vec::with_capacity(nedge);
        let mut e2 = Vec::with_capacity(nedge);
        for _ in 0..nedge {
            let a = next(nnode);
            let mut b = next(nnode);
            if b == a {
                b = a % nnode as u32 + 1;
            }
            e1.push(a);
            e2.push(b);
        }
        let x: Vec<f64> = (0..nnode).map(|i| (i as f64 * 0.3).cos() + 2.0).collect();
        ProgramInputs::new()
            .scalar("nnode", nnode)
            .scalar("nedge", nedge)
            .real("x", x)
            .real("y", vec![0.0; nnode])
            .int("end_pt1", e1)
            .int("end_pt2", e2)
    }

    #[test]
    fn reuse_makes_sweeps_cheaper() {
        // Pin incremental schedules off: this test measures the classic
        // reuse mechanism, and incremental re-binding would otherwise slash
        // the no-reuse arm's re-inspection cost (empty difference
        // exchanges, fully-resident gathers) — a genuine saving, but not
        // the one under test.
        let inputs = random_inputs(400, 1600);
        let cp = compiled();

        let mut with = Executor::new(MachineConfig::ipsc860(4), inputs.clone())
            .with_incremental_schedules(false);
        with.run(&cp).unwrap();
        let start = with.machine().elapsed();
        for _ in 0..10 {
            with.execute_loop(&cp, "L1").unwrap();
        }
        let with_time = with.machine().elapsed().since(&start).max_seconds();

        let mut without = Executor::new(MachineConfig::ipsc860(4), inputs)
            .with_reuse(false)
            .with_incremental_schedules(false);
        without.run(&cp).unwrap();
        let start = without.machine().elapsed();
        for _ in 0..10 {
            without.execute_loop(&cp, "L1").unwrap();
        }
        let without_time = without.machine().elapsed().since(&start).max_seconds();

        // Under a BLOCK distribution the inspector is comparatively cheap
        // (index translation is local arithmetic), so the advantage is
        // modest here; the paper-scale factors appear once the data is
        // irregularly distributed (see the Table 1 bench and the integration
        // tests).
        assert!(
            without_time > 1.2 * with_time,
            "no-reuse ({without_time}) should be above reuse ({with_time})"
        );
    }

    #[test]
    fn results_identical_with_and_without_reuse() {
        let inputs = ring_inputs(48);
        let cp = compiled();
        let mut a = Executor::new(MachineConfig::ipsc860(4), inputs.clone());
        let mut b = Executor::new(MachineConfig::ipsc860(4), inputs).with_reuse(false);
        a.run(&cp).unwrap();
        b.run(&cp).unwrap();
        for _ in 0..3 {
            a.execute_loop(&cp, "L1").unwrap();
            b.execute_loop(&cp, "L1").unwrap();
        }
        let ya = a.real_global("y").unwrap();
        let yb = b.real_global("y").unwrap();
        for (u, v) in ya.iter().zip(&yb) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    const MAPPED_PROGRAM: &str = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        CALL READ_DATA(x, y, end_pt1, end_pt2)
C$      CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$      SET distfmt BY PARTITIONING G USING RSB
C$      REDISTRIBUTE reg(distfmt)
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#;

    #[test]
    fn figure4_program_with_implicit_mapping_runs_and_matches_reference() {
        let inputs = ring_inputs(40);
        let expected = reference_y(&inputs);
        let cp = lower_program(parse_program(MAPPED_PROGRAM).unwrap()).unwrap();
        let mut exec = Executor::new(MachineConfig::ipsc860(4), inputs);
        exec.run(&cp).unwrap();
        assert!(exec.report().arrays_redistributed >= 2, "x and y remapped");
        let y = exec.real_global("y").unwrap();
        for (a, b) in y.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-10);
        }
        // After redistribution the node decomposition is irregular.
        assert_eq!(exec.decomposition("reg").unwrap().kind_name(), "IRREGULAR");
    }

    #[test]
    fn redistribute_invalidates_previous_schedules() {
        // Run the loop under BLOCK, then CONSTRUCT/SET/REDISTRIBUTE, then run
        // again: the inspector must re-run because x and y changed DADs.
        let src = r#"
            REAL*8 x(nnode), y(nnode)
            INTEGER end_pt1(nedge), end_pt2(nedge)
            DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
            DISTRIBUTE reg(BLOCK)
            DISTRIBUTE reg2(BLOCK)
            ALIGN x, y WITH reg
            ALIGN end_pt1, end_pt2 WITH reg2
            CALL READ_DATA(x, y, end_pt1, end_pt2)
            FORALL i = 1, nedge
              REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
              REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
            END FORALL
C$          CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$          SET distfmt BY PARTITIONING G USING RCB2D
C$          REDISTRIBUTE reg(distfmt)
        "#
        .replace("RCB2D", "RSB");
        let cp = lower_program(parse_program(&src).unwrap()).unwrap();
        let mut exec = Executor::new(MachineConfig::ipsc860(4), ring_inputs(32));
        exec.run(&cp).unwrap();
        assert_eq!(exec.report().inspector_runs, 1);
        // Re-run the loop after the remap: must re-inspect, then reuse again.
        exec.execute_loop(&cp, "L1").unwrap();
        assert_eq!(exec.report().inspector_runs, 2);
        exec.execute_loop(&cp, "L1").unwrap();
        assert_eq!(exec.report().inspector_runs, 2);
        assert_eq!(exec.report().reuse_hits, 1);
    }

    #[test]
    fn regular_loop_executes_without_indirection() {
        let src = r#"
            REAL*8 x(n), y(n)
            DECOMPOSITION reg(n)
            DISTRIBUTE reg(BLOCK)
            ALIGN x, y WITH reg
            CALL READ_DATA(x, y)
            FORALL i = 1, n
              y(i) = x(i) * 2.0 + 1.0
            END FORALL
        "#;
        let cp = lower_program(parse_program(src).unwrap()).unwrap();
        let inputs = ProgramInputs::new()
            .scalar("n", 10)
            .real("x", (0..10).map(|i| i as f64).collect())
            .real("y", vec![0.0; 10]);
        let mut exec = Executor::new(MachineConfig::ipsc860(2), inputs);
        exec.run(&cp).unwrap();
        let y = exec.real_global("y").unwrap();
        assert_eq!(y, (0..10).map(|i| i as f64 * 2.0 + 1.0).collect::<Vec<_>>());
    }

    #[test]
    fn missing_scalar_is_a_runtime_error() {
        let cp = compiled();
        let mut exec = Executor::new(MachineConfig::ipsc860(2), ProgramInputs::new());
        let err = exec.run(&cp).unwrap_err();
        assert!(err.to_string().contains("was not provided"));
    }

    #[test]
    fn unknown_partitioner_is_reported() {
        let src = r#"
            REAL*8 x(n)
            INTEGER e1(m), e2(m)
            DECOMPOSITION reg(n), reg2(m)
            DISTRIBUTE reg(BLOCK)
            DISTRIBUTE reg2(BLOCK)
            ALIGN x WITH reg
            ALIGN e1, e2 WITH reg2
            CALL READ_DATA(e1, e2)
C$          CONSTRUCT G (n, LINK(m, e1, e2))
C$          SET fmt BY PARTITIONING G USING METIS
        "#;
        let cp = lower_program(parse_program(src).unwrap()).unwrap();
        let inputs = ProgramInputs::new()
            .scalar("n", 8)
            .scalar("m", 4)
            .int("e1", vec![1, 2, 3, 4])
            .int("e2", vec![5, 6, 7, 8]);
        let mut exec = Executor::new(MachineConfig::ipsc860(2), inputs);
        let err = exec.run(&cp).unwrap_err();
        assert!(err.to_string().contains("unknown partitioner"));
    }
}
