//! Lexer and recursive-descent parser for the mini-language.
//!
//! The syntax follows the paper's figures closely. It is line-oriented:
//! every top-level statement lives on one line, except `FORALL ... END
//! FORALL` which encloses body lines. Keywords are case-insensitive.
//! Comment lines start with `C `, `c `, or `!`; the paper's directive prefix
//! `C$` is stripped so Figures 4 and 5 parse as written.

use crate::ast::*;
use crate::error::LangError;

/// Parse a whole program from source text.
pub fn parse_program(source: &str) -> Result<Program, LangError> {
    let mut stmts = Vec::new();
    let mut lines = source.lines().enumerate().peekable();
    let mut loop_counter = 0usize;

    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let Some(line) = significant(raw) else {
            continue;
        };
        let mut toks = Lexer::new(&line, lineno)?;

        let first = toks.peek_word().unwrap_or_default();
        match first.as_str() {
            "REAL" | "REAL*8" | "INTEGER" => {
                let ty = if first.starts_with("REAL") {
                    ElemType::Real
                } else {
                    ElemType::Integer
                };
                toks.next_word()?;
                let arrays = parse_decl_list(&mut toks)?;
                stmts.push(Stmt::Declare { ty, arrays });
            }
            "DYNAMIC" | "DECOMPOSITION" => {
                let mut dynamic = false;
                if first == "DYNAMIC" {
                    dynamic = true;
                    toks.next_word()?;
                    toks.eat_punct_opt(',');
                    toks.expect_word("DECOMPOSITION")?;
                } else {
                    toks.next_word()?;
                }
                let decomps = parse_decl_list(&mut toks)?;
                stmts.push(Stmt::Decomposition { decomps, dynamic });
            }
            "DISTRIBUTE" => {
                toks.next_word()?;
                let decomp = toks.next_ident()?;
                toks.expect_punct('(')?;
                let format = toks.next_ident()?;
                toks.expect_punct(')')?;
                stmts.push(Stmt::Distribute { decomp, format });
            }
            "ALIGN" => {
                toks.next_word()?;
                let mut arrays = vec![toks.next_ident()?];
                while toks.eat_punct_opt(',') {
                    arrays.push(toks.next_ident()?);
                }
                toks.expect_word("WITH")?;
                let decomp = toks.next_ident()?;
                stmts.push(Stmt::Align { arrays, decomp });
            }
            "CALL" | "READ_DATA" => {
                if first == "CALL" {
                    toks.next_word()?;
                }
                toks.expect_word("READ_DATA")?;
                toks.expect_punct('(')?;
                let mut arrays = vec![toks.next_ident()?];
                while toks.eat_punct_opt(',') {
                    arrays.push(toks.next_ident()?);
                }
                toks.expect_punct(')')?;
                stmts.push(Stmt::ReadData { arrays });
            }
            "CONSTRUCT" => {
                toks.next_word()?;
                let name = toks.next_ident()?;
                toks.expect_punct('(')?;
                let nvertices = parse_size(&mut toks)?;
                let mut sections = Vec::new();
                while toks.eat_punct_opt(',') {
                    sections.push(parse_section(&mut toks)?);
                }
                toks.expect_punct(')')?;
                stmts.push(Stmt::Construct {
                    name,
                    nvertices,
                    sections,
                });
            }
            "SET" => {
                toks.next_word()?;
                let distfmt = toks.next_ident()?;
                toks.expect_word("BY")?;
                toks.expect_word("PARTITIONING")?;
                let geocol = toks.next_ident()?;
                toks.expect_word("USING")?;
                let partitioner = toks.next_ident()?;
                stmts.push(Stmt::SetPartition {
                    distfmt,
                    geocol,
                    partitioner,
                });
            }
            "REDISTRIBUTE" => {
                toks.next_word()?;
                let decomp = toks.next_ident()?;
                toks.expect_punct('(')?;
                let distfmt = toks.next_ident()?;
                toks.expect_punct(')')?;
                stmts.push(Stmt::Redistribute { decomp, distfmt });
            }
            "FORALL" => {
                toks.next_word()?;
                let var = toks.next_ident()?;
                toks.expect_punct('=')?;
                let lo = parse_size(&mut toks)?;
                toks.expect_punct(',')?;
                let hi = parse_size(&mut toks)?;
                loop_counter += 1;
                let label = format!("L{loop_counter}");
                let mut body = Vec::new();
                loop {
                    let Some((bidx, braw)) = lines.next() else {
                        return Err(LangError::parse(lineno, "FORALL without END FORALL"));
                    };
                    let blineno = bidx + 1;
                    let Some(bline) = significant(braw) else {
                        continue;
                    };
                    let upper = bline.to_ascii_uppercase();
                    if upper.starts_with("END FORALL") || upper.trim() == "ENDFORALL" {
                        break;
                    }
                    let mut btoks = Lexer::new(&bline, blineno)?;
                    body.push(parse_loop_stmt(&mut btoks)?);
                }
                stmts.push(Stmt::Forall {
                    label,
                    var,
                    lo,
                    hi,
                    body,
                });
            }
            other => {
                return Err(LangError::parse(
                    lineno,
                    format!("unrecognized statement starting with '{other}'"),
                ));
            }
        }
    }

    Ok(Program { stmts })
}

/// Strip comments and the `C$` directive prefix; return `None` for blank /
/// comment-only lines.
fn significant(raw: &str) -> Option<String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    let upper = trimmed.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("C$") {
        let body = &trimmed[trimmed.len() - rest.trim_start().len()..];
        return Some(body.to_string());
    }
    if upper.starts_with('!') || upper.starts_with("C ") || upper == "C" {
        return None;
    }
    Some(trimmed.to_string())
}

fn parse_decl_list(toks: &mut Lexer) -> Result<Vec<(String, SizeExpr)>, LangError> {
    let mut out = Vec::new();
    loop {
        let name = toks.next_ident()?;
        toks.expect_punct('(')?;
        let size = parse_size(toks)?;
        toks.expect_punct(')')?;
        out.push((name, size));
        if !toks.eat_punct_opt(',') {
            break;
        }
    }
    Ok(out)
}

fn parse_size(toks: &mut Lexer) -> Result<SizeExpr, LangError> {
    if let Some(n) = toks.eat_number_opt() {
        return Ok(SizeExpr::Lit(n as usize));
    }
    let name = toks.next_ident()?;
    if toks.eat_punct_opt('-') {
        let n = toks
            .eat_number_opt()
            .ok_or_else(|| toks.error("expected literal after '-' in size expression"))?;
        return Ok(SizeExpr::NameMinus(name, n as usize));
    }
    Ok(SizeExpr::Name(name))
}

fn parse_section(toks: &mut Lexer) -> Result<ConstructSection, LangError> {
    let kw = toks.next_word()?;
    match kw.as_str() {
        "GEOMETRY" => {
            toks.expect_punct('(')?;
            // First argument is the dimensionality; we infer it from the
            // coordinate list, so just consume it.
            let _dim = parse_size(toks)?;
            let mut axes = Vec::new();
            while toks.eat_punct_opt(',') {
                axes.push(toks.next_ident()?);
            }
            toks.expect_punct(')')?;
            Ok(ConstructSection::Geometry(axes))
        }
        "LOAD" => {
            toks.expect_punct('(')?;
            let weight = toks.next_ident()?;
            toks.expect_punct(')')?;
            Ok(ConstructSection::Load(weight))
        }
        "LINK" => {
            toks.expect_punct('(')?;
            let count = parse_size(toks)?;
            toks.expect_punct(',')?;
            let list1 = toks.next_ident()?;
            toks.expect_punct(',')?;
            let list2 = toks.next_ident()?;
            toks.expect_punct(')')?;
            Ok(ConstructSection::Link {
                count,
                list1,
                list2,
            })
        }
        other => Err(toks.error(format!("unknown CONSTRUCT section '{other}'"))),
    }
}

fn parse_loop_stmt(toks: &mut Lexer) -> Result<LoopStmt, LangError> {
    if toks.peek_word().as_deref() == Some("REDUCE") {
        toks.next_word()?;
        toks.expect_punct('(')?;
        let opname = toks.next_word()?;
        let op = match opname.as_str() {
            "ADD" | "SUM" => ReduceOp::Add,
            "MAX" => ReduceOp::Max,
            "MIN" => ReduceOp::Min,
            other => return Err(toks.error(format!("unknown reduction operator '{other}'"))),
        };
        toks.expect_punct(',')?;
        let target = parse_array_ref(toks)?;
        toks.expect_punct(',')?;
        let value = parse_expr(toks)?;
        toks.expect_punct(')')?;
        Ok(LoopStmt::Reduce { op, target, value })
    } else {
        let target = parse_array_ref(toks)?;
        toks.expect_punct('=')?;
        let value = parse_expr(toks)?;
        Ok(LoopStmt::Assign { target, value })
    }
}

fn parse_array_ref(toks: &mut Lexer) -> Result<ArrayRef, LangError> {
    let array = toks.next_ident()?;
    toks.expect_punct('(')?;
    let inner = toks.next_ident()?;
    let index = if toks.eat_punct_opt('(') {
        let var = toks.next_ident()?;
        toks.expect_punct(')')?;
        // inner(var): inner is the indirection array; var must be the loop
        // variable (checked later by the analyzer).
        let _ = var;
        Index::Indirect(inner)
    } else {
        Index::LoopVar
    };
    toks.expect_punct(')')?;
    Ok(ArrayRef { array, index })
}

fn parse_expr(toks: &mut Lexer) -> Result<Expr, LangError> {
    let mut lhs = parse_term(toks)?;
    loop {
        let op = if toks.eat_punct_opt('+') {
            '+'
        } else if toks.eat_punct_opt('-') {
            '-'
        } else {
            break;
        };
        let rhs = parse_term(toks)?;
        lhs = Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        };
    }
    Ok(lhs)
}

fn parse_term(toks: &mut Lexer) -> Result<Expr, LangError> {
    let mut lhs = parse_primary(toks)?;
    loop {
        let op = if toks.eat_punct_opt('*') {
            '*'
        } else if toks.eat_punct_opt('/') {
            '/'
        } else {
            break;
        };
        let rhs = parse_primary(toks)?;
        lhs = Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        };
    }
    Ok(lhs)
}

fn parse_primary(toks: &mut Lexer) -> Result<Expr, LangError> {
    if toks.eat_punct_opt('(') {
        let e = parse_expr(toks)?;
        toks.expect_punct(')')?;
        return Ok(e);
    }
    if let Some(n) = toks.eat_number_opt() {
        return Ok(Expr::Lit(n));
    }
    // Identifier: intrinsic call or array reference.
    let name = toks
        .peek_word()
        .ok_or_else(|| toks.error("expected expression"))?;
    let intrinsic = match name.as_str() {
        "EFLUX1" => Some(Intrinsic::Eflux1),
        "EFLUX2" => Some(Intrinsic::Eflux2),
        "SQRT" => Some(Intrinsic::Sqrt),
        "ABS" => Some(Intrinsic::Abs),
        _ => None,
    };
    if let Some(intrinsic) = intrinsic {
        toks.next_word()?;
        toks.expect_punct('(')?;
        let mut args = vec![parse_expr(toks)?];
        while toks.eat_punct_opt(',') {
            args.push(parse_expr(toks)?);
        }
        toks.expect_punct(')')?;
        return Ok(Expr::Call { intrinsic, args });
    }
    Ok(Expr::Ref(parse_array_ref(toks)?))
}

/// A trivial token stream over one source line.
struct Lexer {
    tokens: Vec<Token>,
    pos: usize,
    line: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Number(f64),
    Punct(char),
}

impl Lexer {
    fn new(line: &str, lineno: usize) -> Result<Self, LangError> {
        let mut tokens = Vec::new();
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    i += 1;
                }
                let mut word: String = chars[start..i].iter().collect();
                // Allow REAL*8 as a single keyword.
                if word.eq_ignore_ascii_case("REAL") && i + 1 < chars.len() && chars[i] == '*' {
                    let mut j = i + 1;
                    while j < chars.len() && chars[j].is_ascii_digit() {
                        j += 1;
                    }
                    if j > i + 1 {
                        word = format!("{word}*{}", chars[i + 1..j].iter().collect::<String>());
                        i = j;
                    }
                }
                tokens.push(Token::Word(word.to_ascii_uppercase()));
            } else if c.is_ascii_digit()
                || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
            {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value: f64 = text
                    .parse()
                    .map_err(|_| LangError::parse(lineno, format!("bad number '{text}'")))?;
                tokens.push(Token::Number(value));
            } else {
                tokens.push(Token::Punct(c));
                i += 1;
            }
        }
        Ok(Lexer {
            tokens,
            pos: 0,
            line: lineno,
        })
    }

    fn error(&self, message: impl Into<String>) -> LangError {
        LangError::parse(self.line, message)
    }

    fn peek_word(&self) -> Option<String> {
        match self.tokens.get(self.pos) {
            Some(Token::Word(w)) => Some(w.clone()),
            _ => None,
        }
    }

    fn next_word(&mut self) -> Result<String, LangError> {
        match self.tokens.get(self.pos).cloned() {
            Some(Token::Word(w)) => {
                self.pos += 1;
                Ok(w)
            }
            other => Err(self.error(format!("expected a keyword, found {other:?}"))),
        }
    }

    fn next_ident(&mut self) -> Result<String, LangError> {
        self.next_word().map(|w| w.to_ascii_lowercase())
    }

    fn expect_word(&mut self, word: &str) -> Result<(), LangError> {
        let w = self.next_word()?;
        if w == word {
            Ok(())
        } else {
            Err(self.error(format!("expected '{word}', found '{w}'")))
        }
    }

    fn expect_punct(&mut self, p: char) -> Result<(), LangError> {
        if self.eat_punct_opt(p) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{p}', found {:?}",
                self.tokens.get(self.pos)
            )))
        }
    }

    fn eat_punct_opt(&mut self, p: char) -> bool {
        if matches!(self.tokens.get(self.pos), Some(Token::Punct(c)) if *c == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_number_opt(&mut self) -> Option<f64> {
        if let Some(Token::Number(n)) = self.tokens.get(self.pos) {
            let n = *n;
            self.pos += 1;
            Some(n)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 4 program, lightly adapted (READ_DATA call form).
    pub const FIGURE4: &str = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        CALL READ_DATA(end_pt1, end_pt2)
C$      CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$      SET distfmt BY PARTITIONING G USING RSB
C$      REDISTRIBUTE reg(distfmt)
C Loop over edges involving x, y
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#;

    #[test]
    fn parses_figure4() {
        let p = parse_program(FIGURE4).expect("figure 4 should parse");
        assert_eq!(p.stmts.len(), 12);
        assert_eq!(p.loop_labels(), vec!["L1"]);
        // Spot-check a few statements.
        assert!(
            matches!(&p.stmts[0], Stmt::Declare { ty: ElemType::Real, arrays } if arrays.len() == 2)
        );
        assert!(
            matches!(&p.stmts[2], Stmt::Decomposition { dynamic: true, decomps } if decomps.len() == 2)
        );
        match &p.stmts[8] {
            Stmt::Construct { name, sections, .. } => {
                assert_eq!(name, "g");
                assert!(
                    matches!(&sections[0], ConstructSection::Link { list1, list2, .. }
                    if list1 == "end_pt1" && list2 == "end_pt2")
                );
            }
            other => panic!("expected CONSTRUCT, got {other:?}"),
        }
        match &p.stmts[9] {
            Stmt::SetPartition {
                distfmt,
                geocol,
                partitioner,
            } => {
                assert_eq!(distfmt, "distfmt");
                assert_eq!(geocol, "g");
                assert_eq!(partitioner, "rsb");
            }
            other => panic!("expected SET, got {other:?}"),
        }
        match &p.stmts[11] {
            Stmt::Forall { body, var, .. } => {
                assert_eq!(var, "i");
                assert_eq!(body.len(), 2);
                assert!(
                    matches!(&body[0], LoopStmt::Reduce { op: ReduceOp::Add, target, .. }
                    if target.array == "y" && target.index == Index::Indirect("end_pt1".into()))
                );
            }
            other => panic!("expected FORALL, got {other:?}"),
        }
    }

    #[test]
    fn parses_geometry_construct() {
        let src = r#"
            REAL*8 xc(n), yc(n), zc(n)
C$          CONSTRUCT G (n, GEOMETRY(3, xc, yc, zc))
C$          SET fmt BY PARTITIONING G USING RCB
        "#;
        let p = parse_program(src).unwrap();
        match &p.stmts[1] {
            Stmt::Construct { sections, .. } => {
                assert_eq!(
                    sections,
                    &[ConstructSection::Geometry(vec![
                        "xc".into(),
                        "yc".into(),
                        "zc".into()
                    ])]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_assignment_and_arithmetic() {
        let src = "FORALL i = 1, n\n y(ia(i)) = x(ib(i)) * 2.0 + x(ic(i)) / 4\nEND FORALL";
        let p = parse_program(src).unwrap();
        match &p.stmts[0] {
            Stmt::Forall { body, .. } => match &body[0] {
                LoopStmt::Assign { target, value } => {
                    assert_eq!(target.index, Index::Indirect("ia".into()));
                    assert!(matches!(value, Expr::Binary { op: '+', .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_direct_loop_index() {
        let src = "FORALL i = 1, n\n y(i) = x(i) + 1\nEND FORALL";
        let p = parse_program(src).unwrap();
        match &p.stmts[0] {
            Stmt::Forall { body, .. } => match &body[0] {
                LoopStmt::Assign { target, .. } => assert_eq!(target.index, Index::LoopVar),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reports_unterminated_forall() {
        let err = parse_program("FORALL i = 1, n\n y(i) = 1").unwrap_err();
        assert!(err.to_string().contains("END FORALL"));
    }

    #[test]
    fn reports_unknown_statement() {
        let err = parse_program("FROBNICATE x").unwrap_err();
        assert!(matches!(err, LangError::Parse { line: 1, .. }));
    }

    #[test]
    fn load_section_and_size_arithmetic() {
        let src = "C$ CONSTRUCT G2 (nnode - 1, LOAD(weight))";
        let p = parse_program(src).unwrap();
        match &p.stmts[0] {
            Stmt::Construct {
                nvertices,
                sections,
                ..
            } => {
                assert_eq!(nvertices, &SizeExpr::NameMinus("nnode".into(), 1));
                assert_eq!(sections, &[ConstructSection::Load("weight".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comment_lines_are_skipped() {
        let p = parse_program("C this is a comment\n! another\n\nREAL x(n)").unwrap();
        assert_eq!(p.stmts.len(), 1);
    }
}
