//! Runtime compilation: lowering `FORALL` loops to inspector/executor plans.
//!
//! This is the transformation sketched in the paper's Figure 6: for every
//! irregular loop the compiler emits (a) code that builds the loop's access
//! pattern from its indirection arrays, (b) a guarded inspector call (the
//! guard is the schedule-reuse check of Section 3), and (c) an executor that
//! runs gather → local compute → scatter-reduction. Here the "emitted code"
//! is a [`LoopPlan`]: a compact, pre-resolved form of the loop body in which
//! every distinct array reference has been assigned a *slot*, so the
//! executor's inner loop does no name lookups.

use crate::analyze::{analyze_program, ProgramInfo};
use crate::ast::*;
use crate::error::LangError;
use std::collections::BTreeMap;

/// One distinct array reference form appearing in a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefSlot {
    /// The data array referenced.
    pub array: String,
    /// How it is indexed.
    pub index: Index,
}

/// A loop-body expression with array references resolved to slot ids.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// Literal.
    Lit(f64),
    /// Value of slot `.0` at the current iteration.
    Slot(usize),
    /// Binary arithmetic.
    Binary {
        /// Operator char (`+ - * /`).
        op: char,
        /// Left operand.
        lhs: Box<CompiledExpr>,
        /// Right operand.
        rhs: Box<CompiledExpr>,
    },
    /// Intrinsic call.
    Call {
        /// The intrinsic.
        intrinsic: Intrinsic,
        /// Arguments.
        args: Vec<CompiledExpr>,
    },
}

/// A loop-body statement with references resolved to slots.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledStmt {
    /// `slot := expr`.
    Assign {
        /// Target slot.
        target: usize,
        /// Value.
        value: CompiledExpr,
    },
    /// `slot op= expr`.
    Reduce {
        /// Reduction operator.
        op: ReduceOp,
        /// Target slot.
        target: usize,
        /// Contribution.
        value: CompiledExpr,
    },
}

/// The lowered form of one `FORALL` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopPlan {
    /// Loop label (also the schedule-reuse loop id).
    pub label: String,
    /// Loop lower bound (1-based inclusive).
    pub lo: SizeExpr,
    /// Loop upper bound (1-based inclusive).
    pub hi: SizeExpr,
    /// Distinct reference slots in first-appearance order.
    pub slots: Vec<RefSlot>,
    /// Compiled body.
    pub stmts: Vec<CompiledStmt>,
    /// REAL data arrays referenced (sorted).
    pub data_arrays: Vec<String>,
    /// REAL data arrays written (sorted).
    pub written_arrays: Vec<String>,
    /// INTEGER indirection arrays (sorted).
    pub indirection_arrays: Vec<String>,
    /// True when the loop contains at least one indirect reference.
    pub irregular: bool,
    /// Estimated compute units per iteration (charged to the machine by the
    /// executor): a few units per slot access plus per arithmetic node.
    pub ops_per_iteration: f64,
}

impl CompiledStmt {
    /// The slot the statement writes.
    pub fn target(&self) -> usize {
        match self {
            CompiledStmt::Assign { target, .. } | CompiledStmt::Reduce { target, .. } => *target,
        }
    }

    /// The statement's value expression.
    pub fn value(&self) -> &CompiledExpr {
        match self {
            CompiledStmt::Assign { value, .. } | CompiledStmt::Reduce { value, .. } => value,
        }
    }

    /// How off-processor writes of this statement combine at the owner: an
    /// assignment is a last-writer-wins store, a reduction maps to its
    /// operator.
    pub fn scatter_kind(&self) -> chaos_runtime::ScatterKind {
        use chaos_runtime::ScatterKind;
        match self {
            CompiledStmt::Assign { .. } => ScatterKind::Store,
            CompiledStmt::Reduce { op, .. } => match op {
                ReduceOp::Add => ScatterKind::Add,
                ReduceOp::Max => ScatterKind::Max,
                ReduceOp::Min => ScatterKind::Min,
            },
        }
    }
}

/// True when `slot` appears anywhere inside `e`.
fn expr_uses(e: &CompiledExpr, slot: usize) -> bool {
    match e {
        CompiledExpr::Lit(_) => false,
        CompiledExpr::Slot(s) => *s == slot,
        CompiledExpr::Binary { lhs, rhs, .. } => expr_uses(lhs, slot) || expr_uses(rhs, slot),
        CompiledExpr::Call { args, .. } => args.iter().any(|a| expr_uses(a, slot)),
    }
}

impl LoopPlan {
    /// `mask[slot]` is true when the slot is *read* — it appears in some
    /// statement's value expression (as opposed to write-only targets).
    /// Read slots are the ones whose arrays the executor must gather.
    pub fn read_slot_mask(&self) -> Vec<bool> {
        (0..self.slots.len())
            .map(|i| self.stmts.iter().any(|s| expr_uses(s.value(), i)))
            .collect()
    }

    /// Which slots are written by the body.
    pub fn written_slots(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self
            .stmts
            .iter()
            .map(|s| match s {
                CompiledStmt::Assign { target, .. } | CompiledStmt::Reduce { target, .. } => {
                    *target
                }
            })
            .collect();
        w.sort_unstable();
        w.dedup();
        w
    }
}

/// A lowered program: the original statements (directives are interpreted
/// directly) plus one [`LoopPlan`] per `FORALL`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The parsed program.
    pub program: Program,
    /// Analysis results.
    pub info: ProgramInfo,
    /// Plans keyed by loop label.
    pub plans: BTreeMap<String, LoopPlan>,
}

/// Analyse and lower a parsed program.
pub fn lower_program(program: Program) -> Result<CompiledProgram, LangError> {
    let info = analyze_program(&program)?;
    let mut plans = BTreeMap::new();
    for stmt in &program.stmts {
        if let Stmt::Forall {
            label,
            lo,
            hi,
            body,
            ..
        } = stmt
        {
            let loop_info = info
                .loop_info(label)
                .expect("analysis produced info for every loop");
            let plan = lower_loop(label, lo.clone(), hi.clone(), body, loop_info)?;
            plans.insert(label.clone(), plan);
        }
    }
    Ok(CompiledProgram {
        program,
        info,
        plans,
    })
}

fn lower_loop(
    label: &str,
    lo: SizeExpr,
    hi: SizeExpr,
    body: &[LoopStmt],
    loop_info: &crate::analyze::LoopInfo,
) -> Result<LoopPlan, LangError> {
    let mut slots: Vec<RefSlot> = Vec::new();
    let mut slot_of = |r: &ArrayRef, slots: &mut Vec<RefSlot>| -> usize {
        let key = RefSlot {
            array: r.array.clone(),
            index: r.index.clone(),
        };
        if let Some(i) = slots.iter().position(|s| *s == key) {
            i
        } else {
            slots.push(key);
            slots.len() - 1
        }
    };

    fn lower_expr(
        e: &Expr,
        slots: &mut Vec<RefSlot>,
        slot_of: &mut impl FnMut(&ArrayRef, &mut Vec<RefSlot>) -> usize,
        ops: &mut f64,
    ) -> CompiledExpr {
        match e {
            Expr::Lit(v) => CompiledExpr::Lit(*v),
            Expr::Ref(r) => {
                *ops += 2.0;
                CompiledExpr::Slot(slot_of(r, slots))
            }
            Expr::Binary { op, lhs, rhs } => {
                *ops += 1.0;
                CompiledExpr::Binary {
                    op: *op,
                    lhs: Box::new(lower_expr(lhs, slots, slot_of, ops)),
                    rhs: Box::new(lower_expr(rhs, slots, slot_of, ops)),
                }
            }
            Expr::Call { intrinsic, args } => {
                *ops += 4.0;
                CompiledExpr::Call {
                    intrinsic: *intrinsic,
                    args: args
                        .iter()
                        .map(|a| lower_expr(a, slots, slot_of, ops))
                        .collect(),
                }
            }
        }
    }

    let mut stmts = Vec::with_capacity(body.len());
    let mut ops_per_iteration = 0.0;
    for s in body {
        match s {
            LoopStmt::Assign { target, value } => {
                let value = lower_expr(value, &mut slots, &mut slot_of, &mut ops_per_iteration);
                let target = slot_of(target, &mut slots);
                ops_per_iteration += 2.0;
                stmts.push(CompiledStmt::Assign { target, value });
            }
            LoopStmt::Reduce { op, target, value } => {
                let value = lower_expr(value, &mut slots, &mut slot_of, &mut ops_per_iteration);
                let target = slot_of(target, &mut slots);
                ops_per_iteration += 3.0;
                stmts.push(CompiledStmt::Reduce {
                    op: *op,
                    target,
                    value,
                });
            }
        }
    }

    Ok(LoopPlan {
        label: label.to_string(),
        lo,
        hi,
        slots,
        stmts,
        data_arrays: loop_info.data_arrays.clone(),
        written_arrays: loop_info.written_arrays.clone(),
        indirection_arrays: loop_info.indirection_arrays.clone(),
        irregular: loop_info.irregular,
        ops_per_iteration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const EDGE_LOOP: &str = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#;

    #[test]
    fn lowering_deduplicates_slots() {
        let cp = lower_program(parse_program(EDGE_LOOP).unwrap()).unwrap();
        let plan = &cp.plans["L1"];
        // Distinct slots: x(end_pt1), x(end_pt2), y(end_pt1), y(end_pt2).
        assert_eq!(plan.slots.len(), 4);
        assert!(plan.irregular);
        assert_eq!(plan.stmts.len(), 2);
        assert_eq!(plan.written_slots().len(), 2);
        assert!(plan.ops_per_iteration > 0.0);
        // The two statements must write *different* slots (y via end_pt1 and
        // y via end_pt2).
        match (&plan.stmts[0], &plan.stmts[1]) {
            (CompiledStmt::Reduce { target: t1, .. }, CompiledStmt::Reduce { target: t2, .. }) => {
                assert_ne!(t1, t2)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn regular_loop_plan_has_loopvar_slots() {
        let src = r#"
            REAL*8 x(n), y(n)
            DECOMPOSITION reg(n)
            DISTRIBUTE reg(BLOCK)
            ALIGN x, y WITH reg
            FORALL i = 1, n
              y(i) = x(i) * 2.0 + 1.0
            END FORALL
        "#;
        let cp = lower_program(parse_program(src).unwrap()).unwrap();
        let plan = &cp.plans["L1"];
        assert!(!plan.irregular);
        assert_eq!(plan.slots.len(), 2);
        assert!(plan.slots.iter().all(|s| s.index == Index::LoopVar));
    }

    #[test]
    fn plans_are_keyed_by_label_in_order() {
        let src = r#"
            REAL*8 x(n), y(n)
            DECOMPOSITION reg(n)
            DISTRIBUTE reg(BLOCK)
            ALIGN x, y WITH reg
            FORALL i = 1, n
              y(i) = x(i)
            END FORALL
            FORALL i = 1, n
              x(i) = y(i)
            END FORALL
        "#;
        let cp = lower_program(parse_program(src).unwrap()).unwrap();
        assert_eq!(cp.plans.len(), 2);
        assert!(cp.plans.contains_key("L1") && cp.plans.contains_key("L2"));
        assert_eq!(cp.plans["L1"].written_arrays, vec!["y"]);
        assert_eq!(cp.plans["L2"].written_arrays, vec!["x"]);
    }

    #[test]
    fn lowering_propagates_semantic_errors() {
        let src = "FORALL i = 1, n\n y(i) = 1.0\nEND FORALL";
        assert!(lower_program(parse_program(src).unwrap()).is_err());
    }
}
