//! Semantic analysis.
//!
//! The analyzer enforces the assumptions the paper states up front
//! (Section 1): irregular accesses appear inside `FORALL` loops, the only
//! loop-carried dependences are left-hand-side reductions, and irregular
//! references use a *single* level of indirection through a distributed
//! integer array indexed directly by the loop variable. It also builds the
//! per-loop reference summary (which arrays are data arrays, which are
//! indirection arrays, which decompositions they live on) that the lowering
//! step and the schedule-reuse guards need.

use crate::ast::*;
use crate::error::LangError;
use std::collections::{BTreeMap, BTreeSet};

/// What is known about one declared array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Element type.
    pub ty: ElemType,
    /// Declared size expression.
    pub size: SizeExpr,
    /// The decomposition the array is aligned with (if any).
    pub decomp: Option<String>,
}

/// Per-`FORALL` reference summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Loop label (schedule-reuse id).
    pub label: String,
    /// REAL arrays referenced in the body (data arrays), sorted.
    pub data_arrays: Vec<String>,
    /// REAL arrays written in the body, sorted.
    pub written_arrays: Vec<String>,
    /// INTEGER indirection arrays used in the body, sorted.
    pub indirection_arrays: Vec<String>,
    /// Decompositions of the data arrays referenced through indirection.
    pub indirect_decomps: Vec<String>,
    /// True when at least one reference is indirect (the loop needs an
    /// inspector).
    pub irregular: bool,
}

/// Result of analysing a program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramInfo {
    /// Declared arrays.
    pub arrays: BTreeMap<String, ArrayInfo>,
    /// Declared decompositions and their size expressions.
    pub decomps: BTreeMap<String, SizeExpr>,
    /// Per-loop summaries in source order.
    pub loops: Vec<LoopInfo>,
}

impl ProgramInfo {
    /// Look up an array, failing with a semantic error if undeclared.
    pub fn array(&self, name: &str) -> Result<&ArrayInfo, LangError> {
        self.arrays
            .get(name)
            .ok_or_else(|| LangError::semantic(format!("array '{name}' is not declared")))
    }

    /// Loop summary by label.
    pub fn loop_info(&self, label: &str) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.label == label)
    }
}

/// Analyse a parsed program.
pub fn analyze_program(program: &Program) -> Result<ProgramInfo, LangError> {
    let mut info = ProgramInfo::default();
    let mut distfmts: BTreeSet<String> = BTreeSet::new();
    let mut geocols: BTreeSet<String> = BTreeSet::new();

    for stmt in &program.stmts {
        match stmt {
            Stmt::Declare { ty, arrays } => {
                for (name, size) in arrays {
                    if info.arrays.contains_key(name) {
                        return Err(LangError::semantic(format!(
                            "array '{name}' declared twice"
                        )));
                    }
                    info.arrays.insert(
                        name.clone(),
                        ArrayInfo {
                            ty: *ty,
                            size: size.clone(),
                            decomp: None,
                        },
                    );
                }
            }
            Stmt::Decomposition { decomps, .. } => {
                for (name, size) in decomps {
                    info.decomps.insert(name.clone(), size.clone());
                }
            }
            Stmt::Distribute { decomp, format } => {
                if !info.decomps.contains_key(decomp) {
                    return Err(LangError::semantic(format!(
                        "DISTRIBUTE references undeclared decomposition '{decomp}'"
                    )));
                }
                let fmt = format.to_ascii_uppercase();
                if fmt != "BLOCK" && fmt != "CYCLIC" && !info.arrays.contains_key(format) {
                    // distributing by a map array / distfmt defined later is
                    // only valid through REDISTRIBUTE; initial DISTRIBUTE
                    // must be regular or reference a declared map array.
                    return Err(LangError::semantic(format!(
                        "DISTRIBUTE format '{format}' is neither BLOCK, CYCLIC nor a declared map array"
                    )));
                }
            }
            Stmt::Align { arrays, decomp } => {
                if !info.decomps.contains_key(decomp) {
                    return Err(LangError::semantic(format!(
                        "ALIGN references undeclared decomposition '{decomp}'"
                    )));
                }
                for a in arrays {
                    let entry = info.arrays.get_mut(a).ok_or_else(|| {
                        LangError::semantic(format!("ALIGN of undeclared array '{a}'"))
                    })?;
                    entry.decomp = Some(decomp.clone());
                }
            }
            Stmt::ReadData { arrays } => {
                for a in arrays {
                    info.array(a)?;
                }
            }
            Stmt::Construct { name, sections, .. } => {
                geocols.insert(name.clone());
                for s in sections {
                    match s {
                        ConstructSection::Geometry(axes) => {
                            for a in axes {
                                let ai = info.array(a)?;
                                if ai.ty != ElemType::Real {
                                    return Err(LangError::semantic(format!(
                                        "GEOMETRY coordinate array '{a}' must be REAL"
                                    )));
                                }
                            }
                        }
                        ConstructSection::Load(w) => {
                            info.array(w)?;
                        }
                        ConstructSection::Link { list1, list2, .. } => {
                            for a in [list1, list2] {
                                let ai = info.array(a)?;
                                if ai.ty != ElemType::Integer {
                                    return Err(LangError::semantic(format!(
                                        "LINK endpoint array '{a}' must be INTEGER"
                                    )));
                                }
                            }
                        }
                    }
                }
            }
            Stmt::SetPartition {
                distfmt, geocol, ..
            } => {
                if !geocols.contains(geocol) {
                    return Err(LangError::semantic(format!(
                        "SET references GeoCoL '{geocol}' before any CONSTRUCT defines it"
                    )));
                }
                distfmts.insert(distfmt.clone());
            }
            Stmt::Redistribute { decomp, distfmt } => {
                if !info.decomps.contains_key(decomp) {
                    return Err(LangError::semantic(format!(
                        "REDISTRIBUTE references undeclared decomposition '{decomp}'"
                    )));
                }
                if !distfmts.contains(distfmt) {
                    return Err(LangError::semantic(format!(
                        "REDISTRIBUTE uses '{distfmt}' before a SET ... BY PARTITIONING defines it"
                    )));
                }
            }
            Stmt::Forall {
                label, var, body, ..
            } => {
                info.loops.push(analyze_loop(&info, label, var, body)?);
            }
        }
    }

    Ok(info)
}

fn analyze_loop(
    info: &ProgramInfo,
    label: &str,
    loop_var: &str,
    body: &[LoopStmt],
) -> Result<LoopInfo, LangError> {
    let mut data_arrays = BTreeSet::new();
    let mut written = BTreeSet::new();
    let mut indirection = BTreeSet::new();
    let mut indirect_decomps = BTreeSet::new();
    let _ = loop_var;

    let mut visit_ref = |r: &ArrayRef, is_write: bool| -> Result<(), LangError> {
        let ai = info.array(&r.array)?;
        if ai.ty != ElemType::Real {
            return Err(LangError::semantic(format!(
                "array '{}' referenced as data in loop {label} must be REAL",
                r.array
            )));
        }
        if ai.decomp.is_none() {
            return Err(LangError::semantic(format!(
                "array '{}' used in loop {label} is not ALIGNed with any decomposition",
                r.array
            )));
        }
        data_arrays.insert(r.array.clone());
        if is_write {
            written.insert(r.array.clone());
        }
        if let Index::Indirect(ind) = &r.index {
            let ii = info.array(ind)?;
            if ii.ty != ElemType::Integer {
                return Err(LangError::semantic(format!(
                    "indirection array '{ind}' in loop {label} must be INTEGER"
                )));
            }
            if ii.decomp.is_none() {
                return Err(LangError::semantic(format!(
                    "indirection array '{ind}' in loop {label} is not ALIGNed"
                )));
            }
            indirection.insert(ind.clone());
            indirect_decomps.insert(ai.decomp.clone().unwrap());
        }
        Ok(())
    };

    fn visit_expr(
        expr: &Expr,
        visit: &mut dyn FnMut(&ArrayRef, bool) -> Result<(), LangError>,
    ) -> Result<(), LangError> {
        match expr {
            Expr::Lit(_) => Ok(()),
            Expr::Ref(r) => visit(r, false),
            Expr::Binary { lhs, rhs, .. } => {
                visit_expr(lhs, visit)?;
                visit_expr(rhs, visit)
            }
            Expr::Call { args, .. } => {
                for a in args {
                    visit_expr(a, visit)?;
                }
                Ok(())
            }
        }
    }

    for stmt in body {
        match stmt {
            LoopStmt::Assign { target, value } | LoopStmt::Reduce { target, value, .. } => {
                visit_ref(target, true)?;
                visit_expr(value, &mut visit_ref)?;
            }
        }
    }

    // All indirectly referenced data arrays must share one decomposition —
    // the restriction under which a single inspector per loop suffices,
    // matching the paper's templates (x and y are aligned to the same
    // decomposition).
    if indirect_decomps.len() > 1 {
        return Err(LangError::semantic(format!(
            "loop {label} indirectly references arrays on different decompositions ({:?}); \
             this reproduction requires them to share one",
            indirect_decomps
        )));
    }

    let irregular = !indirection.is_empty();
    Ok(LoopInfo {
        label: label.to_string(),
        data_arrays: data_arrays.into_iter().collect(),
        written_arrays: written.into_iter().collect(),
        indirection_arrays: indirection.into_iter().collect(),
        indirect_decomps: indirect_decomps.into_iter().collect(),
        irregular,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const EDGE_LOOP: &str = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#;

    #[test]
    fn analyzes_edge_loop() {
        let p = parse_program(EDGE_LOOP).unwrap();
        let info = analyze_program(&p).unwrap();
        assert_eq!(info.arrays.len(), 4);
        assert_eq!(info.decomps.len(), 2);
        let l = info.loop_info("L1").unwrap();
        assert!(l.irregular);
        assert_eq!(l.data_arrays, vec!["x", "y"]);
        assert_eq!(l.written_arrays, vec!["y"]);
        assert_eq!(l.indirection_arrays, vec!["end_pt1", "end_pt2"]);
        assert_eq!(l.indirect_decomps, vec!["reg"]);
        assert_eq!(info.array("x").unwrap().decomp.as_deref(), Some("reg"));
    }

    #[test]
    fn regular_loop_is_not_irregular() {
        let src = r#"
            REAL*8 x(n), y(n)
            DECOMPOSITION reg(n)
            DISTRIBUTE reg(BLOCK)
            ALIGN x, y WITH reg
            FORALL i = 1, n
              y(i) = x(i) * 2.0
            END FORALL
        "#;
        let info = analyze_program(&parse_program(src).unwrap()).unwrap();
        let l = &info.loops[0];
        assert!(!l.irregular);
        assert!(l.indirection_arrays.is_empty());
    }

    #[test]
    fn rejects_undeclared_array_in_loop() {
        let src = "FORALL i = 1, n\n y(i) = 1.0\nEND FORALL";
        let err = analyze_program(&parse_program(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("not declared"));
    }

    #[test]
    fn rejects_unaligned_data_array() {
        let src = r#"
            REAL*8 y(n)
            DECOMPOSITION reg(n)
            FORALL i = 1, n
              y(i) = 1.0
            END FORALL
        "#;
        let err = analyze_program(&parse_program(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("ALIGN"));
    }

    #[test]
    fn rejects_integer_data_array() {
        let src = r#"
            INTEGER y(n)
            DECOMPOSITION reg(n)
            DISTRIBUTE reg(BLOCK)
            ALIGN y WITH reg
            FORALL i = 1, n
              y(i) = 1.0
            END FORALL
        "#;
        let err = analyze_program(&parse_program(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("must be REAL"));
    }

    #[test]
    fn rejects_real_indirection_array() {
        let src = r#"
            REAL*8 x(n), ia(m)
            DECOMPOSITION reg(n), reg2(m)
            DISTRIBUTE reg(BLOCK)
            DISTRIBUTE reg2(BLOCK)
            ALIGN x WITH reg
            ALIGN ia WITH reg2
            FORALL i = 1, m
              x(ia(i)) = 1.0
            END FORALL
        "#;
        let err = analyze_program(&parse_program(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("must be INTEGER"));
    }

    #[test]
    fn rejects_redistribute_before_set() {
        let src = r#"
            REAL*8 x(n)
            DECOMPOSITION reg(n)
            DISTRIBUTE reg(BLOCK)
            ALIGN x WITH reg
            REDISTRIBUTE reg(distfmt)
        "#;
        let err = analyze_program(&parse_program(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("before a SET"));
    }

    #[test]
    fn rejects_mixed_decomposition_indirection() {
        let src = r#"
            REAL*8 x(n), z(m)
            INTEGER ia(k), ib(k)
            DECOMPOSITION reg(n), reg3(m), reg2(k)
            DISTRIBUTE reg(BLOCK)
            DISTRIBUTE reg2(BLOCK)
            DISTRIBUTE reg3(BLOCK)
            ALIGN x WITH reg
            ALIGN z WITH reg3
            ALIGN ia, ib WITH reg2
            FORALL i = 1, k
              REDUCE(ADD, x(ia(i)), z(ib(i)))
            END FORALL
        "#;
        let err = analyze_program(&parse_program(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("different decompositions"));
    }

    #[test]
    fn figure4_construct_sections_are_checked() {
        let src = r#"
            REAL*8 x(nnode)
            INTEGER end_pt1(nedge), end_pt2(nedge)
            DECOMPOSITION reg(nnode), reg2(nedge)
            DISTRIBUTE reg(BLOCK)
            DISTRIBUTE reg2(BLOCK)
            ALIGN x WITH reg
            ALIGN end_pt1, end_pt2 WITH reg2
C$          CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$          SET distfmt BY PARTITIONING G USING RSB
C$          REDISTRIBUTE reg(distfmt)
        "#;
        assert!(analyze_program(&parse_program(src).unwrap()).is_ok());
        // Swapping in a REAL array as a LINK endpoint must fail.
        let bad = src.replace(
            "INTEGER end_pt1(nedge), end_pt2(nedge)",
            "REAL*8 end_pt1(nedge), end_pt2(nedge)",
        );
        let err = analyze_program(&parse_program(&bad).unwrap()).unwrap_err();
        assert!(err.to_string().contains("must be INTEGER"));
    }
}
