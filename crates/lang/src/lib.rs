//! # chaos-lang — a Fortran-D-like data-parallel mini-language with runtime
//! compilation onto the CHAOS runtime
//!
//! The paper's prototype is a Fortran 90D compiler extended with
//!
//! * the Fortran D decomposition directives (`DECOMPOSITION`, `DISTRIBUTE`,
//!   `ALIGN`, `DYNAMIC`),
//! * the new mapper-coupler directives (`CONSTRUCT`, `SET ... BY
//!   PARTITIONING ... USING ...`, `REDISTRIBUTE`), and
//! * irregular `FORALL` loops with single-level indirection and left-hand
//!   side reductions,
//!
//! which it transforms into inspector/executor code that calls the CHAOS
//! runtime, inserting the conservative schedule-reuse guards of Section 3.
//!
//! Re-hosting a Fortran compiler is out of scope, so this crate implements a
//! small language with the same surface constructs (Figures 3–5 of the paper
//! parse almost verbatim) and the same lowering:
//!
//! * [`parser`] — lexer + recursive-descent parser producing the [`ast`],
//! * [`analyze`] — semantic checks (the paper's restrictions: single level of
//!   indirection, indirection arrays indexed by the loop variable, only
//!   reduction-style loop-carried dependences) plus the per-loop reference
//!   analysis that identifies data arrays and indirection arrays,
//! * [`lower`] — the "runtime compilation" step: each `FORALL` becomes a
//!   [`lower::LoopPlan`] describing the inspector it needs and the executor
//!   statements to run,
//! * [`kernel`] — the runtime kernel compiler: FORALL bodies lowered to a
//!   flat register bytecode executed rank-parallel by a small VM, cached per
//!   loop alongside the schedule-reuse records,
//! * [`exec`] — the generated-code driver: walks the lowered program on a
//!   simulated machine, calling the CHAOS mapper coupler for directives and
//!   the inspector/executor (guarded by the [`chaos_runtime::ReuseRegistry`])
//!   for loops, with loop bodies dispatched to the compiled kernels (or the
//!   retained tree-walking oracle).
//!
//! The benchmark harness runs the same templates twice — once through this
//! crate ("compiler-generated") and once hand-coded directly against
//! `chaos-runtime` — to reproduce the paper's "within 10 % of hand-coded"
//! claim (Table 2). `ARCHITECTURE.md` § "The kernel-compiler pipeline"
//! documents the bytecode path end-to-end.

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod error;
pub mod exec;
pub mod kernel;
pub mod lower;
pub mod parser;

pub use analyze::analyze_program;
pub use ast::{Program, Stmt};
pub use chaos_dmsim::{
    AuditReport, Counter, EngineKind, Fault, FaultKind, FaultPlan, MetricsRegistry,
    MetricsSnapshot, PhaseError, RecoveryPolicy, SpanKind, TraceEvent, TraceEventKind, TraceSink,
    TraceSummary,
};
pub use error::LangError;
pub use exec::{
    ExecReport, Executor, KernelMode, ProgramInputs, SAVED_GATHER_LABEL, SAVED_SCHEDULE_LABEL,
};
pub use kernel::{compile_kernel, CompiledKernel, KernelCache};
pub use lower::{lower_program, CompiledProgram, LoopPlan};
pub use parser::parse_program;
