//! Experiment configuration and the phase-time record the tables report.

use serde::{Deserialize, Serialize};

/// Data-mapping method used by an experiment (the columns of Table 2 and the
/// row groups of Tables 3 / 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Naive HPF BLOCK distribution of the node arrays (Table 4).
    Block,
    /// Compiler-linked recursive (binary) coordinate bisection (Table 3).
    Rcb,
    /// Recursive spectral bisection (Table 2, "Spectral Bisection").
    Rsb,
    /// Recursive inertial bisection (extension; not in the paper's tables).
    Inertial,
}

impl Method {
    /// Printable name.
    pub fn label(self) -> &'static str {
        match self {
            Method::Block => "Block Partition",
            Method::Rcb => "Binary Coordinate Bisection",
            Method::Rsb => "Spectral Bisection",
            Method::Inertial => "Inertial Bisection",
        }
    }

    /// The partitioner registry name (`None` for BLOCK, which keeps the
    /// default distribution).
    pub fn partitioner_name(self) -> Option<&'static str> {
        match self {
            Method::Block => None,
            Method::Rcb => Some("RCB"),
            Method::Rsb => Some("RSB"),
            Method::Inertial => Some("INERTIAL"),
        }
    }
}

/// Full description of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of simulated processors.
    pub nprocs: usize,
    /// Data-mapping method.
    pub method: Method,
    /// Whether the schedule-reuse mechanism is enabled.
    pub reuse: bool,
    /// Number of executor sweeps (the paper uses 100).
    pub executor_iterations: usize,
    /// Workload scale divisor (1 = paper-size).
    pub scale: usize,
}

impl ExperimentConfig {
    /// Paper-style configuration: given processors and method, 100 executor
    /// iterations with schedule reuse on, full-size workload.
    pub fn paper(nprocs: usize, method: Method) -> Self {
        ExperimentConfig {
            nprocs,
            method,
            reuse: true,
            executor_iterations: 100,
            scale: 1,
        }
    }

    /// Builder-style: disable or enable schedule reuse.
    pub fn with_reuse(mut self, reuse: bool) -> Self {
        self.reuse = reuse;
        self
    }

    /// Builder-style: set the executor iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.executor_iterations = iterations;
        self
    }

    /// Builder-style: scale the workload down by a divisor.
    pub fn with_scale(mut self, scale: usize) -> Self {
        self.scale = scale;
        self
    }
}

/// Modeled time (seconds) spent in each phase, plus bookkeeping counters.
/// These are the rows of the paper's tables.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// GeoCoL graph generation time.
    pub graph_generation: f64,
    /// Partitioner execution time.
    pub partitioner: f64,
    /// Inspector time (accumulated over re-runs when reuse is off).
    pub inspector: f64,
    /// Array / iteration remap time.
    pub remap: f64,
    /// Executor time summed over all sweeps.
    pub executor: f64,
    /// End-to-end modeled time.
    pub total: f64,
    /// Number of inspector executions.
    pub inspector_runs: usize,
    /// Number of executor sweeps.
    pub executor_sweeps: usize,
    /// Total point-to-point messages.
    pub messages: usize,
    /// Total bytes moved.
    pub bytes: usize,
    /// Fraction of loop references that stayed on-processor.
    pub local_fraction: f64,
    /// Wall-clock seconds the experiment took to simulate (not a modeled
    /// quantity; reported for transparency).
    pub wall_seconds: f64,
}

impl serde_json::ToValue for PhaseTimes {
    fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "graph_generation": self.graph_generation,
            "partitioner": self.partitioner,
            "inspector": self.inspector,
            "remap": self.remap,
            "executor": self.executor,
            "total": self.total,
            "inspector_runs": self.inspector_runs,
            "executor_sweeps": self.executor_sweeps,
            "messages": self.messages,
            "bytes": self.bytes,
            "local_fraction": self.local_fraction,
            "wall_seconds": self.wall_seconds,
        })
    }
}

impl PhaseTimes {
    /// Executor time per sweep.
    pub fn executor_per_iteration(&self) -> f64 {
        if self.executor_sweeps == 0 {
            0.0
        } else {
            self.executor / self.executor_sweeps as f64
        }
    }

    /// Sum of the phase rows (may differ slightly from `total`, which also
    /// includes barrier idle time outside the tagged phases).
    pub fn phase_sum(&self) -> f64 {
        self.graph_generation + self.partitioner + self.inspector + self.remap + self.executor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let c = ExperimentConfig::paper(32, Method::Rcb);
        assert_eq!(c.nprocs, 32);
        assert!(c.reuse);
        assert_eq!(c.executor_iterations, 100);
        assert_eq!(c.scale, 1);
        let c = c.with_reuse(false).with_iterations(10).with_scale(4);
        assert!(!c.reuse);
        assert_eq!(c.executor_iterations, 10);
        assert_eq!(c.scale, 4);
    }

    #[test]
    fn method_labels_and_partitioners() {
        assert_eq!(Method::Block.partitioner_name(), None);
        assert_eq!(Method::Rcb.partitioner_name(), Some("RCB"));
        assert_eq!(Method::Rsb.partitioner_name(), Some("RSB"));
        assert!(Method::Rsb.label().contains("Spectral"));
    }

    #[test]
    fn phase_times_helpers() {
        let t = PhaseTimes {
            executor: 10.0,
            executor_sweeps: 4,
            inspector: 1.0,
            remap: 0.5,
            ..Default::default()
        };
        assert_eq!(t.executor_per_iteration(), 2.5);
        assert_eq!(t.phase_sum(), 11.5);
        assert_eq!(PhaseTimes::default().executor_per_iteration(), 0.0);
    }
}
