//! Tiny command-line option handling shared by the table binaries.
//!
//! Every binary accepts:
//!
//! * `--quick`          — scale the workloads down 8× and run 20 executor
//!   iterations instead of 100 (useful for smoke tests; the table *shapes*
//!   are preserved),
//! * `--scale <N>`      — explicit workload scale divisor,
//! * `--iters <N>`      — explicit executor iteration count,
//! * `--json <path>`    — also write the results as JSON.

use crate::workload::WorkloadKind;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Workload scale divisor (1 = paper size).
    pub scale: usize,
    /// Executor iterations per experiment (paper: 100).
    pub iterations: usize,
    /// Optional JSON output path.
    pub json: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 1,
            iterations: 100,
            json: None,
        }
    }
}

impl Options {
    /// Parse options from an argument iterator (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.scale = 8;
                    opts.iterations = 20;
                }
                "--scale" => {
                    let v = it.next().ok_or("--scale requires a value")?;
                    opts.scale = v.parse().map_err(|_| format!("bad --scale value '{v}'"))?;
                }
                "--iters" => {
                    let v = it.next().ok_or("--iters requires a value")?;
                    opts.iterations = v.parse().map_err(|_| format!("bad --iters value '{v}'"))?;
                }
                "--json" => {
                    opts.json = Some(it.next().ok_or("--json requires a path")?);
                }
                "--help" | "-h" => {
                    return Err("usage: [--quick] [--scale N] [--iters N] [--json PATH]".to_string())
                }
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        if opts.scale == 0 || opts.iterations == 0 {
            return Err("--scale and --iters must be positive".to_string());
        }
        Ok(opts)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

/// The paper's experiment grid: each workload with the processor counts its
/// tables use (Tables 1, 3 and 4 all share this grid).
pub fn standard_grid() -> Vec<(WorkloadKind, Vec<usize>)> {
    vec![
        (WorkloadKind::Mesh10k, vec![4, 8, 16]),
        (WorkloadKind::Mesh53k, vec![16, 32, 64]),
        (WorkloadKind::Md648, vec![4, 8, 16]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_is_paper_size() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, 1);
        assert_eq!(o.iterations, 100);
        assert_eq!(o.json, None);
    }

    #[test]
    fn quick_scales_down() {
        let o = parse(&["--quick"]).unwrap();
        assert_eq!(o.scale, 8);
        assert_eq!(o.iterations, 20);
    }

    #[test]
    fn explicit_values_and_json() {
        let o = parse(&["--scale", "4", "--iters", "10", "--json", "out.json"]).unwrap();
        assert_eq!(o.scale, 4);
        assert_eq!(o.iterations, 10);
        assert_eq!(o.json.as_deref(), Some("out.json"));
    }

    #[test]
    fn bad_options_are_rejected() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
    }

    #[test]
    fn grid_matches_paper() {
        let g = standard_grid();
        assert_eq!(g.len(), 3);
        assert_eq!(g[1].1, vec![16, 32, 64]);
    }
}
