//! The compiler-generated version of the pair-reduction experiment.
//!
//! The same template as [`crate::handcoded`], but written in the Fortran-D
//! like mini-language (exactly the paper's Figure 4 / Figure 5 programs) and
//! executed through `chaos-lang` — i.e. through the code a compiler would
//! generate. Table 2 compares this path against the hand-coded one; the
//! paper's claim is that the compiler-generated code stays within ~10 % of
//! the hand-coded version.

use crate::experiment::{ExperimentConfig, Method, PhaseTimes};
use crate::workload::PairLoopWorkload;
use chaos_dmsim::{MachineConfig, PhaseKind};
use chaos_lang::{lower_program, parse_program, Executor, LangError, ProgramInputs};
use std::time::Instant;

/// The program template, specialized by data-mapping method. The MD and
/// Euler workloads share the template: both are pair-reduction loops; the
/// kernel difference is immaterial to the runtime behaviour being measured
/// (the charged per-iteration cost comes from the workload description).
pub fn program_text(method: Method) -> String {
    let mapping = match method {
        Method::Block => String::new(),
        Method::Rsb => "\
C$      CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$      SET distfmt BY PARTITIONING G USING RSB
C$      REDISTRIBUTE reg(distfmt)\n"
            .to_string(),
        Method::Rcb | Method::Inertial => format!(
            "\
C$      CONSTRUCT G (nnode, GEOMETRY(3, xc, yc, zc))
C$      SET distfmt BY PARTITIONING G USING {}
C$      REDISTRIBUTE reg(distfmt)\n",
            if method == Method::Rcb {
                "RCB"
            } else {
                "INERTIAL"
            }
        ),
    };
    format!(
        "\
        REAL*8 x(nnode), y(nnode)
        REAL*8 xc(nnode), yc(nnode), zc(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y, xc, yc, zc WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        CALL READ_DATA(x, y, xc, yc, zc, end_pt1, end_pt2)
{mapping}\
C Loop over edges involving x, y (the paper's loop L2)
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
"
    )
}

/// Bind a workload to the template's `READ_DATA` arrays and size scalars.
pub fn program_inputs(workload: &PairLoopWorkload) -> ProgramInputs {
    ProgramInputs::new()
        .scalar("nnode", workload.nnodes)
        .scalar("nedge", workload.npairs())
        .real("x", workload.input.clone())
        .real("y", vec![0.0; workload.nnodes])
        .real("xc", workload.coords[0].clone())
        .real("yc", workload.coords[1].clone())
        .real("zc", workload.coords[2].clone())
        .int("end_pt1", workload.e1.iter().map(|&v| v + 1).collect())
        .int("end_pt2", workload.e2.iter().map(|&v| v + 1).collect())
}

/// Run the compiler-generated experiment and return its phase breakdown,
/// plus the final accumulator array for verification.
pub fn run_compiler_generated(
    workload: &PairLoopWorkload,
    cfg: &ExperimentConfig,
) -> Result<(PhaseTimes, Vec<f64>), LangError> {
    let wall_start = Instant::now();
    let compiled = lower_program(parse_program(&program_text(cfg.method))?)?;
    let label = compiled
        .program
        .loop_labels()
        .last()
        .expect("template has a FORALL")
        .to_string();

    let mut exec = Executor::new(MachineConfig::ipsc860(cfg.nprocs), program_inputs(workload))
        .with_reuse(cfg.reuse);
    exec.run(&compiled)?;
    for _ in 1..cfg.executor_iterations {
        exec.execute_loop(&compiled, &label)?;
    }

    let machine = exec.machine();
    let totals = machine.stats().grand_totals();
    let times = PhaseTimes {
        graph_generation: machine.phase_elapsed(PhaseKind::GraphGeneration),
        partitioner: machine.phase_elapsed(PhaseKind::Partitioner),
        inspector: machine.phase_elapsed(PhaseKind::Inspector),
        remap: machine.phase_elapsed(PhaseKind::Remap),
        executor: machine.phase_elapsed(PhaseKind::Executor),
        total: machine.elapsed().max_seconds(),
        inspector_runs: exec.report().inspector_runs,
        executor_sweeps: exec.report().loop_sweeps,
        messages: totals.messages,
        bytes: totals.bytes,
        local_fraction: f64::NAN, // not surfaced by the language runtime
        wall_seconds: wall_start.elapsed().as_secs_f64(),
    };
    let y = exec
        .real_global("y")
        .ok_or_else(|| LangError::runtime("accumulator array 'y' missing after execution"))?;
    Ok((times, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handcoded::run_handcoded;
    use crate::workload::mesh_workload;
    use chaos_workloads::MeshConfig;

    fn small_mesh() -> PairLoopWorkload {
        mesh_workload(MeshConfig::tiny(400))
    }

    #[test]
    fn template_parses_for_every_method() {
        for m in [Method::Block, Method::Rcb, Method::Rsb, Method::Inertial] {
            let cp = lower_program(parse_program(&program_text(m)).unwrap()).unwrap();
            assert_eq!(cp.plans.len(), 1);
        }
    }

    #[test]
    fn compiler_generated_result_matches_sequential_reference() {
        let w = small_mesh();
        let cfg = ExperimentConfig::paper(4, Method::Rcb).with_iterations(1);
        let (_, y) = run_compiler_generated(&w, &cfg).unwrap();
        let expected = w.sequential_sweep();
        for (a, b) in y.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn compiler_generated_is_close_to_hand_coded() {
        // The paper's headline claim: within ~10 % of hand-coded at the 53K /
        // 32-processor, 100-iteration scale. At the tiny scale used in a unit
        // test the compiler path's fixed costs (it remaps *all* aligned
        // arrays including the coordinate arrays, and its inspector pattern
        // carries four slots per iteration instead of two) are not yet
        // amortized, so allow a wider margin here; the full-size `table2`
        // binary reports the real ratio.
        let w = small_mesh();
        let cfg = ExperimentConfig::paper(4, Method::Rcb).with_iterations(40);
        let hand = run_handcoded(&w, &cfg);
        let (compiler, _) = run_compiler_generated(&w, &cfg).unwrap();
        let ratio = compiler.total / hand.total;
        assert!(
            ratio < 1.35 && ratio > 0.7,
            "compiler/hand modeled-time ratio {ratio} (compiler {}, hand {})",
            compiler.total,
            hand.total
        );
        assert_eq!(compiler.executor_sweeps, hand.executor_sweeps);
        assert_eq!(compiler.inspector_runs, hand.inspector_runs);
    }

    #[test]
    fn reuse_flag_controls_inspector_runs() {
        let w = small_mesh();
        let cfg = ExperimentConfig::paper(4, Method::Block).with_iterations(5);
        let (with, _) = run_compiler_generated(&w, &cfg).unwrap();
        let (without, _) = run_compiler_generated(&w, &cfg.with_reuse(false)).unwrap();
        assert_eq!(with.inspector_runs, 1);
        assert_eq!(without.inspector_runs, 5);
        assert!(without.inspector > with.inspector);
    }
}
