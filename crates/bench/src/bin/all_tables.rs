//! Run every table experiment in sequence (Tables 1–4) and perform the
//! cross-check the paper's authors describe in Section 6: the parallel
//! (simulated) executor must produce exactly the same results as a
//! sequential sweep.
//!
//! `cargo run -p chaos-bench --bin all_tables --release -- --quick` gives a
//! scaled-down run in a couple of minutes; omit `--quick` for paper-size
//! workloads. `--json <dir>` is not supported here — run the individual
//! table binaries with `--json` for machine-readable output.

use chaos_bench::cli::Options;
use chaos_bench::experiment::Method;
use chaos_bench::handcoded::verify_against_sequential;
use chaos_bench::workload::WorkloadKind;
use std::process::Command;

fn main() {
    let opts = Options::from_env();

    // Correctness cross-check first (cheap, scaled-down workloads).
    println!("== Correctness cross-check (parallel executor vs sequential sweep) ==");
    for kind in [WorkloadKind::Mesh10k, WorkloadKind::Md648] {
        let w = kind.build(16.max(opts.scale));
        for method in [Method::Block, Method::Rcb, Method::Rsb] {
            let err = verify_against_sequential(&w, 8, method);
            println!(
                "  {:<10} {:<28} max |error| = {err:.3e}",
                kind.label(),
                method.label()
            );
            assert!(
                err < 1e-9,
                "parallel execution diverged from the sequential reference"
            );
        }
    }
    println!();

    // Delegate to the individual table binaries so their output formats stay
    // the single source of truth.
    let args: Vec<String> = {
        let mut a = Vec::new();
        if opts.scale != 1 {
            a.push("--scale".to_string());
            a.push(opts.scale.to_string());
        }
        if opts.iterations != 100 {
            a.push("--iters".to_string());
            a.push(opts.iterations.to_string());
        }
        a
    };
    for table in ["table1", "table2", "table3", "table4"] {
        println!("== Running {table} ==");
        let exe = std::env::current_exe().expect("current exe path");
        let sibling = exe.with_file_name(table);
        let status = Command::new(&sibling)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", sibling.display()));
        assert!(status.success(), "{table} exited with {status}");
    }
}
