//! Perf smoke: measure the flat-CSR hot path against the retained naive
//! reference implementation on a fixed workload and record the repo's
//! performance trajectory in `BENCH_1.json`.
//!
//! Both sides are measured **live in the same process on the same machine**,
//! so the gate is hardware-independent: `before` runs the seed's
//! formulation (nested-`Vec` schedules + `HashMap` dedup via
//! `chaos_runtime::naive`, and the seed's per-index `ExchangePlan`-based
//! table dereference reproduced below), `after` runs the CSR
//! implementation. The gate fails (exit 1) if either the executor or the
//! translation group improves less than 25% — the acceptance bar of the CSR
//! refactor — so a regression that erodes the win is caught by CI.
//!
//! The `recorded_baseline_ns` fields additionally preserve the medians
//! measured on the original development machine right after PR 1 first made
//! the seed build, as a historical anchor for the perf trajectory; they are
//! informational and not part of the gate.
//!
//! Usage: `cargo run --release -p chaos-bench --bin perf_check [out.json]`

use chaos_bench::workload::mesh_workload;
use chaos_dmsim::{ExchangePlan, Machine, MachineConfig};
use chaos_geocol::{Partitioner, RcbPartitioner};
use chaos_runtime::iterpart::partition_iterations;
use chaos_runtime::{
    gather, naive, scatter_add, AccessPattern, DistArray, Distribution, Inspector,
    IterPartitionPolicy, TTablePolicy, TranslationTable,
};
use chaos_workloads::{MeshConfig, UnstructuredMesh};
use std::time::Instant;

/// Median wall-clock nanoseconds of `samples` runs of `f` (after warm-up).
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> u128 {
    for _ in 0..samples.div_ceil(5).clamp(1, 5) {
        f();
    }
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// The seed's `TranslationTable::dereference`: per-index page dispatch into
/// per-destination payload vectors shipped through real `ExchangePlan`s.
/// Reproduced here as the measurement baseline (the runtime's batched
/// implementation replaced it).
fn seed_dereference(
    table: &TranslationTable,
    machine: &mut Machine,
    label: &str,
    requests: &[Vec<u32>],
) -> Vec<Vec<(u32, u32)>> {
    let nprocs = table.nprocs();
    match table.policy() {
        TTablePolicy::Replicated => {
            for (p, reqs) in requests.iter().enumerate() {
                machine.charge_compute(p, reqs.len() as f64);
            }
        }
        TTablePolicy::Distributed => {
            let mut plan: ExchangePlan<u32> = ExchangePlan::new(nprocs);
            let mut counts = vec![vec![0usize; nprocs]; nprocs];
            for (p, reqs) in requests.iter().enumerate() {
                let mut per_dest: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
                for &g in reqs {
                    let page = table.page_owner(g as usize);
                    per_dest[page].push(g);
                    counts[p][page] += 1;
                }
                for (dest, payload) in per_dest.into_iter().enumerate() {
                    plan.push(p, dest, payload);
                }
            }
            machine.exchange(&format!("{label}:deref-request"), plan);
            let mut reply: ExchangePlan<u32> = ExchangePlan::new(nprocs);
            for (p, row) in counts.iter().enumerate() {
                for (page, &cnt) in row.iter().enumerate() {
                    if cnt > 0 {
                        machine.charge_compute(page, cnt as f64);
                        reply.push(page, p, vec![0u32; 2 * cnt]);
                    }
                }
            }
            machine.exchange(&format!("{label}:deref-reply"), reply);
        }
    }
    requests
        .iter()
        .map(|reqs| {
            reqs.iter()
                .map(|&g| {
                    (
                        table.owner(g as usize) as u32,
                        table.local_offset(g as usize) as u32,
                    )
                })
                .collect()
        })
        .collect()
}

struct Row {
    name: &'static str,
    group: &'static str,
    /// Frozen median from the original dev machine (informational).
    recorded_baseline_ns: u128,
    /// Naive reference measured live (the gate's `before`).
    before_ns: u128,
    /// CSR implementation measured live.
    after_ns: u128,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_1.json".to_string());
    let mut rows: Vec<Row> = Vec::new();

    // --- executor group: same workload as benches/executor.rs ---
    {
        let w = mesh_workload(MeshConfig::tiny(3000));
        let nprocs = 16;
        let geocol = chaos_geocol::GeoColBuilder::new(w.nnodes)
            .geometry(vec![
                w.coords[0].clone(),
                w.coords[1].clone(),
                w.coords[2].clone(),
            ])
            .build()
            .unwrap();
        let dist = Distribution::irregular_from_map(
            RcbPartitioner.partition(&geocol, nprocs).owners(),
            nprocs,
        );
        let x = DistArray::from_global("x", dist.clone(), &w.input);
        let mut y = DistArray::from_global("y", dist.clone(), &vec![0.0; w.nnodes]);
        let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
        let iter_part = partition_iterations(
            &mut machine,
            &dist,
            &w.iteration_refs(),
            IterPartitionPolicy::AlmostOwnerComputes,
        );
        let mut pattern = AccessPattern::new(nprocs);
        for p in 0..nprocs {
            for &it in iter_part.iters(p) {
                pattern.refs[p].push(w.e1[it as usize]);
                pattern.refs[p].push(w.e2[it as usize]);
            }
        }
        let inspect = Inspector.localize(&mut machine, "bench", &dist, &pattern);
        let reference = naive::localize(&mut machine, "bench", &dist, &pattern);
        let contributions: Vec<Vec<f64>> = (0..nprocs)
            .map(|p| vec![1.0; inspect.ghost_counts[p]])
            .collect();

        rows.push(Row {
            name: "executor/gather",
            group: "executor",
            recorded_baseline_ns: 8118,
            before_ns: median_ns(30, || {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                std::hint::black_box(naive::gather(
                    &mut machine,
                    "bench",
                    &reference.schedule,
                    &x,
                ));
            }),
            after_ns: median_ns(30, || {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                std::hint::black_box(gather(&mut machine, "bench", &inspect.schedule, &x));
            }),
        });
        rows.push(Row {
            name: "executor/scatter_add",
            group: "executor",
            recorded_baseline_ns: 12651,
            before_ns: median_ns(30, || {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                naive::scatter_add(
                    &mut machine,
                    "bench",
                    &reference.schedule,
                    &mut y,
                    &contributions,
                );
            }),
            after_ns: median_ns(30, || {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                scatter_add(
                    &mut machine,
                    "bench",
                    &inspect.schedule,
                    &mut y,
                    &contributions,
                );
            }),
        });
    }

    // --- translation group: same workload as benches/translation.rs ---
    {
        let mesh = UnstructuredMesh::generate(MeshConfig::tiny(4000));
        let nprocs = 16;
        let map: Vec<u32> = (0..mesh.nnodes())
            .map(|i| ((i * 2654435761) % nprocs) as u32)
            .collect();
        let mut requests: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
        let per = mesh.nedges().div_ceil(nprocs);
        for (i, (&a, &b)) in mesh.end_pt1.iter().zip(&mesh.end_pt2).enumerate() {
            let p = (i / per).min(nprocs - 1);
            requests[p].push(a);
            requests[p].push(b);
        }
        for (name, policy, recorded_baseline_ns) in [
            (
                "translation/dereference/replicated",
                TTablePolicy::Replicated,
                65528u128,
            ),
            (
                "translation/dereference/distributed",
                TTablePolicy::Distributed,
                278448,
            ),
        ] {
            let table = TranslationTable::from_map_with_policy(&map, nprocs, policy);
            rows.push(Row {
                name,
                group: "translation",
                recorded_baseline_ns,
                before_ns: median_ns(20, || {
                    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                    std::hint::black_box(seed_dereference(
                        &table,
                        &mut machine,
                        "bench",
                        &requests,
                    ));
                }),
                after_ns: median_ns(20, || {
                    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                    std::hint::black_box(table.dereference(&mut machine, "bench", &requests));
                }),
            });
        }
    }

    // --- report + gate ---
    let mut records: Vec<serde_json::Value> = Vec::new();
    let mut failed = false;
    for group in ["executor", "translation"] {
        let (mut before, mut after) = (0u128, 0u128);
        for r in rows.iter().filter(|r| r.group == group) {
            before += r.before_ns;
            after += r.after_ns;
            let improvement = 1.0 - r.after_ns as f64 / r.before_ns as f64;
            println!(
                "{:<42} naive {:>9} ns  csr {:>9} ns  improvement {:>5.1}%",
                r.name,
                r.before_ns,
                r.after_ns,
                100.0 * improvement
            );
            records.push(serde_json::json!({
                "bench": r.name,
                "group": r.group,
                "before_median_ns": r.before_ns as u64,
                "after_median_ns": r.after_ns as u64,
                "recorded_baseline_ns": r.recorded_baseline_ns as u64,
                "improvement": improvement,
            }));
        }
        let improvement = 1.0 - after as f64 / before as f64;
        println!(
            "{:<42} naive {:>9} ns  csr {:>9} ns  improvement {:>5.1}%  (gate: >= 25%)",
            format!("GROUP {group}"),
            before,
            after,
            100.0 * improvement
        );
        records.push(serde_json::json!({
            "group_total": group,
            "before_median_ns": before as u64,
            "after_median_ns": after as u64,
            "improvement": improvement,
            "gate": 0.25,
            "pass": improvement >= 0.25,
        }));
        if improvement < 0.25 {
            failed = true;
        }
    }

    let doc = serde_json::json!({
        "baseline": "naive reference implementation (seed formulation: nested-Vec schedules, HashMap dedup, per-index ExchangePlan dereference), measured live in the same process; recorded_baseline_ns = frozen post-manifest medians from the original dev machine",
        "records": records,
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));
    println!("wrote {out_path}");

    if failed {
        eprintln!(
            "perf gate FAILED: a benchmark group improved less than 25% over the naive baseline"
        );
        std::process::exit(1);
    }
}
