//! Perf smoke: measure the flat-CSR hot path against the retained naive
//! reference implementation on a fixed workload and record the repo's
//! performance trajectory in `BENCH_1.json`.
//!
//! Both sides are measured **live in the same process on the same machine**,
//! so the gate is hardware-independent: `before` runs the seed's
//! formulation (nested-`Vec` schedules + `HashMap` dedup via
//! `chaos_runtime::naive`, and the seed's per-index `ExchangePlan`-based
//! table dereference reproduced below), `after` runs the CSR
//! implementation. The gate fails (exit 1) if either the executor or the
//! translation group improves less than 25% — the acceptance bar of the CSR
//! refactor — so a regression that erodes the win is caught by CI.
//!
//! The `recorded_baseline_ns` fields additionally preserve the medians
//! measured on the original development machine right after PR 1 first made
//! the seed build, as a historical anchor for the perf trajectory; they are
//! informational and not part of the gate.
//!
//! A second artifact, `BENCH_2.json`, records the **thread-scaling** of the
//! rank-parallel SPMD engines: wall-clock of one steady-state executor
//! iteration (gather + scatter-add) on the sequential vs the threaded vs
//! the pooled backend at 8 ranks (plus smaller rank counts for the scaling
//! curve), after asserting that the engines produce byte-identical ghost
//! buffers, array values and modeled clocks. The ≥ 1.5× speedup gate is
//! enforced only when the host has ≥ 8 cores (one per rank, 2×+ headroom
//! over the bar) — with fewer cores the ranks timeshare and the margin
//! disappears (on 1 core no wall-clock speedup is physically possible), so
//! the row is then recorded as informational (`gated: false`). Every row of
//! every artifact carries the detected `available_cores`; every row that
//! can gate additionally carries the core count its gate arms at
//! (`gate_arms_at_cores`, 1 for hardware-independent gates, null on rows
//! whose gate never arms), so whether a committed artifact's multi-core
//! rows are authoritative or informational is machine-readable.
//!
//! A third artifact, `BENCH_3.json`, records the **kernel compilation**
//! win: wall-clock of one steady-state lang executor sweep (gather +
//! rank-parallel compute + scatter over a reused schedule and a reused
//! compiled kernel) with the FORALL body compiled to register bytecode vs
//! interpreted by the retained tree-walker, measured live in the same
//! process after asserting the two modes produce byte-identical array
//! values, modeled clocks and statistics. The compiled row is gated at
//! ≥ 2×: both modes run the same gathers/scatters on the same hardware, so
//! the ratio isolates the interpretation overhead the compiler removes and
//! is hardware-independent.
//!
//! A fourth artifact, `BENCH_4.json`, records the **per-phase overhead**
//! win of the persistent worker pool: the same executor iteration on a
//! deliberately *small* workload, where the per-phase engine overhead —
//! scoped thread spawn for `ThreadedBackend`, the epoch-barrier hand-off
//! for `PooledBackend` — dominates the data movement. The pooled engine is
//! gated at ≥ 2× lower per-iteration cost than the scoped-spawn engine when
//! the host has ≥ 4 cores (below that the spawn path degenerates too, so
//! the ratio is noise and the row is informational).
//!
//! A fifth artifact, `BENCH_5.json`, records the **rank-parallel
//! partitioner scans** win: wall-clock of one coupler-driven `SET ... BY
//! PARTITIONING` run (RSB's power-iteration matvecs + reductions; RCB's
//! extent/histogram median scans) executed through the `PooledBackend`'s
//! `RankScans` adapter vs the pure driver-side `partition()`, after
//! asserting the partitionings are byte-identical (the fixed-block scan
//! structure guarantees it for any rank count). The RSB row — the
//! matvec-dominated partitioner the scans were built for — is gated at
//! ≥ 2× when the host has ≥ 4 cores (below that the rank chunks timeshare
//! one core and only the phase overhead remains); the RCB row is
//! informational context.
//!
//! A sixth artifact, `BENCH_6.json`, records the **epoch-checkpoint
//! overhead** of the fault-recovery subsystem: wall-clock of a batch of
//! steady-state lang executor sweeps on a 40k-node edge workload with the
//! executor checkpointing every 8 epochs vs checkpointing disabled, after
//! asserting the checkpoint cadence leaves the array values untouched. The
//! checkpoint row is gated at ≤ 10% overhead (both sides run in the same
//! process on the same data, so the ratio is hardware-independent). A
//! second, informational row times an actual rollback recovery — one
//! injected kernel panic late in the sweeps, recovered via
//! `RecoveryPolicy::RollbackToCheckpoint` — and asserts the recovered run
//! is bit-identical (values, modeled clocks, statistics) to the fault-free
//! run.
//!
//! A seventh artifact, `BENCH_7.json`, records the **sweep fusion** win:
//! wall-clock of one steady-state lang executor sweep with the fused
//! gather → compute → scatter path (a single `Backend::run_sweep` epoch —
//! one pooled broadcast release and one completion barrier, gathers folded
//! in driver-side) vs the split path (one engine phase per gather /
//! compute / scatter, each paying its own hand-off), measured on the
//! pooled engine at a deliberately small N where the per-phase release
//! dominates the data movement. Values, modeled clocks and statistics are
//! asserted byte-identical across the two paths before timing — fusion is
//! pure overhead removal. The fused row is gated at ≥ 1.5× when the host
//! has ≥ 4 cores (one per rank; below that the lanes timeshare and the
//! hand-off cost measures the scheduler), with a sequential-engine row as
//! informational context.
//!
//! An eighth artifact, `BENCH_8.json`, records the **flight-recorder
//! overhead**: wall-clock of a batch of steady-state lang executor sweeps
//! on the 40k-node / 120k-edge mesh workload at 8 ranks with a `TraceSink`
//! installed vs tracing disabled, after asserting the traced run is
//! bit-identical (values, modeled clocks, statistics) to the untraced one —
//! the sink only observes. The traced row is gated at ≤ 10% overhead (both
//! sides run in the same process on the same data, so the ratio is
//! hardware-independent); the rings wrap in flight-recorder mode, so the
//! batch also demonstrates the bounded-memory contract.
//!
//! A ninth artifact, `BENCH_9.json`, records the **metrics-registry
//! overhead**: wall-clock of a batch of steady-state lang executor sweeps
//! on the same 40k-node / 120k-edge mesh workload at 8 ranks with a
//! `MetricsRegistry` installed vs metering disabled, after asserting the
//! metered run is bit-identical (values, modeled clocks, statistics) to
//! the bare one — the registry only observes. The metered row is gated at
//! ≤ 5% overhead (sharded per-lane counters and fixed-bucket histograms
//! are cheaper than the flight recorder's ring writes, so the gate is
//! tighter than BENCH_8's). The artifact also records the cost-model
//! auditor's verdict: one modeled-vs-wall drift row per sampled phase
//! kind (drift ratio, through-origin slope, residual RMS).
//!
//! A tenth artifact, `BENCH_10.json`, records the **incremental
//! cross-loop schedule** win: the two-loop 40k-node mesh program (edge
//! loop then face loop, both reading `x`) run with incremental schedules
//! on vs off (the `with_incremental_schedules(false)` escape hatch), after
//! asserting the two modes' array values are bit-identical. The gates are
//! hardware-independent — modeled message count and volume, not wall
//! clock: the incremental run must send strictly fewer messages and fewer
//! bytes, and the executor's saved ledger must account for the entire gap
//! exactly. Wall-clock medians for a steady-state sweep batch are recorded
//! ungated alongside.
//!
//! Usage: `cargo run --release -p chaos-bench --bin perf_check [out.json] [out2.json] [out3.json] [out4.json] [out5.json] [out6.json] [out7.json] [out8.json] [out9.json] [out10.json]`

use chaos_bench::kernel_bench::{
    edge_executor, edge_executor_pooled, edge_program_inputs, multi_loop_executor,
    multi_loop_inputs,
};
use chaos_bench::spmd_bench::{executor_iteration, executor_workload, phase_overhead_workload};
use chaos_bench::workload::{mesh_workload, partitioner_scan_geocol, partitioner_scan_rsb};
use chaos_dmsim::{
    Backend, ExchangePlan, Machine, MachineConfig, MetricsRegistry, PooledBackend, ThreadedBackend,
    TraceSink,
};
use chaos_geocol::{Partitioner, RcbPartitioner};
use chaos_lang::{Executor, FaultKind, FaultPlan, KernelMode, RecoveryPolicy};
use chaos_runtime::iterpart::partition_iterations;
use chaos_runtime::{
    gather, naive, scatter_add, AccessPattern, DistArray, Distribution, Inspector,
    IterPartitionPolicy, MapperCoupler, TTablePolicy, TranslationTable,
};
use chaos_workloads::{MeshConfig, UnstructuredMesh};
use std::sync::Arc;
use std::time::Instant;

/// Median wall-clock nanoseconds of `samples` runs of `f` (after warm-up).
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> u128 {
    for _ in 0..samples.div_ceil(5).clamp(1, 5) {
        f();
    }
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// The seed's `TranslationTable::dereference`: per-index page dispatch into
/// per-destination payload vectors shipped through real `ExchangePlan`s.
/// Reproduced here as the measurement baseline (the runtime's batched
/// implementation replaced it).
fn seed_dereference(
    table: &TranslationTable,
    machine: &mut Machine,
    label: &str,
    requests: &[Vec<u32>],
) -> Vec<Vec<(u32, u32)>> {
    let nprocs = table.nprocs();
    match table.policy() {
        TTablePolicy::Replicated => {
            for (p, reqs) in requests.iter().enumerate() {
                machine.charge_compute(p, reqs.len() as f64);
            }
        }
        TTablePolicy::Distributed => {
            let mut plan: ExchangePlan<u32> = ExchangePlan::new(nprocs);
            let mut counts = vec![vec![0usize; nprocs]; nprocs];
            for (p, reqs) in requests.iter().enumerate() {
                let mut per_dest: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
                for &g in reqs {
                    let page = table.page_owner(g as usize);
                    per_dest[page].push(g);
                    counts[p][page] += 1;
                }
                for (dest, payload) in per_dest.into_iter().enumerate() {
                    plan.push(p, dest, payload);
                }
            }
            machine.exchange(&format!("{label}:deref-request"), plan);
            let mut reply: ExchangePlan<u32> = ExchangePlan::new(nprocs);
            for (p, row) in counts.iter().enumerate() {
                for (page, &cnt) in row.iter().enumerate() {
                    if cnt > 0 {
                        machine.charge_compute(page, cnt as f64);
                        reply.push(page, p, vec![0u32; 2 * cnt]);
                    }
                }
            }
            machine.exchange(&format!("{label}:deref-reply"), reply);
        }
    }
    requests
        .iter()
        .map(|reqs| {
            reqs.iter()
                .map(|&g| {
                    (
                        table.owner(g as usize) as u32,
                        table.local_offset(g as usize) as u32,
                    )
                })
                .collect()
        })
        .collect()
}

struct Row {
    name: &'static str,
    group: &'static str,
    /// Frozen median from the original dev machine (informational).
    recorded_baseline_ns: u128,
    /// Naive reference measured live (the gate's `before`).
    before_ns: u128,
    /// CSR implementation measured live.
    after_ns: u128,
}

/// Measure the executor group on the sequential, scoped-thread and
/// worker-pool engines at `nprocs` ranks: returns `(seq_ns, thr_ns,
/// pool_ns)` medians, after asserting all three engines agree byte-for-byte
/// on values and modeled clocks.
fn engine_comparison_row(
    nprocs: usize,
    workload: (Distribution, Vec<f64>, AccessPattern),
    samples: usize,
) -> (u128, u128, u128) {
    let (dist, data, pattern) = workload;
    let n = data.len();
    let x = DistArray::from_global("x", dist.clone(), &data);
    let mut setup = Machine::new(MachineConfig::ipsc860(nprocs));
    let inspect = Inspector.localize(&mut setup, "bench", &dist, &pattern);
    let mut ghosts: Vec<Vec<f64>> = (0..nprocs)
        .map(|p| vec![0.0; inspect.ghost_counts[p]])
        .collect();

    // Determinism spot-check before timing: one iteration on each engine
    // from identical state must agree bit-for-bit.
    {
        let mut seq = Machine::new(MachineConfig::ipsc860(nprocs));
        let mut thr = ThreadedBackend::from_config(MachineConfig::ipsc860(nprocs));
        let mut pool = PooledBackend::from_config(MachineConfig::ipsc860(nprocs));
        let mut y_seq = DistArray::from_global("y", dist.clone(), &vec![0.0; n]);
        let mut y_thr = y_seq.clone();
        let mut y_pool = y_seq.clone();
        let mut ghosts_thr = ghosts.clone();
        let mut ghosts_pool = ghosts.clone();
        executor_iteration(&mut seq, &inspect.schedule, &x, &mut y_seq, &mut ghosts);
        executor_iteration(&mut thr, &inspect.schedule, &x, &mut y_thr, &mut ghosts_thr);
        executor_iteration(
            &mut pool,
            &inspect.schedule,
            &x,
            &mut y_pool,
            &mut ghosts_pool,
        );
        assert_eq!(ghosts, ghosts_thr, "ghost buffers diverged across engines");
        assert_eq!(ghosts, ghosts_pool, "ghost buffers diverged across engines");
        assert_eq!(
            y_seq.to_global(),
            y_thr.to_global(),
            "scatter results diverged across engines"
        );
        assert_eq!(
            y_seq.to_global(),
            y_pool.to_global(),
            "scatter results diverged across engines"
        );
        assert_eq!(
            seq.elapsed(),
            thr.machine().elapsed(),
            "modeled clocks diverged across engines"
        );
        assert_eq!(
            seq.elapsed(),
            pool.machine().elapsed(),
            "modeled clocks diverged across engines"
        );
    }

    let mut y = DistArray::from_global("y", dist.clone(), &vec![0.0; n]);
    let mut seq = Machine::new(MachineConfig::ipsc860(nprocs));
    let seq_ns = median_ns(samples, || {
        executor_iteration(&mut seq, &inspect.schedule, &x, &mut y, &mut ghosts);
    });
    let mut thr = ThreadedBackend::from_config(MachineConfig::ipsc860(nprocs));
    let thr_ns = median_ns(samples, || {
        executor_iteration(&mut thr, &inspect.schedule, &x, &mut y, &mut ghosts);
    });
    let mut pool = PooledBackend::from_config(MachineConfig::ipsc860(nprocs));
    let pool_ns = median_ns(samples, || {
        executor_iteration(&mut pool, &inspect.schedule, &x, &mut y, &mut ghosts);
    });
    (seq_ns, thr_ns, pool_ns)
}

/// Measure one steady-state `execute_loop` sweep of the shared edge-loop
/// program in both kernel modes: returns `(interpreted_ns, compiled_ns)`
/// medians, after asserting byte-identity of values, clocks and statistics
/// across the two modes.
fn kernel_mode_row(nprocs: usize, nnode: usize, nedge: usize) -> (u128, u128) {
    let inputs = edge_program_inputs(nnode, nedge);
    let (mut interp, cp, label) = edge_executor(KernelMode::Interpreted, nprocs, &inputs);
    let (mut compiled, _, _) = edge_executor(KernelMode::Compiled, nprocs, &inputs);

    // Byte-identity before timing: a few steady-state sweeps in each mode
    // must agree on values, modeled clocks and statistics bit-for-bit.
    for _ in 0..3 {
        interp.execute_loop(&cp, &label).expect("interpreted sweep");
        compiled.execute_loop(&cp, &label).expect("compiled sweep");
    }
    let yi = interp.real_global("y").expect("y");
    let yc = compiled.real_global("y").expect("y");
    for (i, (a, b)) in yi.iter().zip(&yc).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "y[{i}] diverged across modes");
    }
    let (ei, ec) = (interp.machine().elapsed(), compiled.machine().elapsed());
    for p in 0..nprocs {
        assert_eq!(
            ei.per_proc[p].to_bits(),
            ec.per_proc[p].to_bits(),
            "modeled clocks diverged across kernel modes"
        );
    }
    let (si, sc) = (
        interp.machine().stats().grand_totals(),
        compiled.machine().stats().grand_totals(),
    );
    assert_eq!(si, sc, "statistics diverged across kernel modes");

    let interp_ns = median_ns(15, || {
        interp.execute_loop(&cp, &label).expect("interpreted sweep");
    });
    let compiled_ns = median_ns(15, || {
        compiled.execute_loop(&cp, &label).expect("compiled sweep");
    });
    (interp_ns, compiled_ns)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_1.json".to_string());
    let out2_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_2.json".to_string());
    let out3_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    let out4_path = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "BENCH_4.json".to_string());
    let out5_path = std::env::args()
        .nth(5)
        .unwrap_or_else(|| "BENCH_5.json".to_string());
    let out6_path = std::env::args()
        .nth(6)
        .unwrap_or_else(|| "BENCH_6.json".to_string());
    let out7_path = std::env::args()
        .nth(7)
        .unwrap_or_else(|| "BENCH_7.json".to_string());
    let out8_path = std::env::args()
        .nth(8)
        .unwrap_or_else(|| "BENCH_8.json".to_string());
    let out9_path = std::env::args()
        .nth(9)
        .unwrap_or_else(|| "BENCH_9.json".to_string());
    let out10_path = std::env::args()
        .nth(10)
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut rows: Vec<Row> = Vec::new();

    // --- executor group: same workload as benches/executor.rs ---
    {
        let w = mesh_workload(MeshConfig::tiny(3000));
        let nprocs = 16;
        let geocol = chaos_geocol::GeoColBuilder::new(w.nnodes)
            .geometry(vec![
                w.coords[0].clone(),
                w.coords[1].clone(),
                w.coords[2].clone(),
            ])
            .build()
            .unwrap();
        let dist = Distribution::irregular_from_map(
            RcbPartitioner.partition(&geocol, nprocs).owners(),
            nprocs,
        );
        let x = DistArray::from_global("x", dist.clone(), &w.input);
        let mut y = DistArray::from_global("y", dist.clone(), &vec![0.0; w.nnodes]);
        let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
        let iter_part = partition_iterations(
            &mut machine,
            &dist,
            &w.iteration_refs(),
            IterPartitionPolicy::AlmostOwnerComputes,
        );
        let mut pattern = AccessPattern::new(nprocs);
        for p in 0..nprocs {
            for &it in iter_part.iters(p) {
                pattern.refs[p].push(w.e1[it as usize]);
                pattern.refs[p].push(w.e2[it as usize]);
            }
        }
        let inspect = Inspector.localize(&mut machine, "bench", &dist, &pattern);
        let reference = naive::localize(&mut machine, "bench", &dist, &pattern);
        let contributions: Vec<Vec<f64>> = (0..nprocs)
            .map(|p| vec![1.0; inspect.ghost_counts[p]])
            .collect();

        rows.push(Row {
            name: "executor/gather",
            group: "executor",
            recorded_baseline_ns: 8118,
            before_ns: median_ns(30, || {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                std::hint::black_box(naive::gather(
                    &mut machine,
                    "bench",
                    &reference.schedule,
                    &x,
                ));
            }),
            after_ns: median_ns(30, || {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                std::hint::black_box(gather(&mut machine, "bench", &inspect.schedule, &x));
            }),
        });
        rows.push(Row {
            name: "executor/scatter_add",
            group: "executor",
            recorded_baseline_ns: 12651,
            before_ns: median_ns(30, || {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                naive::scatter_add(
                    &mut machine,
                    "bench",
                    &reference.schedule,
                    &mut y,
                    &contributions,
                );
            }),
            after_ns: median_ns(30, || {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                scatter_add(
                    &mut machine,
                    "bench",
                    &inspect.schedule,
                    &mut y,
                    &contributions,
                );
            }),
        });
    }

    // --- translation group: same workload as benches/translation.rs ---
    {
        let mesh = UnstructuredMesh::generate(MeshConfig::tiny(4000));
        let nprocs = 16;
        let map: Vec<u32> = (0..mesh.nnodes())
            .map(|i| ((i * 2654435761) % nprocs) as u32)
            .collect();
        let mut requests: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
        let per = mesh.nedges().div_ceil(nprocs);
        for (i, (&a, &b)) in mesh.end_pt1.iter().zip(&mesh.end_pt2).enumerate() {
            let p = (i / per).min(nprocs - 1);
            requests[p].push(a);
            requests[p].push(b);
        }
        for (name, policy, recorded_baseline_ns) in [
            (
                "translation/dereference/replicated",
                TTablePolicy::Replicated,
                65528u128,
            ),
            (
                "translation/dereference/distributed",
                TTablePolicy::Distributed,
                278448,
            ),
        ] {
            let table = TranslationTable::from_map_with_policy(&map, nprocs, policy);
            rows.push(Row {
                name,
                group: "translation",
                recorded_baseline_ns,
                before_ns: median_ns(20, || {
                    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                    std::hint::black_box(seed_dereference(
                        &table,
                        &mut machine,
                        "bench",
                        &requests,
                    ));
                }),
                after_ns: median_ns(20, || {
                    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                    std::hint::black_box(table.dereference(&mut machine, "bench", &requests));
                }),
            });
        }
    }

    // --- report + gate ---
    let mut records: Vec<serde_json::Value> = Vec::new();
    let mut failed = false;
    for group in ["executor", "translation"] {
        let (mut before, mut after) = (0u128, 0u128);
        for r in rows.iter().filter(|r| r.group == group) {
            before += r.before_ns;
            after += r.after_ns;
            let improvement = 1.0 - r.after_ns as f64 / r.before_ns as f64;
            println!(
                "{:<42} naive {:>9} ns  csr {:>9} ns  improvement {:>5.1}%",
                r.name,
                r.before_ns,
                r.after_ns,
                100.0 * improvement
            );
            records.push(serde_json::json!({
                "bench": r.name,
                "group": r.group,
                "before_median_ns": r.before_ns as u64,
                "after_median_ns": r.after_ns as u64,
                "recorded_baseline_ns": r.recorded_baseline_ns as u64,
                "improvement": improvement,
                "available_cores": cores,
            }));
        }
        let improvement = 1.0 - after as f64 / before as f64;
        println!(
            "{:<42} naive {:>9} ns  csr {:>9} ns  improvement {:>5.1}%  (gate: >= 25%)",
            format!("GROUP {group}"),
            before,
            after,
            100.0 * improvement
        );
        records.push(serde_json::json!({
            "group_total": group,
            "before_median_ns": before as u64,
            "after_median_ns": after as u64,
            "improvement": improvement,
            "gate": 0.25,
            "gated": true,
            "gate_arms_at_cores": 1,
            "available_cores": cores,
            "pass": improvement >= 0.25,
        }));
        if improvement < 0.25 {
            failed = true;
        }
    }

    let doc = serde_json::json!({
        "baseline": "naive reference implementation (seed formulation: nested-Vec schedules, HashMap dedup, per-index ExchangePlan dereference), measured live in the same process; recorded_baseline_ns = frozen post-manifest medians from the original dev machine",
        "records": records,
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));
    println!("wrote {out_path}");

    // --- BENCH_2: thread-scaling of the rank-parallel SPMD engines ---
    let mut records2: Vec<serde_json::Value> = Vec::new();
    for nprocs in [2usize, 4, 8] {
        // Sized so one iteration's data movement (~ms) dominates the
        // per-phase thread-spawn overhead (~tens of µs per rank).
        let (seq_ns, thr_ns, pool_ns) = engine_comparison_row(
            nprocs,
            executor_workload(300_000, nprocs, 600_000 / nprocs),
            9,
        );
        let speedup = seq_ns as f64 / thr_ns as f64;
        let pooled_speedup = seq_ns as f64 / pool_ns as f64;
        // The acceptance gate applies to the 8-rank row, and only on hosts
        // with >= 8 cores, where one thread per rank actually gets a core
        // and the 1.5x bar has 2x+ headroom. With fewer cores the ranks
        // timeshare (no wall-clock speedup is physically possible on 1
        // core; 4-core machines measure ~1.9x but with little margin for a
        // noisy shared runner), so the row is recorded as informational —
        // the engines are byte-identical regardless, which *is* asserted
        // above on every host.
        let gated = nprocs == 8 && cores >= 8;
        let pass = !gated || speedup >= 1.5;
        println!(
            "executor/threads/{nprocs:<2} sequential {seq_ns:>10} ns  threaded {thr_ns:>10} ns  \
             pooled {pool_ns:>10} ns  speedup {speedup:>5.2}x / {pooled_speedup:>5.2}x  \
             ({} cores{})",
            cores,
            if gated {
                ", gate >= 1.5x"
            } else {
                ", informational"
            }
        );
        records2.push(serde_json::json!({
            "bench": format!("executor/threads/{nprocs}"),
            "group": "executor-threads",
            "ranks": nprocs,
            "sequential_median_ns": seq_ns as u64,
            "threaded_median_ns": thr_ns as u64,
            "pooled_median_ns": pool_ns as u64,
            "speedup": speedup,
            "pooled_speedup": pooled_speedup,
            "available_cores": cores,
            "gate": 1.5,
            "gated": gated,
            // Only the 8-rank row's gate ever arms; the smaller rows are
            // scaling-curve context and never gate, encoded as null.
            "gate_arms_at_cores": if nprocs == 8 {
                serde_json::json!(8)
            } else {
                serde_json::Value::Null
            },
            "pass": pass,
        }));
        if !pass {
            failed = true;
        }
    }
    let doc2 = serde_json::json!({
        "baseline": "sequential Backend (Machine) vs ThreadedBackend vs PooledBackend, same executor iteration (gather + scatter-add over a reused schedule), same process; results verified byte-identical before timing. The >=1.5x gate on the 8-rank threaded row arms itself from the recorded available_cores (>= gate_arms_at_cores).",
        "records": records2,
    });
    std::fs::write(&out2_path, serde_json::to_string_pretty(&doc2).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out2_path}: {e}"));
    println!("wrote {out2_path}");

    // --- BENCH_3: interpreted vs compiled executor sweeps (lang kernels) ---
    let mut records3: Vec<serde_json::Value> = Vec::new();
    {
        let (nprocs, nnode, nedge) = (8usize, 60_000usize, 180_000usize);
        let (interp_ns, compiled_ns) = kernel_mode_row(nprocs, nnode, nedge);
        let speedup = interp_ns as f64 / compiled_ns as f64;
        let pass = speedup >= 2.0;
        println!(
            "lang/sweep/interpreted                     tree {interp_ns:>10} ns  vm {compiled_ns:>10} ns  \
             speedup {speedup:>5.2}x  (gate >= 2x)"
        );
        records3.push(serde_json::json!({
            "bench": "lang/executor-sweep",
            "group": "kernel-compile",
            "ranks": nprocs,
            "nnode": nnode,
            "nedge": nedge,
            "interpreted_median_ns": interp_ns as u64,
            "compiled_median_ns": compiled_ns as u64,
            "speedup": speedup,
            "gate": 2.0,
            "gated": true,
            "gate_arms_at_cores": 1,
            "available_cores": cores,
            "pass": pass,
        }));
        if !pass {
            failed = true;
        }
    }
    let doc3 = serde_json::json!({
        "baseline": "chaos-lang executor sweep (gather + rank-parallel compute + scatter over a reused schedule) with the FORALL body interpreted by the retained tree-walker vs compiled to register bytecode (KernelVm), same process, same machine; array values, modeled clocks and CommStats asserted byte-identical across modes before timing. Gate: compiled must be >= 2x faster.",
        "records": records3,
    });
    std::fs::write(&out3_path, serde_json::to_string_pretty(&doc3).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out3_path}: {e}"));
    println!("wrote {out3_path}");

    // --- BENCH_4: per-phase overhead, pooled vs scoped-spawn at small N ---
    let mut records4: Vec<serde_json::Value> = Vec::new();
    {
        // Small enough that per-phase engine overhead dominates the data
        // movement: the iteration's two exchange phases move ~KBs, while
        // spawning 4 scoped threads per phase costs tens of µs. The shared
        // fixture (see spmd_bench) is also what the phase_overhead
        // criterion bench drives.
        let nprocs = 4usize;
        let workload = phase_overhead_workload(nprocs);
        let n = workload.1.len();
        let (seq_ns, thr_ns, pool_ns) = engine_comparison_row(nprocs, workload, 25);
        let overhead_ratio = thr_ns as f64 / pool_ns as f64;
        // The >=2x bar asks the pool to beat per-phase thread spawn by a
        // wide margin. On hosts with < 4 cores the spawned threads
        // timeshare and the comparison measures the scheduler, not the
        // engines, so the row auto-arms only at >= 4 cores.
        let gated = cores >= 4;
        let pass = !gated || overhead_ratio >= 2.0;
        println!(
            "executor/phase-overhead/{nprocs} sequential {seq_ns:>9} ns  spawn {thr_ns:>9} ns  \
             pooled {pool_ns:>9} ns  overhead ratio {overhead_ratio:>5.2}x  ({} cores{})",
            cores,
            if gated {
                ", gate >= 2x"
            } else {
                ", informational"
            }
        );
        records4.push(serde_json::json!({
            "bench": format!("executor/phase-overhead/{nprocs}"),
            "group": "phase-overhead",
            "ranks": nprocs,
            "n": n,
            "sequential_median_ns": seq_ns as u64,
            "threaded_spawn_median_ns": thr_ns as u64,
            "pooled_median_ns": pool_ns as u64,
            "overhead_ratio": overhead_ratio,
            "available_cores": cores,
            "gate": 2.0,
            "gated": gated,
            "gate_arms_at_cores": 4,
            "pass": pass,
        }));
        if !pass {
            failed = true;
        }
    }
    let doc4 = serde_json::json!({
        "baseline": "ThreadedBackend (one scoped OS thread per rank per phase) vs PooledBackend (persistent workers, epoch barrier), one steady-state executor iteration over a small-N workload where per-phase engine overhead dominates; results verified byte-identical before timing. The >=2x lower-overhead gate arms itself from the recorded available_cores (>= gate_arms_at_cores).",
        "records": records4,
    });
    std::fs::write(&out4_path, serde_json::to_string_pretty(&doc4).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out4_path}: {e}"));
    println!("wrote {out4_path}");

    // --- BENCH_5: rank-parallel partitioner scans, serial vs pooled ---
    let mut records5: Vec<serde_json::Value> = Vec::new();
    {
        // The shared fixture (also driven by the partitioners criterion
        // bench's partitioner_scans group): big enough that RSB's matvec
        // work dominates the per-scan pool hand-off (~µs) and RCB's top
        // levels take the histogram path. 4 ranks so that at the gate's
        // arming threshold (4 cores) every rank owns a core — the same
        // one-core-per-rank rule BENCH_2 applies — leaving the 2x bar
        // real headroom instead of measuring timesharing.
        let geocol = partitioner_scan_geocol(40_000);
        let nprocs = 4usize;
        let rsb = partitioner_scan_rsb();
        let cases: [(&str, &dyn Partitioner, bool); 2] =
            [("rsb", &rsb, true), ("rcb", &RcbPartitioner, false)];
        for (name, partitioner, rsb_gate) in cases {
            // Byte-identity before timing: the coupler-driven pooled run
            // must reproduce the pure serial partitioning exactly (the
            // fixed-block scan structure guarantees it for any rank count).
            let oracle = partitioner.partition(&geocol, nprocs);
            {
                let mut pool = PooledBackend::from_config(MachineConfig::ipsc860(nprocs));
                let outcome = MapperCoupler.partition(&mut pool, partitioner, &geocol);
                assert_eq!(
                    outcome.partitioning.owners(),
                    oracle.owners(),
                    "{name}: pooled scans diverged from the serial partition() oracle"
                );
            }
            let samples = 7;
            let serial_ns = median_ns(samples, || {
                std::hint::black_box(partitioner.partition(&geocol, nprocs));
            });
            let mut pool = PooledBackend::from_config(MachineConfig::ipsc860(nprocs));
            let pooled_ns = median_ns(samples, || {
                std::hint::black_box(MapperCoupler.partition(&mut pool, partitioner, &geocol));
            });
            let speedup = serial_ns as f64 / pooled_ns as f64;
            // The gate asks the pooled scans to beat the driver-side loop
            // by 2x; it arms on >= 4 cores (one per rank, 2x headroom over
            // the bar — below that the rank chunks timeshare and the ratio
            // measures scheduler noise), and only for RSB — the
            // matvec-dominated partitioner the scans were built for; RCB's
            // histogram levels are context.
            let gated = rsb_gate && cores >= 4;
            let pass = !gated || speedup >= 2.0;
            println!(
                "partitioner/scans/{name:<4} serial {serial_ns:>11} ns  pooled {pooled_ns:>11} ns  \
                 speedup {speedup:>5.2}x  ({} cores{})",
                cores,
                if gated { ", gate >= 2x" } else { ", informational" }
            );
            records5.push(serde_json::json!({
                "bench": format!("partitioner/scans/{name}"),
                "group": "partitioner-scans",
                "ranks": nprocs,
                "nnodes": geocol.nvertices(),
                "nedges": geocol.nedges(),
                "serial_median_ns": serial_ns as u64,
                "pooled_median_ns": pooled_ns as u64,
                "speedup": speedup,
                "available_cores": cores,
                "gate": 2.0,
                "gated": gated,
                "gate_arms_at_cores": if rsb_gate {
                    serde_json::json!(4)
                } else {
                    serde_json::Value::Null
                },
                "pass": pass,
            }));
            if !pass {
                failed = true;
            }
        }
    }
    let doc5 = serde_json::json!({
        "baseline": "pure driver-side Partitioner::partition() vs the same partitioner driven through MapperCoupler::partition over PooledBackend (RankScans scans rank-parallel on the worker pool), same GeoCoL, same process; partitionings asserted byte-identical before timing (fixed-block scans make the result independent of rank count and engine). The >=2x gate on the RSB row arms itself from the recorded available_cores (>= gate_arms_at_cores).",
        "records": records5,
    });
    std::fs::write(&out5_path, serde_json::to_string_pretty(&doc5).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out5_path}: {e}"));
    println!("wrote {out5_path}");

    // --- BENCH_6: epoch-checkpoint overhead + rollback recovery ---
    let mut records6: Vec<serde_json::Value> = Vec::new();
    {
        let (nprocs, nnode, nedge) = (8usize, 40_000usize, 120_000usize);
        let inputs = edge_program_inputs(nnode, nedge);
        let (base, cp, label) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
        let (ckpt, _, _) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
        let mut base = base;
        let mut ckpt = ckpt.with_checkpoint_every(8);

        // Checkpointing only copies state and charges modeled scan cost:
        // the array values must be untouched by the cadence.
        for _ in 0..8 {
            base.execute_loop(&cp, &label).expect("sweep");
            ckpt.execute_loop(&cp, &label).expect("sweep");
        }
        let yb = base.real_global("y").expect("y");
        let yc = ckpt.real_global("y").expect("y");
        for (i, (a, b)) in yb.iter().zip(&yc).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "y[{i}] perturbed by checkpointing"
            );
        }

        // Interleave the paired batches so container noise / frequency
        // drift lands on both sides of the gated ratio, not just one.
        let samples = 15;
        let mut base_times: Vec<u128> = Vec::with_capacity(samples);
        let mut ckpt_times: Vec<u128> = Vec::with_capacity(samples);
        for _ in 0..3 {
            for _ in 0..8 {
                base.execute_loop(&cp, &label).expect("sweep");
                ckpt.execute_loop(&cp, &label).expect("sweep");
            }
        }
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..8 {
                base.execute_loop(&cp, &label).expect("sweep");
            }
            base_times.push(t.elapsed().as_nanos());
            let t = Instant::now();
            for _ in 0..8 {
                ckpt.execute_loop(&cp, &label).expect("sweep");
            }
            ckpt_times.push(t.elapsed().as_nanos());
        }
        base_times.sort_unstable();
        ckpt_times.sort_unstable();
        let base_ns = base_times[samples / 2];
        let ckpt_ns = ckpt_times[samples / 2];
        let overhead = ckpt_ns as f64 / base_ns as f64 - 1.0;
        let pass = overhead <= 0.10;
        println!(
            "lang/checkpoint-overhead/8-epochs    plain {base_ns:>11} ns  checkpointed {ckpt_ns:>11} ns  \
             overhead {:>5.1}%  (gate <= 10%)",
            100.0 * overhead
        );
        records6.push(serde_json::json!({
            "bench": "lang/checkpoint-overhead",
            "group": "fault-recovery",
            "ranks": nprocs,
            "nnode": nnode,
            "nedge": nedge,
            "checkpoint_every_epochs": 8,
            "sweeps_per_sample": 8,
            "base_median_ns": base_ns as u64,
            "checkpoint_median_ns": ckpt_ns as u64,
            "overhead": overhead,
            "available_cores": cores,
            "gate": 0.10,
            "gated": true,
            "gate_arms_at_cores": 1,
            "pass": pass,
        }));
        if !pass {
            failed = true;
        }

        // Rollback recovery, informational: one injected kernel panic late
        // in the sweeps, recovered via RollbackToCheckpoint (restore the
        // last epoch checkpoint, replay the journaled sweeps), asserted
        // bit-identical to the fault-free run before reporting the cost.
        let sweeps = 12usize;
        let preamble_epoch = {
            let (probe, _, _) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
            probe.machine().epoch()
        };
        let run_case = |plan: Option<Arc<FaultPlan>>| -> (Executor, u128) {
            let (exec, cp2, label2) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
            let mut exec = exec.with_checkpoint_every(8);
            if let Some(p) = plan {
                exec = exec
                    .with_fault_plan(p)
                    .with_recovery_policy(RecoveryPolicy::RollbackToCheckpoint);
            }
            let t = Instant::now();
            for _ in 0..sweeps {
                exec.execute_loop(&cp2, &label2).expect("sweep");
            }
            (exec, t.elapsed().as_nanos())
        };
        let (clean, clean_ns) = run_case(None);
        let end_epoch = clean.machine().epoch();
        let fault_epoch = preamble_epoch + 3 * (end_epoch - preamble_epoch) / 4;
        let plan =
            Arc::new(FaultPlan::new().with_fault(fault_epoch, nprocs - 1, FaultKind::KernelPanic));
        // The injected panic is caught and recovered by the executor;
        // silence the default hook so the expected payload does not spray a
        // backtrace into the CI log.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (recovered, recovered_ns) = run_case(Some(plan));
        std::panic::set_hook(prev_hook);

        let ya = clean.real_global("y").expect("y");
        let yr = recovered.real_global("y").expect("y");
        for (i, (a, b)) in ya.iter().zip(&yr).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "y[{i}] diverged after recovery");
        }
        let (ea, er) = (clean.machine().elapsed(), recovered.machine().elapsed());
        for p in 0..nprocs {
            assert_eq!(
                ea.per_proc[p].to_bits(),
                er.per_proc[p].to_bits(),
                "modeled clocks diverged after recovery"
            );
        }
        assert_eq!(
            clean.machine().stats().grand_totals(),
            recovered.machine().stats().grand_totals(),
            "statistics diverged after recovery"
        );
        let recovery_overhead = recovered_ns as f64 / clean_ns as f64 - 1.0;
        println!(
            "lang/rollback-recovery               clean {clean_ns:>11} ns  recovered   {recovered_ns:>11} ns  \
             overhead {:>5.1}%  (informational, bit-identical)",
            100.0 * recovery_overhead
        );
        records6.push(serde_json::json!({
            "bench": "lang/rollback-recovery",
            "group": "fault-recovery",
            "ranks": nprocs,
            "nnode": nnode,
            "nedge": nedge,
            "sweeps": sweeps,
            "fault_epoch": fault_epoch,
            "clean_ns": clean_ns as u64,
            "recovered_ns": recovered_ns as u64,
            "recovery_overhead": recovery_overhead,
            "bit_identical": true,
            "available_cores": cores,
            "gate": serde_json::Value::Null,
            "gated": false,
            "gate_arms_at_cores": serde_json::Value::Null,
            "pass": true,
        }));
    }
    let doc6 = serde_json::json!({
        "baseline": "chaos-lang executor sweeps with epoch checkpointing disabled vs checkpointing every 8 epochs (dirty-array value copies + machine snapshot + modeled scan charges), same process, same data; values asserted byte-identical across cadences before timing. Gate: <= 10% wall-clock overhead. The rollback-recovery row injects one kernel panic, recovers via RollbackToCheckpoint and asserts bit-identity of values, clocks and statistics; its cost is informational.",
        "records": records6,
    });
    std::fs::write(&out6_path, serde_json::to_string_pretty(&doc6).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out6_path}: {e}"));
    println!("wrote {out6_path}");

    // --- BENCH_7: fused vs split sweep (one epoch vs one per phase) ---
    let mut records7: Vec<serde_json::Value> = Vec::new();
    {
        // Small enough that the per-phase engine hand-off (a pool broadcast
        // release + completion barrier per phase on the pooled engine)
        // dominates the sweep's data movement: the split path pays it for
        // the gather, the compute and the scatter, the fused path once.
        let (nprocs, workers, nnode, nedge) = (4usize, 3usize, 3_000usize, 6_000usize);
        let inputs = edge_program_inputs(nnode, nedge);

        // Byte-identity before timing, on both engines: fused and split
        // sweeps must agree on values, modeled clocks and statistics
        // bit-for-bit — fusion is pure overhead removal.
        let (fused_pool, cp, label) =
            edge_executor_pooled(KernelMode::Compiled, nprocs, workers, true, &inputs);
        let (split_pool, _, _) =
            edge_executor_pooled(KernelMode::Compiled, nprocs, workers, false, &inputs);
        let (fused_seq, _, _) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
        let (split_seq, _, _) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
        let mut fused_pool = fused_pool;
        let mut split_pool = split_pool;
        let mut fused_seq = fused_seq;
        let mut split_seq = split_seq.with_phase_fusion(false);
        for _ in 0..3 {
            fused_pool.execute_loop(&cp, &label).expect("fused sweep");
            split_pool.execute_loop(&cp, &label).expect("split sweep");
            fused_seq.execute_loop(&cp, &label).expect("fused sweep");
            split_seq.execute_loop(&cp, &label).expect("split sweep");
        }
        let yf = fused_pool.real_global("y").expect("y");
        for (other, side) in [
            (split_pool.real_global("y").expect("y"), "split pooled"),
            (fused_seq.real_global("y").expect("y"), "fused sequential"),
            (split_seq.real_global("y").expect("y"), "split sequential"),
        ] {
            for (i, (a, b)) in yf.iter().zip(&other).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "y[{i}] diverged ({side})");
            }
        }
        let ef = fused_pool.machine().elapsed();
        for (other, side) in [
            (split_pool.machine().elapsed(), "split pooled"),
            (fused_seq.machine().elapsed(), "fused sequential"),
            (split_seq.machine().elapsed(), "split sequential"),
        ] {
            for p in 0..nprocs {
                assert_eq!(
                    ef.per_proc[p].to_bits(),
                    other.per_proc[p].to_bits(),
                    "modeled clocks diverged ({side})"
                );
            }
        }
        let sf = fused_pool.machine().stats().grand_totals();
        assert_eq!(
            sf,
            split_pool.machine().stats().grand_totals(),
            "statistics diverged (split pooled)"
        );
        assert_eq!(
            sf,
            split_seq.machine().stats().grand_totals(),
            "statistics diverged (split sequential)"
        );

        // Interleave the paired measurements so container noise lands on
        // both sides of the gated ratio.
        let samples = 25usize;
        let batch = 4usize;
        let measure = |fused: &mut dyn FnMut(), split: &mut dyn FnMut()| -> (u128, u128) {
            let mut fused_times: Vec<u128> = Vec::with_capacity(samples);
            let mut split_times: Vec<u128> = Vec::with_capacity(samples);
            for _ in 0..samples {
                let t = Instant::now();
                for _ in 0..batch {
                    fused();
                }
                fused_times.push(t.elapsed().as_nanos() / batch as u128);
                let t = Instant::now();
                for _ in 0..batch {
                    split();
                }
                split_times.push(t.elapsed().as_nanos() / batch as u128);
            }
            fused_times.sort_unstable();
            split_times.sort_unstable();
            (fused_times[samples / 2], split_times[samples / 2])
        };
        let (fused_pool_ns, split_pool_ns) = measure(
            &mut || {
                fused_pool.execute_loop(&cp, &label).expect("fused sweep");
            },
            &mut || {
                split_pool.execute_loop(&cp, &label).expect("split sweep");
            },
        );
        let (fused_seq_ns, split_seq_ns) = measure(
            &mut || {
                fused_seq.execute_loop(&cp, &label).expect("fused sweep");
            },
            &mut || {
                split_seq.execute_loop(&cp, &label).expect("split sweep");
            },
        );

        // The pooled row is the gate: the fused sweep must be >= 1.5x the
        // split one. It arms at >= 4 cores (one per rank) — below that the
        // worker lanes timeshare and the hand-off the fusion removes
        // measures the scheduler, not the engine. The sequential row is
        // informational: the Machine engine has no per-phase hand-off, so
        // it bounds the non-engine part of the win.
        let pooled_speedup = split_pool_ns as f64 / fused_pool_ns as f64;
        let seq_speedup = split_seq_ns as f64 / fused_seq_ns as f64;
        let gated = cores >= 4;
        let pass = !gated || pooled_speedup >= 1.5;
        println!(
            "lang/sweep-fusion/pooled             split {split_pool_ns:>11} ns  fused     {fused_pool_ns:>11} ns  \
             speedup {pooled_speedup:>5.2}x  ({} cores{})",
            cores,
            if gated {
                ", gate >= 1.5x"
            } else {
                ", informational"
            }
        );
        println!(
            "lang/sweep-fusion/sequential         split {split_seq_ns:>11} ns  fused     {fused_seq_ns:>11} ns  \
             speedup {seq_speedup:>5.2}x  (informational)"
        );
        records7.push(serde_json::json!({
            "bench": "lang/sweep-fusion/pooled",
            "group": "sweep-fusion",
            "ranks": nprocs,
            "workers": workers,
            "nnode": nnode,
            "nedge": nedge,
            "split_median_ns": split_pool_ns as u64,
            "fused_median_ns": fused_pool_ns as u64,
            "speedup": pooled_speedup,
            "available_cores": cores,
            "gate": 1.5,
            "gated": gated,
            "gate_arms_at_cores": 4,
            "pass": pass,
        }));
        records7.push(serde_json::json!({
            "bench": "lang/sweep-fusion/sequential",
            "group": "sweep-fusion",
            "ranks": nprocs,
            "nnode": nnode,
            "nedge": nedge,
            "split_median_ns": split_seq_ns as u64,
            "fused_median_ns": fused_seq_ns as u64,
            "speedup": seq_speedup,
            "available_cores": cores,
            "gate": serde_json::Value::Null,
            "gated": false,
            "gate_arms_at_cores": serde_json::Value::Null,
            "pass": true,
        }));
        if !pass {
            failed = true;
        }
    }
    let doc7 = serde_json::json!({
        "baseline": "chaos-lang executor sweep with phase fusion disabled (one engine phase per gather / compute / scatter, each paying its own pool release + barrier) vs the fused Backend::run_sweep path (gathers folded driver-side, compute + scatter as one epoch with one broadcast release), same program, same process; values, modeled clocks and CommStats asserted byte-identical across paths and engines before timing. The >=1.5x gate on the pooled row arms itself from the recorded available_cores (>= gate_arms_at_cores); the sequential row is informational context.",
        "records": records7,
    });
    std::fs::write(&out7_path, serde_json::to_string_pretty(&doc7).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out7_path}: {e}"));
    println!("wrote {out7_path}");

    // --- BENCH_8: flight-recorder overhead, traced vs untraced sweeps ---
    let mut records8: Vec<serde_json::Value> = Vec::new();
    {
        let (nprocs, nnode, nedge) = (8usize, 40_000usize, 120_000usize);
        let inputs = edge_program_inputs(nnode, nedge);
        let (base, cp, label) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
        let (traced, _, _) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
        let mut base = base;
        let sink = Arc::new(TraceSink::new(0));
        let mut traced = traced.with_trace(Arc::clone(&sink));

        // The sink only observes: the traced run's values, modeled clocks
        // and statistics must be bit-identical to the untraced one.
        for _ in 0..8 {
            base.execute_loop(&cp, &label).expect("sweep");
            traced.execute_loop(&cp, &label).expect("sweep");
        }
        let yb = base.real_global("y").expect("y");
        let yt = traced.real_global("y").expect("y");
        for (i, (a, b)) in yb.iter().zip(&yt).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "y[{i}] perturbed by tracing");
        }
        let (eb, et) = (base.machine().elapsed(), traced.machine().elapsed());
        for p in 0..nprocs {
            assert_eq!(
                eb.per_proc[p].to_bits(),
                et.per_proc[p].to_bits(),
                "modeled clocks perturbed by tracing"
            );
        }
        assert_eq!(
            base.machine().stats().grand_totals(),
            traced.machine().stats().grand_totals(),
            "statistics perturbed by tracing"
        );

        // Interleave the paired batches so container noise / frequency
        // drift lands on both sides of the gated ratio, not just one.
        let samples = 15;
        let mut base_times: Vec<u128> = Vec::with_capacity(samples);
        let mut traced_times: Vec<u128> = Vec::with_capacity(samples);
        for _ in 0..3 {
            for _ in 0..8 {
                base.execute_loop(&cp, &label).expect("sweep");
                traced.execute_loop(&cp, &label).expect("sweep");
            }
        }
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..8 {
                base.execute_loop(&cp, &label).expect("sweep");
            }
            base_times.push(t.elapsed().as_nanos());
            let t = Instant::now();
            for _ in 0..8 {
                traced.execute_loop(&cp, &label).expect("sweep");
            }
            traced_times.push(t.elapsed().as_nanos());
        }
        base_times.sort_unstable();
        traced_times.sort_unstable();
        let base_ns = base_times[samples / 2];
        let traced_ns = traced_times[samples / 2];
        let overhead = traced_ns as f64 / base_ns as f64 - 1.0;
        let pass = overhead <= 0.10;
        println!(
            "lang/trace-overhead/8-sweeps         plain {base_ns:>11} ns  traced       {traced_ns:>11} ns  \
             overhead {:>5.1}%  (gate <= 10%)",
            100.0 * overhead
        );
        records8.push(serde_json::json!({
            "bench": "lang/trace-overhead",
            "group": "observability",
            "ranks": nprocs,
            "nnode": nnode,
            "nedge": nedge,
            "sweeps_per_sample": 8,
            "base_median_ns": base_ns as u64,
            "traced_median_ns": traced_ns as u64,
            "overhead": overhead,
            "ring_events_dropped": sink.dropped(),
            "available_cores": cores,
            "gate": 0.10,
            "gated": true,
            "gate_arms_at_cores": 1,
            "pass": pass,
        }));
        if !pass {
            failed = true;
        }
    }
    let doc8 = serde_json::json!({
        "baseline": "chaos-lang executor sweeps with no TraceSink installed vs the same sweeps with the flight recorder enabled (bounded per-lane rings, wall + modeled stamps on every event), same process, same data; values, modeled clocks and statistics asserted bit-identical across the two runs before timing. Gate: <= 10% wall-clock overhead.",
        "records": records8,
    });
    std::fs::write(&out8_path, serde_json::to_string_pretty(&doc8).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out8_path}: {e}"));
    println!("wrote {out8_path}");

    // --- BENCH_9: metrics-registry overhead, metered vs bare sweeps ---
    let mut records9: Vec<serde_json::Value> = Vec::new();
    {
        let (nprocs, nnode, nedge) = (8usize, 40_000usize, 120_000usize);
        let inputs = edge_program_inputs(nnode, nedge);
        let (base, cp, label) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
        let (metered, _, _) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
        let mut base = base;
        let registry = Arc::new(MetricsRegistry::new(0));
        let mut metered = metered.with_metrics(Arc::clone(&registry));

        // The registry only observes: the metered run's values, modeled
        // clocks and statistics must be bit-identical to the bare one.
        for _ in 0..8 {
            base.execute_loop(&cp, &label).expect("sweep");
            metered.execute_loop(&cp, &label).expect("sweep");
        }
        let yb = base.real_global("y").expect("y");
        let ym = metered.real_global("y").expect("y");
        for (i, (a, b)) in yb.iter().zip(&ym).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "y[{i}] perturbed by metering");
        }
        let (eb, em) = (base.machine().elapsed(), metered.machine().elapsed());
        for p in 0..nprocs {
            assert_eq!(
                eb.per_proc[p].to_bits(),
                em.per_proc[p].to_bits(),
                "modeled clocks perturbed by metering"
            );
        }
        assert_eq!(
            base.machine().stats().grand_totals(),
            metered.machine().stats().grand_totals(),
            "statistics perturbed by metering"
        );

        // The 5% gate is tighter than the container's slow load drift, so
        // gate the *median of per-pair ratios* (each pair is adjacent in
        // time, cancelling drift) with the pair order alternating so a
        // mid-pair load spike lands on both sides across the sample set.
        let samples = 25;
        let mut base_times: Vec<u128> = Vec::with_capacity(samples);
        let mut metered_times: Vec<u128> = Vec::with_capacity(samples);
        let mut ratios: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..3 {
            for _ in 0..8 {
                base.execute_loop(&cp, &label).expect("sweep");
                metered.execute_loop(&cp, &label).expect("sweep");
            }
        }
        let batch = |exec: &mut Executor| {
            let t = Instant::now();
            for _ in 0..8 {
                exec.execute_loop(&cp, &label).expect("sweep");
            }
            t.elapsed().as_nanos()
        };
        for i in 0..samples {
            let (b, m) = if i % 2 == 0 {
                let b = batch(&mut base);
                let m = batch(&mut metered);
                (b, m)
            } else {
                let m = batch(&mut metered);
                let b = batch(&mut base);
                (b, m)
            };
            base_times.push(b);
            metered_times.push(m);
            ratios.push(m as f64 / b as f64);
        }
        base_times.sort_unstable();
        metered_times.sort_unstable();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let base_ns = base_times[samples / 2];
        let metered_ns = metered_times[samples / 2];
        let overhead = ratios[samples / 2] - 1.0;
        let pass = overhead <= 0.05;
        println!(
            "lang/metrics-overhead/8-sweeps       plain {base_ns:>11} ns  metered      {metered_ns:>11} ns  \
             overhead {:>5.1}%  (gate <= 5%)",
            100.0 * overhead
        );
        let snap = registry.snapshot();
        let drift_rows: Vec<serde_json::Value> = registry
            .audit_report()
            .rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "kind": format!("{:?}", r.kind),
                    "samples": r.samples,
                    "modeled_s": r.modeled_s,
                    "wall_s": r.wall_s,
                    "drift": r.drift,
                    "slope": r.slope,
                    "residual_rms": r.residual_rms,
                })
            })
            .collect();
        records9.push(serde_json::json!({
            "bench": "lang/metrics-overhead",
            "group": "observability",
            "ranks": nprocs,
            "nnode": nnode,
            "nedge": nedge,
            "sweeps_per_sample": 8,
            "base_median_ns": base_ns as u64,
            "metered_median_ns": metered_ns as u64,
            "overhead": overhead,
            "lane_events_lost": snap.lane_events_lost,
            "available_cores": cores,
            "gate": 0.05,
            "gated": true,
            "gate_arms_at_cores": 1,
            "pass": pass,
            "model_drift": drift_rows,
        }));
        if !pass {
            failed = true;
        }
    }
    let doc9 = serde_json::json!({
        "baseline": "chaos-lang executor sweeps with no MetricsRegistry installed vs the same sweeps with the metrics registry enabled (sharded per-lane counters, fixed-bucket log2 latency histograms, cost-model audit sampling at phase-kind boundaries), same process, same data; values, modeled clocks and statistics asserted bit-identical across the two runs before timing. The gated overhead is the median of per-pair metered/base wall ratios over alternating-order adjacent pairs, which cancels slow container load drift the 5% gate would otherwise alias. Gate: <= 5% wall-clock overhead. model_drift records the cost-model auditor's modeled-vs-wall verdict per phase kind: drift ratio (wall/modeled), through-origin regression slope, residual RMS.",
        "records": records9,
    });
    std::fs::write(&out9_path, serde_json::to_string_pretty(&doc9).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out9_path}: {e}"));
    println!("wrote {out9_path}");

    // --- BENCH_10: incremental cross-loop schedules, fetch only the new ghosts ---
    let mut records10: Vec<serde_json::Value> = Vec::new();
    {
        use chaos_lang::{SAVED_GATHER_LABEL, SAVED_SCHEDULE_LABEL};
        let (nprocs, nnode, nedge, nface) = (8usize, 40_000usize, 120_000usize, 90_000usize);
        let inputs = multi_loop_inputs(nnode, nedge, nface);
        let (mut incr, cp) = multi_loop_executor(true, nprocs, &inputs);
        let (mut full, _) = multi_loop_executor(false, nprocs, &inputs);

        // Steady state: re-sweep both loops; the face loop's gathers read
        // the shared ghost region and fetch only its private difference.
        let sweeps = 8usize;
        for _ in 0..sweeps {
            for label in ["L1", "L2"] {
                incr.execute_loop(&cp, label).expect("sweep");
                full.execute_loop(&cp, label).expect("sweep");
            }
        }

        // Bit-identity before anything else: incremental schedules are a
        // communication optimization, not a numerical one.
        for a in ["x", "y", "z"] {
            let vi = incr.real_global(a).expect("array");
            let vf = full.real_global(a).expect("array");
            for (i, (u, v)) in vi.iter().zip(&vf).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{a}[{i}] perturbed by incremental schedules"
                );
            }
        }
        assert!(incr.report().incremental_bindings > 0, "nothing re-bound");

        // Hardware-independent gates on the modeled communication: strictly
        // fewer messages and bytes, with the saved ledger accounting for the
        // entire gap exactly (single-group loops charge-fold losslessly).
        let it = incr.machine().stats().grand_totals();
        let ft = full.machine().stats().grand_totals();
        let sched = incr.machine().stats().saved_labelled(SAVED_SCHEDULE_LABEL);
        let gath = incr.machine().stats().saved_labelled(SAVED_GATHER_LABEL);
        let fewer = it.messages < ft.messages && it.bytes < ft.bytes;
        let exact = ft.messages - it.messages == sched.messages + gath.messages
            && ft.bytes - it.bytes == sched.bytes + gath.bytes;
        let pass = fewer && exact;
        let msg_ratio = it.messages as f64 / ft.messages as f64;
        let byte_ratio = it.bytes as f64 / ft.bytes as f64;

        // Wall clock recorded for context, ungated (the win is modeled
        // traffic; wall time mostly reflects the simulator's own work).
        let batch = |exec: &mut Executor| {
            let t = Instant::now();
            for _ in 0..sweeps {
                for label in ["L1", "L2"] {
                    exec.execute_loop(&cp, label).expect("sweep");
                }
            }
            t.elapsed().as_nanos()
        };
        let samples = 9;
        let mut incr_times: Vec<u128> = Vec::with_capacity(samples);
        let mut full_times: Vec<u128> = Vec::with_capacity(samples);
        for i in 0..samples {
            if i % 2 == 0 {
                incr_times.push(batch(&mut incr));
                full_times.push(batch(&mut full));
            } else {
                full_times.push(batch(&mut full));
                incr_times.push(batch(&mut incr));
            }
        }
        incr_times.sort_unstable();
        full_times.sort_unstable();
        println!(
            "lang/incremental-schedules/messages  full {:>11}     incremental  {:>11}     \
             ratio {msg_ratio:>5.2}  (gate: fewer, ledger-exact)",
            ft.messages, it.messages
        );
        println!(
            "lang/incremental-schedules/bytes     full {:>11}     incremental  {:>11}     \
             ratio {byte_ratio:>5.2}",
            ft.bytes, it.bytes
        );
        records10.push(serde_json::json!({
            "bench": "lang/incremental-schedules",
            "group": "inspector",
            "ranks": nprocs,
            "nnode": nnode,
            "nedge": nedge,
            "nface": nface,
            "sweeps": sweeps,
            "full_messages": ft.messages,
            "incremental_messages": it.messages,
            "full_bytes": ft.bytes,
            "incremental_bytes": it.bytes,
            "message_ratio": msg_ratio,
            "byte_ratio": byte_ratio,
            "saved_schedule_messages": sched.messages,
            "saved_schedule_bytes": sched.bytes,
            "saved_gather_messages": gath.messages,
            "saved_gather_bytes": gath.bytes,
            "incremental_bindings": incr.report().incremental_bindings,
            "incremental_median_ns": incr_times[samples / 2] as u64,
            "full_median_ns": full_times[samples / 2] as u64,
            "available_cores": cores,
            "gate": "incremental < full on messages and bytes; gap == saved ledger exactly",
            "gated": true,
            "gate_arms_at_cores": 1,
            "pass": pass,
        }));
        if !pass {
            failed = true;
        }
    }
    let doc10 = serde_json::json!({
        "baseline": "two-loop mesh program (edge loop then face loop, both reading x) through the chaos-lang executor with incremental cross-loop schedules enabled vs the with_incremental_schedules(false) escape hatch, same process, same data; all array values asserted bit-identical across the two modes before anything is recorded. Gates are hardware-independent modeled-communication counts, not wall clock: the incremental run must send strictly fewer request-exchange/gather messages and bytes, and the difference must equal the executor's saved ledger (incremental:schedule-build + incremental:gather) exactly. Median wall times for an 8-sweep batch are recorded ungated for context.",
        "records": records10,
    });
    std::fs::write(&out10_path, serde_json::to_string_pretty(&doc10).unwrap())
        .unwrap_or_else(|e| panic!("failed to write {out10_path}: {e}"));
    println!("wrote {out10_path}");

    if failed {
        eprintln!("perf gate FAILED: a benchmark group missed its gate (see rows above)");
        std::process::exit(1);
    }
}
