//! Table 3 — detailed performance of the compiler-linked coordinate
//! bisection partitioner with schedule reuse: partitioner / inspector /
//! remap / executor / total, across the workload × processor grid.
//!
//! Run `cargo run -p chaos-bench --bin table3 --release` (add `--quick` for
//! a scaled-down smoke run).

use chaos_bench::cli::{standard_grid, Options};
use chaos_bench::experiment::{ExperimentConfig, Method, PhaseTimes};
use chaos_bench::handcoded::run_handcoded;
use chaos_bench::tables::TextTable;

fn main() {
    let opts = Options::from_env();
    let grid = standard_grid();

    let mut header = vec!["(Time in secs)".to_string()];
    let mut results: Vec<(String, PhaseTimes)> = Vec::new();
    for (kind, procs) in &grid {
        let workload = kind.build(opts.scale);
        for &p in procs {
            header.push(format!("{} P={p}", kind.label()));
            let cfg = ExperimentConfig::paper(p, Method::Rcb)
                .with_iterations(opts.iterations)
                .with_scale(opts.scale);
            let t = run_handcoded(&workload, &cfg);
            eprintln!(
                "  [{} P={p}] total={:.2}s executor={:.2}s wall={:.1}s",
                kind.label(),
                t.total,
                t.executor,
                t.wall_seconds
            );
            results.push((format!("{} P={p}", kind.label()), t));
        }
    }

    let mut table = TextTable::new(
        &format!(
            "Table 3: Compiler-linked coordinate bisection with schedule reuse ({} executor iterations, modeled seconds)",
            opts.iterations
        ),
        header,
    );
    for row_label in ["Partitioner", "Inspector", "Remap", "Executor", "Total"] {
        let values: Vec<f64> = results
            .iter()
            .map(|(_, t)| match row_label {
                "Partitioner" => t.partitioner + t.graph_generation,
                "Inspector" => t.inspector,
                "Remap" => t.remap,
                "Executor" => t.executor,
                _ => t.total,
            })
            .collect();
        table.seconds_row(row_label, &values);
    }
    println!("{}", table.render());

    if let Some(path) = &opts.json {
        let records: Vec<_> = results
            .iter()
            .map(|(label, t)| serde_json::json!({"table": 3, "config": label, "phases": t}))
            .collect();
        std::fs::write(path, serde_json::to_string_pretty(&records).unwrap())
            .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
    }
}
