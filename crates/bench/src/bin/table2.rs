//! Table 2 — unstructured mesh template, 53K mesh, 32 processors:
//! compiler-generated vs hand-coded mapper coupler, across data-mapping
//! methods (binary coordinate bisection, BLOCK, spectral bisection), with
//! per-phase breakdown (graph generation, partitioner, inspector, remap,
//! executor, total).
//!
//! Run `cargo run -p chaos-bench --bin table2 --release` (add `--quick` for
//! a scaled-down smoke run).

use chaos_bench::cli::Options;
use chaos_bench::compilergen::run_compiler_generated;
use chaos_bench::experiment::{ExperimentConfig, Method, PhaseTimes};
use chaos_bench::handcoded::run_handcoded;
use chaos_bench::tables::TextTable;
use chaos_bench::workload::WorkloadKind;

fn main() {
    let opts = Options::from_env();
    let nprocs = 32;
    let workload = WorkloadKind::Mesh53k.build(opts.scale);

    // The paper's columns: coordinate bisection (compiler with schedule
    // reuse, compiler without schedule reuse, hand coded), BLOCK (hand
    // coded), spectral bisection (hand coded, compiler with reuse).
    struct Column {
        label: &'static str,
        method: Method,
        compiler: bool,
        reuse: bool,
    }
    let columns = [
        Column {
            label: "RCB Compiler (reuse)",
            method: Method::Rcb,
            compiler: true,
            reuse: true,
        },
        Column {
            label: "RCB Compiler (no reuse)",
            method: Method::Rcb,
            compiler: true,
            reuse: false,
        },
        Column {
            label: "RCB Hand Coded",
            method: Method::Rcb,
            compiler: false,
            reuse: true,
        },
        Column {
            label: "Block Hand Coded",
            method: Method::Block,
            compiler: false,
            reuse: true,
        },
        Column {
            label: "RSB Hand Coded",
            method: Method::Rsb,
            compiler: false,
            reuse: true,
        },
        Column {
            label: "RSB Compiler (reuse)",
            method: Method::Rsb,
            compiler: true,
            reuse: true,
        },
    ];

    let mut results: Vec<(String, PhaseTimes)> = Vec::new();
    for col in &columns {
        let cfg = ExperimentConfig::paper(nprocs, col.method)
            .with_reuse(col.reuse)
            .with_iterations(opts.iterations)
            .with_scale(opts.scale);
        let t = if col.compiler {
            run_compiler_generated(&workload, &cfg)
                .expect("compiler-generated experiment failed")
                .0
        } else {
            run_handcoded(&workload, &cfg)
        };
        eprintln!(
            "  [{}] total={:.2}s executor={:.2}s partitioner={:.2}s wall={:.1}s",
            col.label, t.total, t.executor, t.partitioner, t.wall_seconds
        );
        results.push((col.label.to_string(), t));
    }

    let mut header = vec!["(Time in secs)".to_string()];
    header.extend(results.iter().map(|(l, _)| l.clone()));
    let mut table = TextTable::new(
        &format!(
            "Table 2: Unstructured mesh template - 53K mesh - {nprocs} processors ({} executor iterations, modeled seconds)",
            opts.iterations
        ),
        header,
    );
    for row_label in [
        "Graph Generation",
        "Partitioner",
        "Inspector",
        "Remap",
        "Executor",
        "Total",
    ] {
        let values: Vec<f64> = results
            .iter()
            .map(|(_, t)| match row_label {
                "Graph Generation" => t.graph_generation,
                "Partitioner" => t.partitioner,
                "Inspector" => t.inspector,
                "Remap" => t.remap,
                "Executor" => t.executor,
                _ => t.total,
            })
            .collect();
        table.seconds_row(row_label, &values);
    }
    println!("{}", table.render());

    // The paper's headline claim: compiler-generated within ~10 % of
    // hand-coded (compare the reuse columns for each partitioner).
    let get = |label: &str| {
        results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, t)| t.total)
    };
    if let (Some(c), Some(h)) = (get("RCB Compiler (reuse)"), get("RCB Hand Coded")) {
        println!("RCB  compiler/hand total ratio: {:.3}", c / h);
    }
    if let (Some(c), Some(h)) = (get("RSB Compiler (reuse)"), get("RSB Hand Coded")) {
        println!("RSB  compiler/hand total ratio: {:.3}", c / h);
    }

    if let Some(path) = &opts.json {
        let records: Vec<_> = results
            .iter()
            .map(|(label, t)| serde_json::json!({"table": 2, "column": label, "phases": t}))
            .collect();
        std::fs::write(path, serde_json::to_string_pretty(&records).unwrap())
            .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
    }
}
