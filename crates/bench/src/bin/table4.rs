//! Table 4 — performance of naive BLOCK partitioning with schedule reuse:
//! inspector / remap / executor / total across the workload × processor
//! grid, for comparison against the irregular distributions of Table 3.
//!
//! Run `cargo run -p chaos-bench --bin table4 --release` (add `--quick` for
//! a scaled-down smoke run).

use chaos_bench::cli::{standard_grid, Options};
use chaos_bench::experiment::{ExperimentConfig, Method, PhaseTimes};
use chaos_bench::handcoded::run_handcoded;
use chaos_bench::tables::TextTable;

fn main() {
    let opts = Options::from_env();
    let grid = standard_grid();

    let mut header = vec!["(Time in secs)".to_string()];
    let mut results: Vec<(String, PhaseTimes, PhaseTimes)> = Vec::new();
    for (kind, procs) in &grid {
        let workload = kind.build(opts.scale);
        for &p in procs {
            header.push(format!("{} P={p}", kind.label()));
            let block_cfg = ExperimentConfig::paper(p, Method::Block)
                .with_iterations(opts.iterations)
                .with_scale(opts.scale);
            let block = run_handcoded(&workload, &block_cfg);
            // Also run RCB so the executor ratio (the point of the
            // comparison, Section 6.2) can be printed alongside.
            let rcb_cfg = ExperimentConfig::paper(p, Method::Rcb)
                .with_iterations(opts.iterations)
                .with_scale(opts.scale);
            let rcb = run_handcoded(&workload, &rcb_cfg);
            eprintln!(
                "  [{} P={p}] BLOCK executor={:.2}s vs RCB executor={:.2}s (ratio {:.2})",
                kind.label(),
                block.executor,
                rcb.executor,
                block.executor / rcb.executor.max(1e-12)
            );
            results.push((format!("{} P={p}", kind.label()), block, rcb));
        }
    }

    let mut table = TextTable::new(
        &format!(
            "Table 4: BLOCK partitioning with schedule reuse ({} executor iterations, modeled seconds)",
            opts.iterations
        ),
        header,
    );
    for row_label in ["Inspector", "Remap", "Executor", "Total"] {
        let values: Vec<f64> = results
            .iter()
            .map(|(_, t, _)| match row_label {
                "Inspector" => t.inspector,
                "Remap" => t.remap,
                "Executor" => t.executor,
                _ => t.total,
            })
            .collect();
        table.seconds_row(row_label, &values);
    }
    // Extra row not in the paper's table but implied by its Section 6.2
    // discussion: how much worse BLOCK's executor is than RCB's.
    let ratios: Vec<String> = results
        .iter()
        .map(|(_, block, rcb)| format!("{:.2}x", block.executor / rcb.executor.max(1e-12)))
        .collect();
    let mut ratio_row = vec!["Executor vs RCB".to_string()];
    ratio_row.extend(ratios);
    table.row(ratio_row);
    println!("{}", table.render());

    if let Some(path) = &opts.json {
        let records: Vec<_> = results
            .iter()
            .map(|(label, block, rcb)| {
                serde_json::json!({"table": 4, "config": label, "block": block, "rcb": rcb})
            })
            .collect();
        std::fs::write(path, serde_json::to_string_pretty(&records).unwrap())
            .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
    }
}
