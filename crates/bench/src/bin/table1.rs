//! Table 1 — execution time of the irregular loop for 100 iterations with
//! and without communication-schedule reuse.
//!
//! Paper setting: loop over edges of the 10K / 53K unstructured Euler meshes
//! and the 648-atom MD electrostatic loop, arrays decomposed irregularly
//! with recursive binary (coordinate) dissection, Intel iPSC/860.
//!
//! Run `cargo run -p chaos-bench --bin table1 --release` for the full-size
//! experiment or add `--quick` for a scaled-down smoke run.

use chaos_bench::cli::{standard_grid, Options};
use chaos_bench::experiment::{ExperimentConfig, Method};
use chaos_bench::handcoded::run_handcoded;
use chaos_bench::tables::{format_seconds, TextTable};

fn main() {
    let opts = Options::from_env();
    let grid = standard_grid();

    let mut header = vec!["(Time in secs)".to_string()];
    for (kind, procs) in &grid {
        for p in procs {
            header.push(format!("{} P={p}", kind.label()));
        }
    }
    let mut no_reuse_row = vec!["No Schedule Reuse".to_string()];
    let mut reuse_row = vec!["Schedule Reuse".to_string()];
    let mut records = Vec::new();

    for (kind, procs) in &grid {
        let workload = kind.build(opts.scale);
        for &p in procs {
            for reuse in [false, true] {
                let cfg = ExperimentConfig::paper(p, Method::Rcb)
                    .with_reuse(reuse)
                    .with_iterations(opts.iterations)
                    .with_scale(opts.scale);
                let t = run_handcoded(&workload, &cfg);
                // Table 1 reports the time of the 100-iteration loop itself:
                // inspector (repeated when reuse is off) + executor.
                let loop_time = t.inspector + t.executor;
                if reuse {
                    reuse_row.push(format_seconds(loop_time));
                } else {
                    no_reuse_row.push(format_seconds(loop_time));
                }
                records.push(serde_json::json!({
                    "table": 1,
                    "workload": kind.label(),
                    "nprocs": p,
                    "reuse": reuse,
                    "loop_seconds": loop_time,
                    "phases": t,
                }));
                eprintln!(
                    "  [{} P={p} reuse={reuse}] loop={:.2}s inspector_runs={} wall={:.1}s",
                    kind.label(),
                    loop_time,
                    t.inspector_runs,
                    t.wall_seconds
                );
            }
        }
    }

    let mut table = TextTable::new(
        &format!(
            "Table 1: Performance with and without schedule reuse ({} executor iterations, RCB-partitioned, modeled seconds)",
            opts.iterations
        ),
        header,
    );
    table.row(no_reuse_row);
    table.row(reuse_row);
    println!("{}", table.render());

    if let Some(path) = &opts.json {
        std::fs::write(path, serde_json::to_string_pretty(&records).unwrap())
            .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
    }
}
