//! Shared fixture for the thread-scaling measurements: one deterministic
//! irregular executor workload and the steady-state iteration driven over
//! it, used by both the `thread_scaling` criterion bench and `perf_check`'s
//! `BENCH_2.json` rows so the two can never measure different things.

use chaos_dmsim::Backend;
use chaos_runtime::{
    gather_into, scatter_op, AccessPattern, CommSchedule, DistArray, Distribution,
};

/// A deterministic irregular workload: `n` elements scattered over `nprocs`
/// ranks (multiplicative-hash map), each rank referencing `refs_per_rank`
/// pseudo-random globals (LCG). Returns the distribution, the input data
/// and the access pattern.
pub fn executor_workload(
    n: usize,
    nprocs: usize,
    refs_per_rank: usize,
) -> (Distribution, Vec<f64>, AccessPattern) {
    let map: Vec<u32> = (0..n).map(|i| ((i * 2654435761) % nprocs) as u32).collect();
    let dist = Distribution::irregular_from_map(&map, nprocs);
    let data: Vec<f64> = (0..n).map(|i| 1.0 + (i % 1021) as f64 * 0.001).collect();
    let mut pattern = AccessPattern::new(nprocs);
    let mut state = 0x53C93u64;
    for refs in pattern.refs.iter_mut() {
        refs.reserve(refs_per_rank);
        for _ in 0..refs_per_rank {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            refs.push(((state >> 33) as usize % n) as u32);
        }
    }
    (dist, data, pattern)
}

/// The small-N fixture for the per-phase-overhead comparison: a workload
/// tiny enough that per-phase engine overhead (thread spawn vs pool
/// barrier) dominates the data movement. Shared by `perf_check`'s
/// `BENCH_4.json` gate and the `phase_overhead` criterion bench so the two
/// can never measure different regimes.
pub fn phase_overhead_workload(nprocs: usize) -> (Distribution, Vec<f64>, AccessPattern) {
    executor_workload(2_000, nprocs, 4_000 / nprocs)
}

/// One steady-state executor iteration over a reused schedule: gather the
/// ghosts, scatter-add them back. The unit of work both thread-scaling
/// measurements time.
pub fn executor_iteration<B: Backend>(
    backend: &mut B,
    schedule: &CommSchedule,
    x: &DistArray<f64>,
    y: &mut DistArray<f64>,
    ghosts: &mut [Vec<f64>],
) {
    gather_into(backend, "bench", schedule, x, ghosts);
    scatter_op(backend, "bench", schedule, y, ghosts, |a, b| *a += b);
}
