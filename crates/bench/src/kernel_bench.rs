//! Shared fixture for the kernel-compilation measurements: one
//! deterministic irregular edge-loop program executed through `chaos-lang`
//! in both kernel modes, used by the `kernel_compile` criterion bench and
//! `perf_check`'s `BENCH_3.json` rows so the two can never measure
//! different things.

use chaos_dmsim::{MachineConfig, PooledBackend};
use chaos_lang::{
    lower_program, parse_program, CompiledProgram, Executor, KernelMode, ProgramInputs,
};

/// The paper's edge loop (loop L2): two reductions through two indirection
/// arrays with the edge-flux intrinsic — the body `perf_check` and the
/// criterion bench sweep.
pub const EDGE_PROGRAM: &str = r#"
    REAL*8 x(nnode), y(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK)
    DISTRIBUTE reg2(BLOCK)
    ALIGN x, y WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    CALL READ_DATA(x, y, end_pt1, end_pt2)
    FORALL i = 1, nedge
      REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
      REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
    END FORALL
"#;

/// Deterministic mesh-like inputs for [`EDGE_PROGRAM`]: random endpoints
/// within a bounded neighborhood, as in an unstructured mesh — edges near a
/// BLOCK boundary still cross processors (the sweep exercises ghost reads
/// and off-processor reductions), while the bulk of the work is the local
/// per-element kernel the compiler targets.
pub fn edge_program_inputs(nnode: usize, nedge: usize) -> ProgramInputs {
    let mut state = 0xBE17C0DEu64;
    let mut next = |m: usize| -> usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % m
    };
    let span = 256usize;
    let mut e1 = Vec::with_capacity(nedge);
    let mut e2 = Vec::with_capacity(nedge);
    for _ in 0..nedge {
        let a = next(nnode);
        let mut b = (a + 1 + next(span)).min(nnode - 1);
        if b == a {
            b = (a + 1) % nnode;
        }
        e1.push(a as u32 + 1);
        e2.push(b as u32 + 1);
    }
    ProgramInputs::new()
        .scalar("nnode", nnode)
        .scalar("nedge", nedge)
        .real(
            "x",
            (0..nnode).map(|i| (i as f64 * 0.7).sin() + 2.0).collect(),
        )
        .real("y", vec![0.0; nnode])
        .int("end_pt1", e1)
        .int("end_pt2", e2)
}

/// Lower [`EDGE_PROGRAM`] and run it once (inspector + first sweep) on a
/// fresh executor in the given kernel mode, returning the executor, the
/// compiled program and the loop label for steady-state re-sweeps.
pub fn edge_executor(
    mode: KernelMode,
    nprocs: usize,
    inputs: &ProgramInputs,
) -> (Executor, CompiledProgram, String) {
    let cp = lower_program(parse_program(EDGE_PROGRAM).expect("parse")).expect("lower");
    let label = cp
        .program
        .loop_labels()
        .last()
        .expect("template has a FORALL")
        .to_string();
    let mut exec =
        Executor::new(MachineConfig::ipsc860(nprocs), inputs.clone()).with_kernel_mode(mode);
    exec.run(&cp).expect("program runs");
    (exec, cp, label)
}

/// Two FORALLs over the same node distribution — the paper's mesh shape
/// where a later loop's ghost set overlaps an earlier one's. The shared
/// fixture behind `perf_check`'s `BENCH_10.json` rows: with incremental
/// schedules the face loop's inspector requests (and its steady-state
/// gathers) fetch only the ghosts the edge loop didn't already make
/// resident.
pub const MULTI_LOOP_PROGRAM: &str = r#"
    REAL*8 x(nnode), y(nnode), z(nnode)
    INTEGER e1(nedge), e2(nedge), f1(nface), f2(nface)
    DECOMPOSITION regn(nnode), rege(nedge), regf(nface)
    DISTRIBUTE regn(BLOCK)
    DISTRIBUTE rege(BLOCK)
    DISTRIBUTE regf(BLOCK)
    ALIGN x, y, z WITH regn
    ALIGN e1, e2 WITH rege
    ALIGN f1, f2 WITH regf
    CALL READ_DATA(x, y, z, e1, e2, f1, f2)
    FORALL i = 1, nedge
      REDUCE(ADD, y(e1(i)), EFLUX1(x(e1(i)), x(e2(i))))
      REDUCE(ADD, y(e2(i)), EFLUX2(x(e1(i)), x(e2(i))))
    END FORALL
    FORALL j = 1, nface
      REDUCE(ADD, z(f1(j)), x(f1(j)) * x(f2(j)))
    END FORALL
"#;

/// Deterministic inputs for [`MULTI_LOOP_PROGRAM`]: edges as in
/// [`edge_program_inputs`]; even faces repeat the pair of the
/// *proportionally corresponding* edge (same BLOCK fraction, hence the
/// same requesting rank — those ghosts are fully resident once the edge
/// loop has run, so whole request messages to far-away owners disappear),
/// odd faces read a narrow node neighborhood around their own BLOCK
/// fraction (new ghosts only from adjacent owners — the incremental fetch
/// is a neighbor exchange, not an all-to-all).
pub fn multi_loop_inputs(nnode: usize, nedge: usize, nface: usize) -> ProgramInputs {
    let mut state = 0xBE17C0DEu64;
    let mut next = |m: usize| -> usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % m
    };
    let span = 256usize;
    let mut e1 = Vec::with_capacity(nedge);
    let mut e2 = Vec::with_capacity(nedge);
    for _ in 0..nedge {
        let a = next(nnode);
        let mut b = (a + 1 + next(span)).min(nnode - 1);
        if b == a {
            b = (a + 1) % nnode;
        }
        e1.push(a as u32 + 1);
        e2.push(b as u32 + 1);
    }
    let mut f1 = Vec::with_capacity(nface);
    let mut f2 = Vec::with_capacity(nface);
    for k in 0..nface {
        if k % 2 == 0 {
            let j = k * nedge / nface;
            f1.push(e1[j]);
            f2.push(e2[j]);
        } else {
            let a = (k * nnode / nface + next(span)).min(nnode - 1);
            let mut b = (a + 1 + next(span / 4)).min(nnode - 1);
            if b == a {
                b = (a + 1) % nnode;
            }
            f1.push(a as u32 + 1);
            f2.push(b as u32 + 1);
        }
    }
    ProgramInputs::new()
        .scalar("nnode", nnode)
        .scalar("nedge", nedge)
        .scalar("nface", nface)
        .real(
            "x",
            (0..nnode).map(|i| (i as f64 * 0.7).sin() + 2.0).collect(),
        )
        .real("y", vec![0.0; nnode])
        .real("z", vec![0.0; nnode])
        .int("e1", e1)
        .int("e2", e2)
        .int("f1", f1)
        .int("f2", f2)
}

/// Lower [`MULTI_LOOP_PROGRAM`] and run it once (both inspectors + first
/// sweeps) with incremental cross-loop schedules on or off, returning the
/// executor and the compiled program for steady-state re-sweeps of `L1` and
/// `L2`.
pub fn multi_loop_executor(
    incremental: bool,
    nprocs: usize,
    inputs: &ProgramInputs,
) -> (Executor, CompiledProgram) {
    let cp = lower_program(parse_program(MULTI_LOOP_PROGRAM).expect("parse")).expect("lower");
    let mut exec = Executor::new(MachineConfig::ipsc860(nprocs), inputs.clone())
        .with_incremental_schedules(incremental);
    exec.run(&cp).expect("program runs");
    (exec, cp)
}

/// Pooled-engine variant of [`edge_executor`] with the fused sweep toggled:
/// the shared fixture behind `perf_check`'s `BENCH_7.json` rows and the
/// `sweep_fusion` criterion bench, so the two can never measure different
/// things. With `fusion` the steady-state sweep runs gather → compute →
/// scatter as one pooled epoch (one broadcast release, one completion
/// barrier); without it each phase pays its own pool hand-off.
pub fn edge_executor_pooled(
    mode: KernelMode,
    nprocs: usize,
    workers: usize,
    fusion: bool,
    inputs: &ProgramInputs,
) -> (Executor<PooledBackend>, CompiledProgram, String) {
    let cp = lower_program(parse_program(EDGE_PROGRAM).expect("parse")).expect("lower");
    let label = cp
        .program
        .loop_labels()
        .last()
        .expect("template has a FORALL")
        .to_string();
    let mut exec =
        Executor::new_pooled_with_workers(MachineConfig::ipsc860(nprocs), workers, inputs.clone())
            .with_kernel_mode(mode)
            .with_phase_fusion(fusion);
    exec.run(&cp).expect("program runs");
    (exec, cp, label)
}
