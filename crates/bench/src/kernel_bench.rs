//! Shared fixture for the kernel-compilation measurements: one
//! deterministic irregular edge-loop program executed through `chaos-lang`
//! in both kernel modes, used by the `kernel_compile` criterion bench and
//! `perf_check`'s `BENCH_3.json` rows so the two can never measure
//! different things.

use chaos_dmsim::{MachineConfig, PooledBackend};
use chaos_lang::{
    lower_program, parse_program, CompiledProgram, Executor, KernelMode, ProgramInputs,
};

/// The paper's edge loop (loop L2): two reductions through two indirection
/// arrays with the edge-flux intrinsic — the body `perf_check` and the
/// criterion bench sweep.
pub const EDGE_PROGRAM: &str = r#"
    REAL*8 x(nnode), y(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK)
    DISTRIBUTE reg2(BLOCK)
    ALIGN x, y WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    CALL READ_DATA(x, y, end_pt1, end_pt2)
    FORALL i = 1, nedge
      REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
      REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
    END FORALL
"#;

/// Deterministic mesh-like inputs for [`EDGE_PROGRAM`]: random endpoints
/// within a bounded neighborhood, as in an unstructured mesh — edges near a
/// BLOCK boundary still cross processors (the sweep exercises ghost reads
/// and off-processor reductions), while the bulk of the work is the local
/// per-element kernel the compiler targets.
pub fn edge_program_inputs(nnode: usize, nedge: usize) -> ProgramInputs {
    let mut state = 0xBE17C0DEu64;
    let mut next = |m: usize| -> usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % m
    };
    let span = 256usize;
    let mut e1 = Vec::with_capacity(nedge);
    let mut e2 = Vec::with_capacity(nedge);
    for _ in 0..nedge {
        let a = next(nnode);
        let mut b = (a + 1 + next(span)).min(nnode - 1);
        if b == a {
            b = (a + 1) % nnode;
        }
        e1.push(a as u32 + 1);
        e2.push(b as u32 + 1);
    }
    ProgramInputs::new()
        .scalar("nnode", nnode)
        .scalar("nedge", nedge)
        .real(
            "x",
            (0..nnode).map(|i| (i as f64 * 0.7).sin() + 2.0).collect(),
        )
        .real("y", vec![0.0; nnode])
        .int("end_pt1", e1)
        .int("end_pt2", e2)
}

/// Lower [`EDGE_PROGRAM`] and run it once (inspector + first sweep) on a
/// fresh executor in the given kernel mode, returning the executor, the
/// compiled program and the loop label for steady-state re-sweeps.
pub fn edge_executor(
    mode: KernelMode,
    nprocs: usize,
    inputs: &ProgramInputs,
) -> (Executor, CompiledProgram, String) {
    let cp = lower_program(parse_program(EDGE_PROGRAM).expect("parse")).expect("lower");
    let label = cp
        .program
        .loop_labels()
        .last()
        .expect("template has a FORALL")
        .to_string();
    let mut exec =
        Executor::new(MachineConfig::ipsc860(nprocs), inputs.clone()).with_kernel_mode(mode);
    exec.run(&cp).expect("program runs");
    (exec, cp, label)
}

/// Pooled-engine variant of [`edge_executor`] with the fused sweep toggled:
/// the shared fixture behind `perf_check`'s `BENCH_7.json` rows and the
/// `sweep_fusion` criterion bench, so the two can never measure different
/// things. With `fusion` the steady-state sweep runs gather → compute →
/// scatter as one pooled epoch (one broadcast release, one completion
/// barrier); without it each phase pays its own pool hand-off.
pub fn edge_executor_pooled(
    mode: KernelMode,
    nprocs: usize,
    workers: usize,
    fusion: bool,
    inputs: &ProgramInputs,
) -> (Executor<PooledBackend>, CompiledProgram, String) {
    let cp = lower_program(parse_program(EDGE_PROGRAM).expect("parse")).expect("lower");
    let label = cp
        .program
        .loop_labels()
        .last()
        .expect("template has a FORALL")
        .to_string();
    let mut exec =
        Executor::new_pooled_with_workers(MachineConfig::ipsc860(nprocs), workers, inputs.clone())
            .with_kernel_mode(mode)
            .with_phase_fusion(fusion);
    exec.run(&cp).expect("program runs");
    (exec, cp, label)
}
