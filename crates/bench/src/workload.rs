//! Adapters from the synthetic workload generators to the "pair loop" form
//! used by every experiment.
//!
//! Both of the paper's templates — the Euler edge sweep and the MD
//! electrostatic force loop — are loops over *pairs of elements* of a node /
//! atom array, accumulating a contribution into both endpoints. The harness
//! represents them uniformly as a [`PairLoopWorkload`].

use chaos_workloads::{edge_flux_kernel, MdConfig, MeshConfig, UnstructuredMesh, WaterBox};

/// Which paper workload an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The 10K-node unstructured Euler mesh.
    Mesh10k,
    /// The 53K-node unstructured Euler mesh.
    Mesh53k,
    /// The 648-atom water molecular-dynamics system.
    Md648,
}

impl WorkloadKind {
    /// Label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Mesh10k => "10K Mesh",
            WorkloadKind::Mesh53k => "53K Mesh",
            WorkloadKind::Md648 => "648 Atoms",
        }
    }

    /// Build the workload, optionally scaled down by `scale` (>1 divides the
    /// element counts; used by quick runs and integration tests).
    pub fn build(self, scale: usize) -> PairLoopWorkload {
        let scale = scale.max(1);
        match self {
            WorkloadKind::Mesh10k => mesh_workload(MeshConfig {
                nnodes: (10_000 / scale).max(64),
                ..MeshConfig::default()
            }),
            WorkloadKind::Mesh53k => mesh_workload(MeshConfig {
                nnodes: (53_000 / scale).max(64),
                ..MeshConfig::default()
            }),
            WorkloadKind::Md648 => md_workload(MdConfig {
                nmolecules: (216 / scale).max(8),
                ..MdConfig::default()
            }),
        }
    }
}

/// A pair-reduction loop workload in the form the experiments consume.
#[derive(Debug, Clone)]
pub struct PairLoopWorkload {
    /// Human-readable name.
    pub name: String,
    /// Number of node/atom elements.
    pub nnodes: usize,
    /// Spatial coordinates (3 axes) of each element.
    pub coords: [Vec<f64>; 3],
    /// Per-element computational load estimate (degree / interaction count).
    pub loads: Vec<f64>,
    /// First endpoint of each pair (0-based).
    pub e1: Vec<u32>,
    /// Second endpoint of each pair (0-based).
    pub e2: Vec<u32>,
    /// Per-element input state (Euler state value / atomic charge).
    pub input: Vec<f64>,
    /// The per-pair kernel: maps the endpoint input values to the
    /// contributions accumulated into endpoint 1 and endpoint 2.
    pub kernel: fn(f64, f64) -> (f64, f64),
    /// Approximate compute units per pair iteration (flop estimate charged
    /// to the simulated machine).
    pub ops_per_iteration: f64,
}

impl PairLoopWorkload {
    /// Number of pair iterations.
    pub fn npairs(&self) -> usize {
        self.e1.len()
    }

    /// Per-iteration reference lists (each iteration references its two
    /// endpoints).
    pub fn iteration_refs(&self) -> Vec<Vec<u32>> {
        self.e1
            .iter()
            .zip(&self.e2)
            .map(|(&a, &b)| vec![a, b])
            .collect()
    }

    /// Sequential reference result of one sweep starting from zero
    /// accumulators (used by correctness checks).
    pub fn sequential_sweep(&self) -> Vec<f64> {
        let mut y = vec![0.0; self.nnodes];
        for (&a, &b) in self.e1.iter().zip(&self.e2) {
            let (f1, f2) = (self.kernel)(self.input[a as usize], self.input[b as usize]);
            y[a as usize] += f1;
            y[b as usize] += f2;
        }
        y
    }
}

/// The shared partitioner-scan fixture: a full GeoCoL (geometry + load +
/// connectivity) built from the synthetic mesh at `nnodes` points. Used by
/// both `perf_check`'s BENCH_5 rows and the `partitioners` criterion
/// bench's `partitioner_scans` group so the gate and the bench measure the
/// same shape.
pub fn partitioner_scan_geocol(nnodes: usize) -> chaos_geocol::GeoCoL {
    let w = mesh_workload(MeshConfig::tiny(nnodes));
    chaos_geocol::GeoColBuilder::new(w.nnodes)
        .geometry(vec![
            w.coords[0].clone(),
            w.coords[1].clone(),
            w.coords[2].clone(),
        ])
        .load(w.loads.clone())
        .link(w.e1.clone(), w.e2.clone())
        .build()
        .expect("mesh workload yields a valid GeoCoL")
}

/// The reduced-iteration RSB configuration the partitioner-scan benches
/// time (full 200-iteration convergence would only lengthen the runs
/// without changing the serial-vs-pooled ratio).
pub fn partitioner_scan_rsb() -> chaos_geocol::RsbPartitioner {
    chaos_geocol::RsbPartitioner {
        power_iterations: 30,
        ..Default::default()
    }
}

/// The MD pair kernel: a symmetric charge-product interaction (a stand-in
/// for the electrostatic force magnitude; the endpoints receive equal and
/// opposite contributions, as in the paper's loop L2).
pub fn md_pair_kernel(q1: f64, q2: f64) -> (f64, f64) {
    let f = q1 * q2;
    (f, -f)
}

/// Build the Euler edge-sweep workload from a mesh configuration.
pub fn mesh_workload(config: MeshConfig) -> PairLoopWorkload {
    let mesh = UnstructuredMesh::generate(config);
    let input: Vec<f64> = mesh
        .xc
        .iter()
        .zip(&mesh.yc)
        .zip(&mesh.zc)
        .map(|((x, y), z)| 1.0 + (x * 3.1).sin() * (y * 2.3).cos() + 0.5 * z)
        .collect();
    PairLoopWorkload {
        name: format!("euler-{}k", mesh.nnodes() / 1000),
        nnodes: mesh.nnodes(),
        loads: mesh.degrees(),
        coords: [mesh.xc.clone(), mesh.yc.clone(), mesh.zc.clone()],
        e1: mesh.end_pt1.clone(),
        e2: mesh.end_pt2.clone(),
        input,
        kernel: edge_flux_kernel,
        ops_per_iteration: 20.0,
    }
}

/// Build the molecular-dynamics force-loop workload from an MD
/// configuration.
pub fn md_workload(config: MdConfig) -> PairLoopWorkload {
    let water = WaterBox::generate(config);
    PairLoopWorkload {
        name: format!("md-{}atoms", water.natoms()),
        nnodes: water.natoms(),
        loads: water.interaction_counts(),
        coords: [water.xc.clone(), water.yc.clone(), water.zc.clone()],
        e1: water.pair1.clone(),
        e2: water.pair2.clone(),
        input: water.charge.clone(),
        kernel: md_pair_kernel,
        ops_per_iteration: 30.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_workload_shapes() {
        let w = mesh_workload(MeshConfig::tiny(500));
        assert_eq!(w.nnodes, 500);
        assert_eq!(w.coords[0].len(), 500);
        assert_eq!(w.loads.len(), 500);
        assert!(w.npairs() > 500);
        assert_eq!(w.iteration_refs().len(), w.npairs());
    }

    #[test]
    fn md_workload_shapes() {
        let w = md_workload(MdConfig::tiny(27));
        assert_eq!(w.nnodes, 81);
        assert!(w.npairs() > 0);
        assert_eq!((w.kernel)(2.0, 3.0), (6.0, -6.0));
    }

    #[test]
    fn sequential_sweep_conserves_for_antisymmetric_kernels() {
        // Both kernels return equal-and-opposite contributions, so the sum of
        // the accumulator is (near) zero.
        for w in [
            mesh_workload(MeshConfig::tiny(300)),
            md_workload(MdConfig::tiny(27)),
        ] {
            let y = w.sequential_sweep();
            let total: f64 = y.iter().sum();
            let magnitude: f64 = y.iter().map(|v| v.abs()).sum();
            assert!(
                total.abs() < 1e-9 * magnitude.max(1.0),
                "{}: {total}",
                w.name
            );
        }
    }

    #[test]
    fn workload_kinds_build_scaled() {
        let w = WorkloadKind::Mesh10k.build(50);
        assert_eq!(w.nnodes, 200);
        let w = WorkloadKind::Md648.build(8);
        assert_eq!(w.nnodes, 81);
        assert_eq!(WorkloadKind::Mesh53k.label(), "53K Mesh");
    }
}
