//! # chaos-bench — the experiment harness behind the paper's tables
//!
//! This crate contains everything needed to regenerate the evaluation
//! section of the SC'93 paper on the simulated machine:
//!
//! * [`workload`] — adapters turning the synthetic mesh / molecular-dynamics
//!   generators into the "pair loop" form every experiment uses,
//! * [`experiment`] — experiment configuration and the phase-by-phase
//!   timing record the tables report (graph generation, partitioner,
//!   inspector, remap, executor, total),
//! * [`handcoded`] — the hand-embedded runtime version of the edge / force
//!   loop (calls `chaos-runtime` directly, as the paper's authors did when
//!   they "embedded our runtime support by hand"),
//! * [`compilergen`] — the compiler-generated version (the same template
//!   expressed in the Fortran-D-like mini-language and executed through
//!   `chaos-lang`),
//! * [`tables`] — plain-text table formatting shared by the `table1` ..
//!   `table4` and `all_tables` binaries,
//! * [`spmd_bench`] — the shared thread-scaling fixture timed by both the
//!   `thread_scaling` criterion bench and `perf_check`'s `BENCH_2.json`.
//!
//! Each binary prints one of the paper's tables; `all_tables` also writes a
//! JSON record next to the text so the reported numbers are reproducible.
//! The `perf_check` binary writes the `BENCH_*.json` gate artifacts —
//! `ARCHITECTURE.md` § "Performance gates" tabulates what each one gates
//! and at which core count its gate arms.

pub mod cli;
pub mod compilergen;
pub mod experiment;
pub mod handcoded;
pub mod kernel_bench;
pub mod spmd_bench;
pub mod tables;
pub mod workload;

pub use cli::{standard_grid, Options};
pub use experiment::{ExperimentConfig, Method, PhaseTimes};
pub use workload::{md_workload, mesh_workload, PairLoopWorkload, WorkloadKind};
