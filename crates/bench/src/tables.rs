//! Plain-text table formatting shared by the `table1` .. `table4` binaries.
//!
//! The tables mirror the layout of the paper's Tables 1–4: a header row of
//! workload / processor-count columns and one row per phase (or per reuse
//! setting), values in modeled seconds.

use crate::experiment::PhaseTimes;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: Vec<String>) -> Self {
        TextTable {
            title: title.to_string(),
            header,
            rows: Vec::new(),
        }
    }

    /// Append a row (first cell is the row label).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Append a row of second-valued cells with a label.
    pub fn seconds_row(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format_seconds(*v)));
        self.rows.push(cells);
    }

    /// Machine-readable twin of [`TextTable::render`]: the same title,
    /// header and rows as one JSON object, so harnesses can diff table
    /// contents without scraping the aligned text.
    pub fn to_json(&self) -> String {
        let value = serde_json::json!({
            "title": self.title.clone(),
            "header": self.header.clone(),
            "rows": self
                .rows
                .iter()
                .map(serde_json::ToValue::to_value)
                .collect::<Vec<_>>(),
        });
        serde_json::to_string(&value).unwrap_or_default()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let render_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}  "));
                } else {
                    line.push_str(&format!("{cell:>w$}  "));
                }
            }
            line.trim_end().to_string()
        };
        let header_line = render_row(&self.header, &widths);
        let sep = "-".repeat(header_line.len());
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&header_line);
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

/// Format a modeled-seconds value the way the paper's tables do: one decimal
/// place above 10 s, two below, three below 0.1 s.
pub fn format_seconds(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else if v >= 0.1 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// The standard per-phase rows as a JSON object keyed by phase label — the
/// machine-readable emit path for the per-phase breakdowns the tables print.
pub fn phase_rows_json(t: &PhaseTimes, include_graph_and_partitioner: bool) -> String {
    let fields: Vec<(String, serde_json::Value)> = phase_rows(t, include_graph_and_partitioner)
        .into_iter()
        .map(|(label, v)| (label.to_string(), serde_json::Value::Num(v)))
        .collect();
    serde_json::to_string(&serde_json::Value::Object(fields)).unwrap_or_default()
}

/// The standard per-phase rows (Tables 2–4): returns `(label, value)` pairs
/// in the paper's order.
pub fn phase_rows(t: &PhaseTimes, include_graph_and_partitioner: bool) -> Vec<(&'static str, f64)> {
    let mut rows = Vec::new();
    if include_graph_and_partitioner {
        rows.push(("Graph Generation", t.graph_generation));
        rows.push(("Partitioner", t.partitioner));
    }
    rows.push(("Inspector", t.inspector));
    rows.push(("Remap", t.remap));
    rows.push(("Executor", t.executor));
    rows.push(("Total", t.total));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting_matches_paper_style() {
        assert_eq!(format_seconds(400.4), "400");
        assert_eq!(format_seconds(17.64), "17.6");
        assert_eq!(format_seconds(7.712), "7.71");
        assert_eq!(format_seconds(0.0123), "0.012");
        assert_eq!(format_seconds(f64::NAN), "-");
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Table X", vec!["".into(), "4".into(), "8".into()]);
        t.seconds_row("Executor", &[12.7, 7.0]);
        t.seconds_row("Total", &[17.6, 10.8]);
        let s = t.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("Executor"));
        assert!(s.contains("12.7"));
        let exec_line = s.lines().find(|l| l.contains("Executor")).unwrap();
        let total_line = s.lines().find(|l| l.contains("Total")).unwrap();
        assert_eq!(exec_line.find("12.7"), total_line.find("17.6"));
    }

    #[test]
    fn table_emits_json_twin() {
        let mut t = TextTable::new("Table X", vec!["".into(), "4".into()]);
        t.seconds_row("Executor", &[12.7]);
        let json = t.to_json();
        assert!(json.contains("\"title\":\"Table X\""));
        assert!(json.contains("\"Executor\""));
        assert!(json.contains("\"12.7\""));
    }

    #[test]
    fn phase_rows_json_keys_by_label() {
        let t = PhaseTimes {
            inspector: 4.25,
            executor: 13.0,
            total: 22.5,
            ..Default::default()
        };
        let json = phase_rows_json(&t, false);
        assert!(json.contains("\"Inspector\":4.25"));
        assert!(json.contains("\"Total\":22.5"));
        assert!(!json.contains("Partitioner"));
    }

    #[test]
    fn phase_rows_follow_paper_order() {
        let t = PhaseTimes {
            graph_generation: 2.2,
            partitioner: 1.6,
            inspector: 4.3,
            remap: 1.5,
            executor: 13.0,
            total: 22.4,
            ..Default::default()
        };
        let rows = phase_rows(&t, true);
        assert_eq!(rows[0].0, "Graph Generation");
        assert_eq!(rows.last().unwrap().0, "Total");
        let rows = phase_rows(&t, false);
        assert_eq!(rows[0].0, "Inspector");
        assert_eq!(rows.len(), 4);
    }
}
