//! The hand-embedded runtime version of the pair-reduction experiment.
//!
//! This is the baseline the paper's authors compare their compiler against:
//! the same template written directly against the CHAOS runtime calls, with
//! no language front end in the way. The benchmark binaries run both this
//! and the compiler-generated path (`crate::compilergen`) and report both,
//! reproducing Table 2's "Hand Coded" vs "Compiler Generated" columns.

use crate::experiment::{ExperimentConfig, Method, PhaseTimes};
use crate::workload::PairLoopWorkload;
use chaos_dmsim::{
    Backend, ElapsedReport, Machine, MachineConfig, PhaseKind, PooledBackend, ThreadedBackend,
};
use chaos_geocol::partitioner_by_name;
use chaos_runtime::iterpart::partition_iterations;
use chaos_runtime::{
    gather_into, scatter_add, AccessPattern, Dad, DistArray, Distribution, GeoColSpec, Inspector,
    InspectorResult, IterPartitionPolicy, IterationPartition, LocalRef, LocalizeScratch, LoopId,
    MapperCoupler, ReuseRegistry,
};
use std::time::Instant;

/// Tracks phase boundaries by sampling the machine clocks.
struct PhaseSampler {
    last: ElapsedReport,
}

impl PhaseSampler {
    fn new(machine: &Machine) -> Self {
        PhaseSampler {
            last: machine.elapsed(),
        }
    }

    /// Modeled seconds elapsed (critical path) since the previous sample.
    fn lap(&mut self, machine: &Machine) -> f64 {
        let now = machine.elapsed();
        let dt = now.since(&self.last).max_seconds();
        self.last = now;
        dt
    }
}

/// Run the hand-coded experiment on the sequential engine and return its
/// phase breakdown.
pub fn run_handcoded(workload: &PairLoopWorkload, cfg: &ExperimentConfig) -> PhaseTimes {
    let mut machine = Machine::new(MachineConfig::ipsc860(cfg.nprocs));
    run_handcoded_on(&mut machine, workload, cfg)
}

/// Run the hand-coded experiment with every virtual processor on its own OS
/// thread. Modeled times, statistics and results are byte-identical to
/// [`run_handcoded`]; only the wall clock changes.
pub fn run_handcoded_threaded(workload: &PairLoopWorkload, cfg: &ExperimentConfig) -> PhaseTimes {
    let mut backend = ThreadedBackend::from_config(MachineConfig::ipsc860(cfg.nprocs));
    run_handcoded_on(&mut backend, workload, cfg)
}

/// Run the hand-coded experiment on the persistent worker-pool engine.
/// Modeled times, statistics and results are byte-identical to
/// [`run_handcoded`]; only the wall clock changes (no per-phase thread
/// spawn).
pub fn run_handcoded_pooled(workload: &PairLoopWorkload, cfg: &ExperimentConfig) -> PhaseTimes {
    let mut backend = PooledBackend::from_config(MachineConfig::ipsc860(cfg.nprocs));
    run_handcoded_on(&mut backend, workload, cfg)
}

/// Run the hand-coded experiment on an explicit SPMD engine.
pub fn run_handcoded_on<B: Backend>(
    backend: &mut B,
    workload: &PairLoopWorkload,
    cfg: &ExperimentConfig,
) -> PhaseTimes {
    let wall_start = Instant::now();
    let p = cfg.nprocs;
    assert_eq!(
        backend.nprocs(),
        p,
        "backend size must match the experiment"
    );
    let mut registry = ReuseRegistry::new();
    let mut times = PhaseTimes::default();

    let n = workload.nnodes;
    let ne = workload.npairs();

    // Default BLOCK distributions (statements S1–S4 of Figure 4).
    let node_dist = Distribution::block(n, p);
    let edge_dist = Distribution::block(ne, p);
    let mut x = DistArray::from_global("x", node_dist.clone(), &workload.input);
    let mut y = DistArray::from_global("y", node_dist.clone(), &vec![0.0; n]);
    let e1 = DistArray::from_global("end_pt1", edge_dist.clone(), &workload.e1);
    let e2 = DistArray::from_global("end_pt2", edge_dist.clone(), &workload.e2);
    let xc = DistArray::from_global("xc", node_dist.clone(), &workload.coords[0]);
    let yc = DistArray::from_global("yc", node_dist.clone(), &workload.coords[1]);
    let zc = DistArray::from_global("zc", node_dist.clone(), &workload.coords[2]);
    let load = DistArray::from_global("load", node_dist.clone(), &workload.loads);

    let mut sampler = PhaseSampler::new(backend.machine());

    // Phase A (CONSTRUCT + SET) and phase C (REDISTRIBUTE) for the
    // partitioned methods; BLOCK keeps the default distribution.
    let mut data_dist = node_dist.clone();
    if let Some(pname) = cfg.method.partitioner_name() {
        let spec = match cfg.method {
            Method::Rcb | Method::Inertial => GeoColSpec::new(n)
                .with_geometry(vec![&xc, &yc, &zc])
                .with_load(&load),
            Method::Rsb => GeoColSpec::new(n).with_link(&e1, &e2),
            Method::Block => unreachable!("BLOCK has no partitioner"),
        };
        let geocol = MapperCoupler.construct_geocol(backend.machine_mut(), &spec);
        times.graph_generation = sampler.lap(backend.machine());

        let partitioner = partitioner_by_name(pname).expect("registered partitioner");
        let outcome = MapperCoupler.partition(backend, partitioner.as_ref(), &geocol);
        times.partitioner = sampler.lap(backend.machine());

        MapperCoupler.redistribute(backend, &mut registry, &mut x, &outcome.distribution);
        MapperCoupler.redistribute(backend, &mut registry, &mut y, &outcome.distribution);
        times.remap = sampler.lap(backend.machine());
        data_dist = outcome.distribution;
    }

    // The loop's DADs, for the schedule-reuse record.
    let loop_id = LoopId::new("edge-loop");
    let data_dads: Vec<Dad> = vec![x.dad(), y.dad()];
    let ind_dads: Vec<Dad> = vec![e1.dad(), e2.dad()];

    // Inspector: iteration partitioning + localize. The access pattern and
    // the localize intermediates are reused across re-runs (the no-reuse
    // rows re-run the inspector every sweep), so repeated inspector calls
    // stop allocating once the buffers have grown to the workload size.
    let iteration_refs = workload.iteration_refs();
    let mut pattern = AccessPattern::new(p);
    let mut scratch = LocalizeScratch::default();
    let run_inspector = |backend: &mut B,
                         pattern: &mut AccessPattern,
                         scratch: &mut LocalizeScratch|
     -> (IterationPartition, InspectorResult) {
        let prev = backend
            .machine_mut()
            .set_phase_kind(Some(PhaseKind::Inspector));
        let iter_part = partition_iterations(
            backend.machine_mut(),
            &data_dist,
            &iteration_refs,
            IterPartitionPolicy::AlmostOwnerComputes,
        );
        for proc in 0..p {
            let refs = &mut pattern.refs[proc];
            refs.clear();
            refs.reserve(2 * iter_part.iters(proc).len());
            for &it in iter_part.iters(proc) {
                refs.push(workload.e1[it as usize]);
                refs.push(workload.e2[it as usize]);
            }
        }
        let result =
            Inspector.localize_with_scratch(backend, "edge-loop", &data_dist, pattern, scratch);
        backend.machine_mut().set_phase_kind(prev);
        (iter_part, result)
    };

    let (mut iter_part, mut inspect) = run_inspector(backend, &mut pattern, &mut scratch);
    let mut buffers = SweepBuffers::new(p);
    registry.save_inspector(loop_id, data_dads.clone(), ind_dads.clone());
    times.inspector += sampler.lap(backend.machine());
    times.inspector_runs += 1;
    times.local_fraction = inspect.local_fraction();

    // Executor sweeps (phase E), optionally re-running the inspector first
    // (the "no schedule reuse" rows of Table 1).
    for sweep in 0..cfg.executor_iterations {
        if cfg.reuse {
            // The generated code's guard: a cheap check that the saved
            // schedules are still valid.
            let decision = registry.check_on_machine(
                backend.machine_mut(),
                "edge-loop",
                &loop_id,
                &data_dads,
                &ind_dads,
            );
            debug_assert!(decision.can_reuse());
            times.inspector += sampler.lap(backend.machine());
        } else if sweep > 0 {
            let (ip, ir) = run_inspector(backend, &mut pattern, &mut scratch);
            iter_part = ip;
            inspect = ir;
            times.inspector += sampler.lap(backend.machine());
            times.inspector_runs += 1;
        }

        execute_sweep(
            backend,
            workload,
            &iter_part,
            &inspect,
            &x,
            &mut y,
            &mut buffers,
        );
        times.executor += sampler.lap(backend.machine());
        times.executor_sweeps += 1;

        // The loop wrote y: record it, exactly as the generated code would.
        registry.record_write(&y.dad());
    }

    let totals = backend.machine().stats().grand_totals();
    times.messages = totals.messages;
    times.bytes = totals.bytes;
    times.total = backend.machine().elapsed().max_seconds();
    times.wall_seconds = wall_start.elapsed().as_secs_f64();
    times
}

/// Buffers reused by every executor sweep, so the steady-state loop
/// (gather → kernel → scatter-add with a reused schedule) performs no heap
/// allocation after the first sweep on the sequential engine. All three
/// buffer sets are per-rank, so the sweep's compute kernel can run one rank
/// per thread.
struct SweepBuffers {
    ghosts: Vec<Vec<f64>>,
    contributions: Vec<Vec<f64>>,
    updates: Vec<Vec<(LocalRef, f64)>>,
}

impl SweepBuffers {
    fn new(nprocs: usize) -> Self {
        SweepBuffers {
            ghosts: vec![Vec::new(); nprocs],
            contributions: vec![Vec::new(); nprocs],
            updates: vec![Vec::new(); nprocs],
        }
    }

    /// Size the ghost and contribution buffers for an inspector result
    /// (no-op when the sizes are unchanged); contributions are zeroed.
    fn fit(&mut self, ghost_counts: &[usize]) {
        for (q, &count) in ghost_counts.iter().enumerate() {
            self.ghosts[q].resize(count, 0.0);
            self.contributions[q].resize(count, 0.0);
            self.contributions[q].fill(0.0);
        }
    }
}

/// One executor sweep: gather → local pair kernel → scatter-add.
///
/// The pair kernel between the two communication phases is a rank-local
/// compute kernel: rank `q` reads its own iterations, its own `x` shard and
/// its own ghost buffer, and writes its own `y` shard / contribution
/// buffer — so on a threaded backend the whole sweep (communication *and*
/// computation) runs rank-parallel.
fn execute_sweep<B: Backend>(
    backend: &mut B,
    workload: &PairLoopWorkload,
    iter_part: &IterationPartition,
    inspect: &InspectorResult,
    x: &DistArray<f64>,
    y: &mut DistArray<f64>,
    buffers: &mut SweepBuffers,
) {
    let prev = backend
        .machine_mut()
        .set_phase_kind(Some(PhaseKind::Executor));
    buffers.fit(&inspect.ghost_counts);
    let SweepBuffers {
        ghosts,
        contributions,
        updates,
    } = buffers;
    gather_into(backend, "edge-loop", &inspect.schedule, x, ghosts);

    let ghosts = &*ghosts;
    backend.run_compute(
        y.par_shards_mut()
            .zip(contributions.iter_mut())
            .zip(updates.iter_mut()),
        |ctx, ((y_local, contrib), updates): ((&mut [f64], _), &mut Vec<(LocalRef, f64)>)| {
            let proc = ctx.rank();
            let niters = iter_part.iters(proc).len();
            let localized = &inspect.localized[proc];
            let x_local = x.local(proc);
            let x_ghost = &ghosts[proc];
            // Read phase: evaluate the kernel for every local iteration.
            updates.clear();
            updates.reserve(2 * niters);
            for it in 0..niters {
                let r1 = localized[2 * it];
                let r2 = localized[2 * it + 1];
                let v1 = *r1.resolve(x_local, x_ghost);
                let v2 = *r2.resolve(x_local, x_ghost);
                let (f1, f2) = (workload.kernel)(v1, v2);
                updates.push((r1, f1));
                updates.push((r2, f2));
            }
            // Write phase: accumulate into owned elements or ghost
            // contributions.
            let contrib: &mut Vec<f64> = contrib;
            for &(r, f) in updates.iter() {
                match r {
                    LocalRef::Owned(off) => y_local[off as usize] += f,
                    LocalRef::Ghost(slot) => contrib[slot as usize] += f,
                }
            }
            ctx.charge_compute(proc, niters as f64 * workload.ops_per_iteration);
        },
    );
    scatter_add(backend, "edge-loop", &inspect.schedule, y, contributions);
    backend.machine_mut().set_phase_kind(prev);
}

/// Run one sweep sequentially and through the hand-coded path, returning the
/// maximum absolute difference (used by tests and the `all_tables`
/// self-check).
pub fn verify_against_sequential(
    workload: &PairLoopWorkload,
    nprocs: usize,
    method: Method,
) -> f64 {
    let cfg = ExperimentConfig {
        nprocs,
        method,
        reuse: true,
        executor_iterations: 1,
        scale: 1,
    };
    let expected = workload.sequential_sweep();
    // Re-run the experiment but capture y: duplicate the minimal pieces of
    // run_handcoded that affect values (distribution choice does not change
    // results, so BLOCK is used for simplicity when method is BLOCK,
    // otherwise the partitioned path is exercised end-to-end).
    let p = cfg.nprocs;
    let mut machine = Machine::new(MachineConfig::ipsc860(p));
    let mut registry = ReuseRegistry::new();
    let n = workload.nnodes;
    let ne = workload.npairs();
    let node_dist = Distribution::block(n, p);
    let edge_dist = Distribution::block(ne, p);
    let mut x = DistArray::from_global("x", node_dist.clone(), &workload.input);
    let mut y = DistArray::from_global("y", node_dist.clone(), &vec![0.0; n]);
    let e1 = DistArray::from_global("end_pt1", edge_dist.clone(), &workload.e1);
    let e2 = DistArray::from_global("end_pt2", edge_dist.clone(), &workload.e2);
    let xc = DistArray::from_global("xc", node_dist.clone(), &workload.coords[0]);
    let yc = DistArray::from_global("yc", node_dist.clone(), &workload.coords[1]);
    let zc = DistArray::from_global("zc", node_dist.clone(), &workload.coords[2]);

    let mut data_dist = node_dist;
    if let Some(pname) = cfg.method.partitioner_name() {
        let spec = match cfg.method {
            Method::Rsb => GeoColSpec::new(n).with_link(&e1, &e2),
            _ => GeoColSpec::new(n).with_geometry(vec![&xc, &yc, &zc]),
        };
        let geocol = MapperCoupler.construct_geocol(&mut machine, &spec);
        let partitioner = partitioner_by_name(pname).unwrap();
        let outcome = MapperCoupler.partition(&mut machine, partitioner.as_ref(), &geocol);
        MapperCoupler.redistribute(&mut machine, &mut registry, &mut x, &outcome.distribution);
        MapperCoupler.redistribute(&mut machine, &mut registry, &mut y, &outcome.distribution);
        data_dist = outcome.distribution;
    }

    let iteration_refs = workload.iteration_refs();
    let iter_part = partition_iterations(
        &mut machine,
        &data_dist,
        &iteration_refs,
        IterPartitionPolicy::AlmostOwnerComputes,
    );
    let mut pattern = AccessPattern::new(p);
    for proc in 0..p {
        for &it in iter_part.iters(proc) {
            pattern.refs[proc].push(workload.e1[it as usize]);
            pattern.refs[proc].push(workload.e2[it as usize]);
        }
    }
    let inspect = Inspector.localize(&mut machine, "verify", &data_dist, &pattern);
    let mut buffers = SweepBuffers::new(p);
    execute_sweep(
        &mut machine,
        workload,
        &iter_part,
        &inspect,
        &x,
        &mut y,
        &mut buffers,
    );

    let got = y.to_global();
    expected
        .iter()
        .zip(&got)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{md_workload, mesh_workload};
    use chaos_workloads::{MdConfig, MeshConfig};

    fn small_mesh() -> PairLoopWorkload {
        mesh_workload(MeshConfig::tiny(600))
    }

    #[test]
    fn handcoded_matches_sequential_for_all_methods() {
        let w = small_mesh();
        for method in [Method::Block, Method::Rcb, Method::Rsb, Method::Inertial] {
            let err = verify_against_sequential(&w, 4, method);
            assert!(err < 1e-9, "{method:?}: max error {err}");
        }
        let md = md_workload(MdConfig::tiny(27));
        let err = verify_against_sequential(&md, 4, Method::Rcb);
        assert!(err < 1e-9, "md: max error {err}");
    }

    #[test]
    fn threaded_experiment_is_bit_identical_to_sequential() {
        // The full experiment (partition → remap → inspector → 5 sweeps) on
        // both engines: every modeled quantity must agree exactly, for both
        // paper workloads.
        for w in [
            mesh_workload(MeshConfig::tiny(800)),
            md_workload(MdConfig::tiny(27)),
        ] {
            let cfg = ExperimentConfig::paper(8, Method::Rcb).with_iterations(5);
            let seq = run_handcoded(&w, &cfg);
            let thr = run_handcoded_threaded(&w, &cfg);
            assert_eq!(seq.total.to_bits(), thr.total.to_bits(), "{}", w.name);
            assert_eq!(seq.executor.to_bits(), thr.executor.to_bits());
            assert_eq!(seq.inspector.to_bits(), thr.inspector.to_bits());
            assert_eq!(seq.partitioner.to_bits(), thr.partitioner.to_bits());
            assert_eq!(seq.remap.to_bits(), thr.remap.to_bits());
            assert_eq!(seq.messages, thr.messages);
            assert_eq!(seq.bytes, thr.bytes);
            assert_eq!(seq.local_fraction.to_bits(), thr.local_fraction.to_bits());
        }
    }

    #[test]
    fn pooled_experiment_is_bit_identical_to_sequential() {
        // The full experiment (partition → remap → inspector → sweeps) on
        // the persistent worker pool, including with more ranks (8) than the
        // pool has lanes: every modeled quantity must agree exactly.
        let w = mesh_workload(MeshConfig::tiny(800));
        let cfg = ExperimentConfig::paper(8, Method::Inertial).with_iterations(4);
        let seq = run_handcoded(&w, &cfg);
        let mut backend = PooledBackend::from_config_with_workers(MachineConfig::ipsc860(8), 3);
        let pooled = run_handcoded_on(&mut backend, &w, &cfg);
        assert_eq!(seq.total.to_bits(), pooled.total.to_bits());
        assert_eq!(seq.executor.to_bits(), pooled.executor.to_bits());
        assert_eq!(seq.inspector.to_bits(), pooled.inspector.to_bits());
        assert_eq!(seq.partitioner.to_bits(), pooled.partitioner.to_bits());
        assert_eq!(seq.remap.to_bits(), pooled.remap.to_bits());
        assert_eq!(seq.messages, pooled.messages);
        assert_eq!(seq.bytes, pooled.bytes);
        assert_eq!(
            seq.local_fraction.to_bits(),
            pooled.local_fraction.to_bits()
        );
    }

    #[test]
    fn schedule_reuse_reduces_inspector_cost() {
        let w = small_mesh();
        let base = ExperimentConfig::paper(4, Method::Rcb).with_iterations(10);
        let with = run_handcoded(&w, &base);
        let without = run_handcoded(&w, &base.with_reuse(false));
        assert_eq!(with.inspector_runs, 1);
        assert_eq!(without.inspector_runs, 10);
        assert!(
            without.inspector > 3.0 * with.inspector,
            "inspector: {} vs {}",
            without.inspector,
            with.inspector
        );
        assert!(without.total > with.total);
        // Executor time per sweep is unaffected by reuse.
        let a = with.executor_per_iteration();
        let b = without.executor_per_iteration();
        assert!(
            (a - b).abs() < 0.25 * a.max(b),
            "executor per iter {a} vs {b}"
        );
    }

    #[test]
    fn irregular_partitioning_beats_block_in_the_executor() {
        let w = small_mesh();
        let block = run_handcoded(
            &w,
            &ExperimentConfig::paper(8, Method::Block).with_iterations(5),
        );
        let rcb = run_handcoded(
            &w,
            &ExperimentConfig::paper(8, Method::Rcb).with_iterations(5),
        );
        assert!(
            block.executor > 1.3 * rcb.executor,
            "BLOCK executor {} should exceed RCB executor {}",
            block.executor,
            rcb.executor
        );
        assert!(rcb.local_fraction > block.local_fraction);
        // BLOCK pays no partitioning / graph generation cost.
        assert_eq!(block.partitioner, 0.0);
        assert_eq!(block.graph_generation, 0.0);
        assert!(rcb.partitioner > 0.0);
    }

    #[test]
    fn rsb_costs_more_to_partition_but_executes_no_worse() {
        let w = small_mesh();
        let rcb = run_handcoded(
            &w,
            &ExperimentConfig::paper(4, Method::Rcb).with_iterations(5),
        );
        let rsb = run_handcoded(
            &w,
            &ExperimentConfig::paper(4, Method::Rsb).with_iterations(5),
        );
        assert!(
            rsb.partitioner > 3.0 * rcb.partitioner,
            "RSB partitioner {} should dwarf RCB {}",
            rsb.partitioner,
            rcb.partitioner
        );
        assert!(rsb.executor < 1.3 * rcb.executor);
    }

    #[test]
    fn more_processors_reduce_executor_time() {
        // Needs a mesh large enough that per-processor compute dominates the
        // per-message latency; tiny meshes are (realistically) latency-bound
        // and do not scale.
        let w = mesh_workload(MeshConfig::tiny(4000));
        let p4 = run_handcoded(
            &w,
            &ExperimentConfig::paper(4, Method::Rcb).with_iterations(5),
        );
        let p16 = run_handcoded(
            &w,
            &ExperimentConfig::paper(16, Method::Rcb).with_iterations(5),
        );
        assert!(
            p16.executor < p4.executor,
            "executor should scale: 4p={} 16p={}",
            p4.executor,
            p16.executor
        );
    }

    #[test]
    fn phase_times_account_for_most_of_the_total() {
        let w = small_mesh();
        let t = run_handcoded(
            &w,
            &ExperimentConfig::paper(4, Method::Rcb).with_iterations(3),
        );
        assert!(t.phase_sum() <= t.total * 1.001);
        assert!(
            t.phase_sum() > 0.5 * t.total,
            "phases {} vs total {}",
            t.phase_sum(),
            t.total
        );
        assert!(t.messages > 0);
        assert!(t.bytes > 0);
        assert!(t.wall_seconds > 0.0);
    }
}
