//! Thread-scaling of the rank-parallel SPMD engine: one executor iteration
//! (gather + scatter-add of a reused schedule) on the sequential engine vs
//! the threaded engine, at increasing rank counts.
//!
//! The fixture (workload + iteration) is shared with `perf_check`'s
//! `BENCH_2.json` rows — see [`chaos_bench::spmd_bench`]. It is sized so
//! the per-rank data movement dominates the per-phase thread-spawn
//! overhead; how much of the threaded engine's headroom turns into
//! wall-clock speedup depends on the host's core count (on a single-core
//! host the ranks timeshare and the two engines tie, with results still
//! byte-identical — see `tests/backend_equivalence.rs`).

use chaos_bench::spmd_bench::{executor_iteration, executor_workload};
use chaos_dmsim::{Machine, MachineConfig, ThreadedBackend};
use chaos_runtime::{DistArray, Inspector};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(10);
    for nprocs in [2usize, 4, 8] {
        let (dist, data, pattern) = executor_workload(60_000, nprocs, 120_000 / nprocs);
        let x = DistArray::from_global("x", dist.clone(), &data);
        let mut setup = Machine::new(MachineConfig::ipsc860(nprocs));
        let inspect = Inspector.localize(&mut setup, "bench", &dist, &pattern);
        let mut ghosts: Vec<Vec<f64>> = (0..nprocs)
            .map(|p| vec![0.0; inspect.ghost_counts[p]])
            .collect();
        let mut y = DistArray::from_global("y", dist.clone(), &vec![0.0; data.len()]);

        let mut seq = Machine::new(MachineConfig::ipsc860(nprocs));
        group.bench_function(format!("sequential/{nprocs}"), |b| {
            b.iter(|| executor_iteration(&mut seq, &inspect.schedule, &x, &mut y, &mut ghosts))
        });
        let mut thr = ThreadedBackend::from_config(MachineConfig::ipsc860(nprocs));
        group.bench_function(format!("threaded/{nprocs}"), |b| {
            b.iter(|| executor_iteration(&mut thr, &inspect.schedule, &x, &mut y, &mut ghosts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
