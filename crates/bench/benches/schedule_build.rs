//! Micro-benchmark of inspector schedule construction: index translation,
//! deduplication of off-processor references and communication-schedule
//! build (the ablation: hash-based dedup vs the
//! work the executor then saves).

use chaos_dmsim::{Machine, MachineConfig};
use chaos_runtime::{AccessPattern, Distribution, Inspector};
use chaos_workloads::{MeshConfig, UnstructuredMesh};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_schedule_build(c: &mut Criterion) {
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(4000));
    let mut group = c.benchmark_group("schedule_build");
    group.sample_size(20);
    for &nprocs in &[4usize, 16] {
        let dist = Distribution::block(mesh.nnodes(), nprocs);
        // Block-partition the edge iterations and build the access pattern.
        let mut pattern = AccessPattern::new(nprocs);
        let per = mesh.nedges().div_ceil(nprocs);
        for (i, (&a, &b)) in mesh.end_pt1.iter().zip(&mesh.end_pt2).enumerate() {
            let p = (i / per).min(nprocs - 1);
            pattern.refs[p].push(a);
            pattern.refs[p].push(b);
        }
        group.bench_with_input(BenchmarkId::new("localize", nprocs), &nprocs, |bch, _| {
            bch.iter(|| {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                Inspector.localize(&mut machine, "bench", &dist, &pattern)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_build);
criterion_main!(benches);
