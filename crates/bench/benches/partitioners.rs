//! Micro-benchmark of the partitioner library (Table 2's partitioner row):
//! BLOCK vs RCB vs inertial vs RSB on the same mesh, measuring both runtime
//! and (via the printed quality) edge cut — plus the rank-parallel scan
//! comparison (`partitioner_scans`): the same RSB/RCB run driver-side vs
//! through the `PooledBackend`'s `RankScans` executor (the BENCH_5 fixture).

use chaos_bench::workload::mesh_workload;
use chaos_dmsim::{MachineConfig, PooledBackend};
use chaos_geocol::{
    BlockPartitioner, GeoColBuilder, InertialPartitioner, KlRefinedPartitioner, PartitionQuality,
    Partitioner, RcbPartitioner, RsbPartitioner,
};
use chaos_runtime::MapperCoupler;
use chaos_workloads::MeshConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_partitioners(c: &mut Criterion) {
    let w = mesh_workload(MeshConfig::tiny(3000));
    let geocol = GeoColBuilder::new(w.nnodes)
        .geometry(vec![
            w.coords[0].clone(),
            w.coords[1].clone(),
            w.coords[2].clone(),
        ])
        .load(w.loads.clone())
        .link(w.e1.clone(), w.e2.clone())
        .build()
        .unwrap();

    let partitioners: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("block", Box::new(BlockPartitioner)),
        ("rcb", Box::new(RcbPartitioner)),
        ("inertial", Box::new(InertialPartitioner::default())),
        (
            "rsb",
            Box::new(RsbPartitioner {
                power_iterations: 60,
                ..Default::default()
            }),
        ),
        // Ablation: KL/FM boundary refinement on top of the geometric
        // partitioner (the paper's reference [15] style post-pass).
        (
            "rcb+kl",
            Box::new(KlRefinedPartitioner::new(RcbPartitioner)),
        ),
    ];

    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);
    for (name, p) in &partitioners {
        let q = PartitionQuality::evaluate(&geocol, &p.partition(&geocol, 16));
        eprintln!(
            "{name}: edge cut {} / {} ({:.1}%), imbalance {:.3}",
            q.edge_cut,
            q.total_edges,
            100.0 * q.cut_fraction(),
            q.load_imbalance
        );
        group.bench_with_input(BenchmarkId::new("partition_16", *name), name, |b, _| {
            b.iter(|| p.partition(&geocol, 16))
        });
    }
    group.finish();
}

/// Rank-parallel partitioner scans: the pure driver-side `partition()`
/// against the same partitioner driven through the mapper coupler over a
/// persistent worker pool (`RankScans` scans rank-parallel, partitionings
/// byte-identical by construction). Shares the BENCH_5 fixture
/// (`workload::partitioner_scan_geocol`) at a criterion-friendly size.
fn bench_partitioner_scans(c: &mut Criterion) {
    let geocol = chaos_bench::workload::partitioner_scan_geocol(12_000);
    let nprocs = 4;
    let rsb = chaos_bench::workload::partitioner_scan_rsb();
    let cases: [(&str, &dyn Partitioner); 2] = [("rsb", &rsb), ("rcb", &RcbPartitioner)];

    let mut group = c.benchmark_group("partitioner_scans");
    group.sample_size(10);
    for (name, p) in cases {
        group.bench_with_input(BenchmarkId::new("serial", name), &name, |b, _| {
            b.iter(|| p.partition(&geocol, nprocs))
        });
        let mut pool = PooledBackend::from_config(MachineConfig::ipsc860(nprocs));
        group.bench_with_input(BenchmarkId::new("pooled", name), &name, |b, _| {
            b.iter(|| MapperCoupler.partition(&mut pool, p, &geocol))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_partitioner_scans);
criterion_main!(benches);
