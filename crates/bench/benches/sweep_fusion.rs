//! Sweep-fusion microbenchmarks: one steady-state lang executor sweep with
//! the fused gather → compute → scatter path (a single `Backend::run_sweep`
//! epoch — one pooled broadcast release, one completion barrier) vs the
//! split path (one engine phase per gather / compute / scatter), on both
//! the pooled and the sequential engine, at the small N where the per-phase
//! hand-off dominates.
//!
//! The fixture is shared with `perf_check`'s `BENCH_7.json` rows — see
//! [`chaos_bench::kernel_bench::edge_executor_pooled`] — so the two can
//! never measure different things.

use chaos_bench::kernel_bench::{edge_executor, edge_executor_pooled, edge_program_inputs};
use chaos_lang::KernelMode;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sweep_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_fusion");

    // Same shape as BENCH_7: small enough that the per-phase engine
    // hand-off dominates the sweep's data movement.
    let (nprocs, workers, nnode, nedge) = (4usize, 3usize, 3_000usize, 6_000usize);
    let inputs = edge_program_inputs(nnode, nedge);

    let (mut fused_pool, cp, label) =
        edge_executor_pooled(KernelMode::Compiled, nprocs, workers, true, &inputs);
    group.bench_function("pooled/fused", |b| {
        b.iter(|| fused_pool.execute_loop(&cp, &label).unwrap())
    });
    let (mut split_pool, cp, label) =
        edge_executor_pooled(KernelMode::Compiled, nprocs, workers, false, &inputs);
    group.bench_function("pooled/split", |b| {
        b.iter(|| split_pool.execute_loop(&cp, &label).unwrap())
    });

    let (mut fused_seq, cp, label) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
    group.bench_function("sequential/fused", |b| {
        b.iter(|| fused_seq.execute_loop(&cp, &label).unwrap())
    });
    let (split_seq, cp, label) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
    let mut split_seq = split_seq.with_phase_fusion(false);
    group.bench_function("sequential/split", |b| {
        b.iter(|| split_seq.execute_loop(&cp, &label).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_sweep_fusion);
criterion_main!(benches);
