//! Micro-benchmark of the executor primitives: gather and scatter-add of
//! ghost data through a communication schedule (the per-iteration cost every
//! sweep pays, Table 3's "Executor" row).

use chaos_bench::workload::mesh_workload;
use chaos_dmsim::{Machine, MachineConfig};
use chaos_geocol::{Partitioner, RcbPartitioner};
use chaos_runtime::iterpart::partition_iterations;
use chaos_runtime::{
    gather, gather_into, scatter_add, AccessPattern, DistArray, Distribution, Inspector,
    IterPartitionPolicy,
};
use chaos_workloads::MeshConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_executor(c: &mut Criterion) {
    let w = mesh_workload(MeshConfig::tiny(3000));
    let nprocs = 16;
    let geocol = chaos_geocol::GeoColBuilder::new(w.nnodes)
        .geometry(vec![
            w.coords[0].clone(),
            w.coords[1].clone(),
            w.coords[2].clone(),
        ])
        .build()
        .unwrap();
    let dist = Distribution::irregular_from_map(
        RcbPartitioner.partition(&geocol, nprocs).owners(),
        nprocs,
    );
    let x = DistArray::from_global("x", dist.clone(), &w.input);
    let mut y = DistArray::from_global("y", dist.clone(), &vec![0.0; w.nnodes]);

    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let iter_part = partition_iterations(
        &mut machine,
        &dist,
        &w.iteration_refs(),
        IterPartitionPolicy::AlmostOwnerComputes,
    );
    let mut pattern = AccessPattern::new(nprocs);
    for p in 0..nprocs {
        for &it in iter_part.iters(p) {
            pattern.refs[p].push(w.e1[it as usize]);
            pattern.refs[p].push(w.e2[it as usize]);
        }
    }
    let inspect = Inspector.localize(&mut machine, "bench", &dist, &pattern);
    let contributions: Vec<Vec<f64>> = (0..nprocs)
        .map(|p| vec![1.0; inspect.ghost_counts[p]])
        .collect();

    let mut group = c.benchmark_group("executor");
    group.sample_size(30);
    group.bench_function("gather", |b| {
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
            gather(&mut machine, "bench", &inspect.schedule, &x)
        })
    });
    group.bench_function("scatter_add", |b| {
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
            scatter_add(
                &mut machine,
                "bench",
                &inspect.schedule,
                &mut y,
                &contributions,
            )
        })
    });
    // The allocation-free steady state: a reused machine and reused ghost
    // buffers, the exact shape of an iteration loop with a reused schedule.
    group.bench_function("gather_steady", |b| {
        let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
        let mut ghosts: Vec<Vec<f64>> = (0..nprocs)
            .map(|p| vec![0.0; inspect.ghost_counts[p]])
            .collect();
        b.iter(|| {
            gather_into(&mut machine, "bench", &inspect.schedule, &x, &mut ghosts);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
