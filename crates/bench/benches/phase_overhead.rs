//! Per-phase overhead of the parallel SPMD engines at small N.
//!
//! One steady-state executor iteration (gather + scatter-add over a reused
//! schedule) on a workload small enough that per-phase *engine* overhead —
//! thread spawn for `ThreadedBackend`, the epoch barrier hand-off for
//! `PooledBackend` — dominates the data movement. This is the wall-clock
//! cost the persistent worker pool exists to remove; the same fixture backs
//! `perf_check`'s `BENCH_4.json` gate so the two can never measure
//! different things.

use chaos_bench::spmd_bench::{executor_iteration, phase_overhead_workload};
use chaos_dmsim::{Machine, MachineConfig, PooledBackend, ThreadedBackend};
use chaos_runtime::{DistArray, Inspector};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_phase_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_overhead");
    group.sample_size(20);
    for nprocs in [4usize, 8] {
        let (dist, data, pattern) = phase_overhead_workload(nprocs);
        let x = DistArray::from_global("x", dist.clone(), &data);
        let mut setup = Machine::new(MachineConfig::ipsc860(nprocs));
        let inspect = Inspector.localize(&mut setup, "bench", &dist, &pattern);
        let mut ghosts: Vec<Vec<f64>> = (0..nprocs)
            .map(|p| vec![0.0; inspect.ghost_counts[p]])
            .collect();
        let mut y = DistArray::from_global("y", dist.clone(), &vec![0.0; data.len()]);

        let mut seq = Machine::new(MachineConfig::ipsc860(nprocs));
        group.bench_function(format!("sequential/{nprocs}"), |b| {
            b.iter(|| executor_iteration(&mut seq, &inspect.schedule, &x, &mut y, &mut ghosts))
        });
        let mut thr = ThreadedBackend::from_config(MachineConfig::ipsc860(nprocs));
        group.bench_function(format!("threaded-spawn/{nprocs}"), |b| {
            b.iter(|| executor_iteration(&mut thr, &inspect.schedule, &x, &mut y, &mut ghosts))
        });
        let mut pool = PooledBackend::from_config(MachineConfig::ipsc860(nprocs));
        group.bench_function(format!("pooled/{nprocs}"), |b| {
            b.iter(|| executor_iteration(&mut pool, &inspect.schedule, &x, &mut y, &mut ghosts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phase_overhead);
criterion_main!(benches);
