//! Criterion micro-benchmark behind Table 1: the wall-clock cost of one
//! executor sweep with a reused schedule vs one sweep that re-runs the full
//! inspector first. (The paper's table reports modeled machine time; this
//! bench measures the harness itself so regressions in the runtime's own
//! code are caught.)

use chaos_bench::experiment::{ExperimentConfig, Method};
use chaos_bench::handcoded::run_handcoded;
use chaos_bench::workload::mesh_workload;
use chaos_workloads::MeshConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_schedule_reuse(c: &mut Criterion) {
    let workload = mesh_workload(MeshConfig::tiny(2000));
    let mut group = c.benchmark_group("schedule_reuse");
    group.sample_size(10);
    for (label, reuse) in [("reuse", true), ("no_reuse", false)] {
        group.bench_with_input(BenchmarkId::new("10_sweeps", label), &reuse, |b, &reuse| {
            b.iter(|| {
                let cfg = ExperimentConfig::paper(8, Method::Rcb)
                    .with_reuse(reuse)
                    .with_iterations(10);
                run_handcoded(&workload, &cfg)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_reuse);
criterion_main!(benches);
