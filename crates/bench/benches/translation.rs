//! Ablation bench: replicated vs distributed (paged) translation table.
//! The replicated table answers dereference requests locally but costs
//! O(n) memory per processor; the distributed table pays a request/response
//! message pair per off-page lookup — the trade-off PARTI/CHAOS makes and
//! the reason inspector costs dominate when schedules are not reused.

use chaos_dmsim::{Machine, MachineConfig};
use chaos_runtime::{TTablePolicy, TranslationTable};
use chaos_workloads::{MeshConfig, UnstructuredMesh};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_translation(c: &mut Criterion) {
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(4000));
    let nprocs = 16;
    // An irregular map: shuffle ownership by hashing the node id.
    let map: Vec<u32> = (0..mesh.nnodes())
        .map(|i| ((i * 2654435761) % nprocs) as u32)
        .collect();
    // Requests: each processor asks about the endpoints of a slice of edges.
    let mut requests: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
    let per = mesh.nedges().div_ceil(nprocs);
    for (i, (&a, &b)) in mesh.end_pt1.iter().zip(&mesh.end_pt2).enumerate() {
        let p = (i / per).min(nprocs - 1);
        requests[p].push(a);
        requests[p].push(b);
    }

    let mut group = c.benchmark_group("translation_table");
    group.sample_size(20);
    for (name, policy) in [
        ("replicated", TTablePolicy::Replicated),
        ("distributed", TTablePolicy::Distributed),
    ] {
        let table = TranslationTable::from_map_with_policy(&map, nprocs, policy);
        // Report the modeled cost difference once.
        let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
        table.dereference(&mut machine, "bench", &requests);
        eprintln!(
            "{name}: modeled dereference {:.4}s, messages {}, storage/proc {} words",
            machine.elapsed().max_seconds(),
            machine.stats().grand_totals().messages,
            table.storage_words(0)
        );
        group.bench_with_input(BenchmarkId::new("dereference", name), &table, |b, table| {
            b.iter(|| {
                let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                table.dereference(&mut machine, "bench", &requests)
            })
        });
        // The inspector's hot path: packed answers into reused buffers.
        group.bench_with_input(
            BenchmarkId::new("dereference_packed", name),
            &table,
            |b, table| {
                let mut out: Vec<Vec<u64>> = Vec::new();
                b.iter(|| {
                    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                    table.dereference_packed(&mut machine, "bench", &requests, &mut out);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
