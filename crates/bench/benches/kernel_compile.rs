//! Kernel-compilation microbenchmarks: the cost of compiling a FORALL body
//! to register bytecode (paid once per inspector run, amortized by the
//! kernel cache), and the steady-state executor sweep in both kernel modes
//! (the ratio `perf_check` gates in `BENCH_3.json`).
//!
//! The sweep fixture is shared with `perf_check` — see
//! [`chaos_bench::kernel_bench`] — so the two can never measure different
//! things.

use chaos_bench::kernel_bench::{edge_executor, edge_program_inputs, EDGE_PROGRAM};
use chaos_lang::kernel::{compile_kernel, GroupSpec};
use chaos_lang::{lower_program, parse_program, KernelMode};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_kernel_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_compile");

    // Compilation itself: bind + emit of the edge loop's two-statement
    // flux body against a one-group layout.
    let cp = lower_program(parse_program(EDGE_PROGRAM).unwrap()).unwrap();
    let plan = cp.plans.values().next().unwrap().clone();
    let groups = vec![GroupSpec {
        decomp: "reg".to_string(),
        slot_ids: (0..plan.slots.len()).collect(),
    }];
    group.bench_function("compile/edge-loop", |b| {
        b.iter(|| black_box(compile_kernel(&plan, &groups).unwrap()))
    });

    // Steady-state sweeps: compiled bytecode VM vs the retained
    // tree-walking interpreter, same program, same schedules.
    let (nprocs, nnode, nedge) = (8usize, 20_000usize, 60_000usize);
    let inputs = edge_program_inputs(nnode, nedge);
    let (mut compiled, cp, label) = edge_executor(KernelMode::Compiled, nprocs, &inputs);
    group.bench_function("sweep/compiled", |b| {
        b.iter(|| compiled.execute_loop(&cp, &label).unwrap())
    });
    let (mut interp, cp, label) = edge_executor(KernelMode::Interpreted, nprocs, &inputs);
    group.bench_function("sweep/interpreted", |b| {
        b.iter(|| interp.execute_loop(&cp, &label).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_kernel_compile);
criterion_main!(benches);
