//! Ablation bench: iteration-partitioning policy (owner-computes vs the
//! paper's almost-owner-computes vs a naive block of iterations), measuring
//! both the partitioning pass itself and the off-processor reference count
//! it leaves for the executor.

use chaos_bench::workload::mesh_workload;
use chaos_dmsim::{Machine, MachineConfig};
use chaos_geocol::{Partitioner, RcbPartitioner};
use chaos_runtime::iterpart::partition_iterations;
use chaos_runtime::{AccessPattern, Distribution, Inspector, IterPartitionPolicy};
use chaos_workloads::MeshConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_iter_partition(c: &mut Criterion) {
    let w = mesh_workload(MeshConfig::tiny(3000));
    let nprocs = 16;
    let geocol = chaos_geocol::GeoColBuilder::new(w.nnodes)
        .geometry(vec![
            w.coords[0].clone(),
            w.coords[1].clone(),
            w.coords[2].clone(),
        ])
        .build()
        .unwrap();
    let partitioning = RcbPartitioner.partition(&geocol, nprocs);
    let dist = Distribution::irregular_from_map(partitioning.owners(), nprocs);
    let refs = w.iteration_refs();

    let mut group = c.benchmark_group("iter_partition");
    group.sample_size(20);
    for (name, policy) in [
        ("owner_computes", IterPartitionPolicy::OwnerComputes),
        (
            "almost_owner_computes",
            IterPartitionPolicy::AlmostOwnerComputes,
        ),
        (
            "block_of_iterations",
            IterPartitionPolicy::BlockOfIterations,
        ),
    ] {
        // Report the locality each policy achieves.
        let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
        let part = partition_iterations(&mut machine, &dist, &refs, policy);
        let mut pattern = AccessPattern::new(nprocs);
        for p in 0..nprocs {
            for &it in part.iters(p) {
                pattern.refs[p].push(w.e1[it as usize]);
                pattern.refs[p].push(w.e2[it as usize]);
            }
        }
        let result = Inspector.localize(&mut machine, "bench", &dist, &pattern);
        eprintln!(
            "{name}: local fraction {:.3}, ghosts {}, imbalance {:.3}",
            result.local_fraction(),
            result.schedule.total_ghosts(),
            part.imbalance()
        );

        group.bench_with_input(
            BenchmarkId::new("partition", name),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
                    partition_iterations(&mut machine, &dist, &refs, policy)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_iter_partition);
criterion_main!(benches);
