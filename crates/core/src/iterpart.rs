//! Loop-iteration partitioning.
//!
//! After the *data* has been partitioned (Figure 2, phase A) the loop
//! iterations must be assigned to processors (phase B). Section 4.3 of the
//! paper discusses two conventions:
//!
//! * **owner-computes** — execute a statement on the owner of its left-hand
//!   side reference. Simple, but in sparse codes it forces communication
//!   even for loop-independent dependences.
//! * **almost-owner-computes** (the paper's default) — assign the *whole
//!   iteration* to "the processor that is the home of the largest number of
//!   the iteration's distributed array references".
//!
//! Both policies are implemented so the `iter_partition` ablation bench can
//! compare them.

use crate::dist::Distribution;
use chaos_dmsim::Machine;

/// The iteration-assignment convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterPartitionPolicy {
    /// Assign each iteration to the owner of its first (left-hand-side)
    /// reference.
    OwnerComputes,
    /// Assign each iteration to the processor owning the largest number of
    /// its references (ties go to the lowest processor id). The paper's
    /// default.
    AlmostOwnerComputes,
    /// Assign iteration `i` to the processor that would own index `i` under
    /// a BLOCK distribution of the iteration space — the naive baseline used
    /// before any remapping has happened.
    BlockOfIterations,
}

/// The result: which iterations each processor executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationPartition {
    iters: Vec<Vec<u32>>,
    niters: usize,
}

impl IterationPartition {
    /// Build from per-processor iteration lists.
    pub fn new(iters: Vec<Vec<u32>>) -> Self {
        let niters = iters.iter().map(Vec::len).sum();
        IterationPartition { iters, niters }
    }

    /// Iterations executed by `proc`, in ascending order.
    pub fn iters(&self, proc: usize) -> &[u32] {
        &self.iters[proc]
    }

    /// Per-processor iteration lists.
    pub fn all(&self) -> &[Vec<u32>] {
        &self.iters
    }

    /// Total number of iterations.
    pub fn total(&self) -> usize {
        self.niters
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.iters.len()
    }

    /// Load imbalance: max iterations per processor / mean.
    pub fn imbalance(&self) -> f64 {
        if self.niters == 0 || self.iters.is_empty() {
            return 1.0;
        }
        let max = self.iters.iter().map(Vec::len).max().unwrap_or(0) as f64;
        let mean = self.niters as f64 / self.iters.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

/// Partition the iterations of a loop.
///
/// `iteration_refs[i]` lists the global indices (into arrays aligned with
/// `data_dist`) referenced by iteration `i`; the first entry is treated as
/// the left-hand-side reference for the owner-computes policy. The cost of
/// scanning the references is charged to the simulated machine: in the real
/// system this scan is distributed (each processor examines the iterations
/// whose indirection-array entries it owns), so the charge is divided across
/// processors.
pub fn partition_iterations(
    machine: &mut Machine,
    data_dist: &Distribution,
    iteration_refs: &[Vec<u32>],
    policy: IterPartitionPolicy,
) -> IterationPartition {
    let nprocs = machine.nprocs();
    let mut iters: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
    let mut counts = vec![0usize; nprocs];

    for (i, refs) in iteration_refs.iter().enumerate() {
        let target = match policy {
            IterPartitionPolicy::BlockOfIterations => {
                let block = iteration_refs.len().div_ceil(nprocs).max(1);
                (i / block).min(nprocs - 1)
            }
            IterPartitionPolicy::OwnerComputes => match refs.first() {
                Some(&lhs) => data_dist.owner(lhs as usize),
                None => i % nprocs,
            },
            IterPartitionPolicy::AlmostOwnerComputes => {
                if refs.is_empty() {
                    i % nprocs
                } else {
                    for c in counts.iter_mut() {
                        *c = 0;
                    }
                    for &r in refs {
                        counts[data_dist.owner(r as usize)] += 1;
                    }
                    counts
                        .iter()
                        .enumerate()
                        .max_by_key(|&(p, &c)| (c, std::cmp::Reverse(p)))
                        .map(|(p, _)| p)
                        .unwrap_or(0)
                }
            }
        };
        iters[target].push(i as u32);
    }

    // Cost: every reference of every iteration is inspected once; the scan is
    // parallel over processors.
    let total_refs: usize = iteration_refs.iter().map(Vec::len).sum();
    let per_proc = total_refs as f64 / nprocs as f64;
    for p in 0..nprocs {
        machine.charge_compute(p, per_proc);
    }

    IterationPartition::new(iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::MachineConfig;

    /// 4 iterations referencing a block(8,2) array:
    ///   it0 -> [0,1]   both on proc 0
    ///   it1 -> [4,5]   both on proc 1
    ///   it2 -> [0,5,6] majority proc 1
    ///   it3 -> [3,4]   tie -> proc 0 (lowest id)
    fn refs() -> Vec<Vec<u32>> {
        vec![vec![0, 1], vec![4, 5], vec![0, 5, 6], vec![3, 4]]
    }

    #[test]
    fn almost_owner_computes_majority_and_ties() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let d = Distribution::block(8, 2);
        let p = partition_iterations(
            &mut m,
            &d,
            &refs(),
            IterPartitionPolicy::AlmostOwnerComputes,
        );
        assert_eq!(p.iters(0), &[0, 3]);
        assert_eq!(p.iters(1), &[1, 2]);
        assert_eq!(p.total(), 4);
        assert_eq!(p.imbalance(), 1.0);
    }

    #[test]
    fn owner_computes_uses_first_reference() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let d = Distribution::block(8, 2);
        let p = partition_iterations(&mut m, &d, &refs(), IterPartitionPolicy::OwnerComputes);
        assert_eq!(p.iters(0), &[0, 2, 3]);
        assert_eq!(p.iters(1), &[1]);
    }

    #[test]
    fn block_of_iterations_ignores_data() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let d = Distribution::block(8, 2);
        let p = partition_iterations(&mut m, &d, &refs(), IterPartitionPolicy::BlockOfIterations);
        assert_eq!(p.iters(0), &[0, 1]);
        assert_eq!(p.iters(1), &[2, 3]);
    }

    #[test]
    fn follows_irregular_distribution() {
        let mut m = Machine::new(MachineConfig::unit(2));
        // All referenced elements owned by proc 1.
        let map = vec![1u32; 8];
        let d = Distribution::irregular_from_map(&map, 2);
        let p = partition_iterations(
            &mut m,
            &d,
            &refs(),
            IterPartitionPolicy::AlmostOwnerComputes,
        );
        assert!(p.iters(0).is_empty());
        assert_eq!(p.iters(1).len(), 4);
        assert_eq!(p.imbalance(), 2.0);
    }

    #[test]
    fn empty_iterations_round_robin() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let d = Distribution::block(8, 2);
        let p = partition_iterations(
            &mut m,
            &d,
            &[vec![], vec![], vec![]],
            IterPartitionPolicy::AlmostOwnerComputes,
        );
        assert_eq!(p.total(), 3);
    }

    #[test]
    fn charges_scan_cost() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let d = Distribution::block(8, 2);
        let _ = partition_iterations(
            &mut m,
            &d,
            &refs(),
            IterPartitionPolicy::AlmostOwnerComputes,
        );
        assert!(m.elapsed().max_compute_seconds() > 0.0);
    }

    #[test]
    fn imbalance_of_empty_partition_is_one() {
        let p = IterationPartition::new(vec![Vec::new(), Vec::new()]);
        assert_eq!(p.imbalance(), 1.0);
        assert_eq!(p.nprocs(), 2);
    }
}
