//! Naive reference implementation of the inspector/executor pipeline.
//!
//! This module preserves the original nested-`Vec` + `HashMap` formulation
//! of `localize`, `gather` and `scatter_add` (schedules as
//! `Vec<Vec<(owner, offset)>>` ghost lists and per-owner `Vec<SendList>`s,
//! communication through materialized [`ExchangePlan`]s). It is **not** used
//! by the runtime — the flat CSR implementation in [`crate::schedule`] /
//! [`crate::executor`] is — but is retained as an executable specification:
//! the property tests assert that the CSR hot path produces byte-identical
//! gather/scatter results and identical message/volume accounting against
//! this reference.

// This module intentionally preserves the seed's code shape, idioms
// included — it is the oracle, not the implementation.
#![allow(clippy::needless_range_loop)]

use crate::darray::DistArray;
use crate::dist::Distribution;
use crate::inspector::{AccessPattern, LocalRef};
use chaos_dmsim::{ExchangePlan, Machine};
use std::collections::HashMap;

/// One owner→requester send list of the naive schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveSendList {
    /// The processor the data is sent to.
    pub to: u32,
    /// Local offsets (on the owner) to pack, in order.
    pub offsets: Vec<u32>,
    /// Ghost slots (on the requester) the packed values land in, same order.
    pub ghost_slots: Vec<u32>,
}

/// The naive nested-`Vec` communication schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveSchedule {
    nprocs: usize,
    /// For requester `p`: the `(owner, offset)` of each ghost slot.
    pub ghost_sources: Vec<Vec<(u32, u32)>>,
    /// For owner `o`: its send lists.
    pub send_lists: Vec<Vec<NaiveSendList>>,
}

impl NaiveSchedule {
    /// Build the schedule and charge the request exchange, exactly as the
    /// seed implementation did.
    pub fn build(machine: &mut Machine, label: &str, ghost_sources: Vec<Vec<(u32, u32)>>) -> Self {
        let nprocs = machine.nprocs();
        assert_eq!(ghost_sources.len(), nprocs);
        let mut grouped: Vec<Vec<(Vec<u32>, Vec<u32>)>> =
            vec![vec![(Vec::new(), Vec::new()); nprocs]; nprocs];
        for (requester, sources) in ghost_sources.iter().enumerate() {
            for (slot, &(owner, offset)) in sources.iter().enumerate() {
                let cell = &mut grouped[owner as usize][requester];
                cell.0.push(offset);
                cell.1.push(slot as u32);
            }
        }
        let mut plan: ExchangePlan<u32> = ExchangePlan::new(nprocs);
        for (owner, row) in grouped.iter().enumerate() {
            for (requester, (offsets, _)) in row.iter().enumerate() {
                if !offsets.is_empty() {
                    plan.push(requester, owner, offsets.clone());
                }
            }
        }
        machine.exchange(&format!("{label}:schedule-build"), plan);
        let send_lists: Vec<Vec<NaiveSendList>> = grouped
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .enumerate()
                    .filter(|(_, (offsets, _))| !offsets.is_empty())
                    .map(|(requester, (offsets, ghost_slots))| NaiveSendList {
                        to: requester as u32,
                        offsets,
                        ghost_slots,
                    })
                    .collect()
            })
            .collect();
        NaiveSchedule {
            nprocs,
            ghost_sources,
            send_lists,
        }
    }

    /// Number of point-to-point messages one gather performs.
    pub fn message_count(&self) -> usize {
        self.send_lists.iter().map(Vec::len).sum()
    }

    /// Ghost-buffer size of `proc`.
    pub fn ghost_count(&self, proc: usize) -> usize {
        self.ghost_sources[proc].len()
    }
}

/// Result of [`localize`]: the naive schedule plus localized references.
#[derive(Debug, Clone)]
pub struct NaiveInspectorResult {
    /// The naive communication schedule.
    pub schedule: NaiveSchedule,
    /// Localized references, same shape as the input pattern.
    pub localized: Vec<Vec<LocalRef>>,
    /// Ghost-buffer sizes.
    pub ghost_counts: Vec<usize>,
}

/// The seed's `Inspector::localize`: per-index translation, `HashMap`-based
/// slot assignment, nested-`Vec` schedule.
pub fn localize(
    machine: &mut Machine,
    label: &str,
    data_dist: &Distribution,
    pattern: &AccessPattern,
) -> NaiveInspectorResult {
    let nprocs = machine.nprocs();
    assert_eq!(pattern.refs.len(), nprocs);
    let located: Vec<Vec<(u32, u32)>> = match data_dist {
        Distribution::Irregular { table } => table.dereference(machine, label, &pattern.refs),
        _ => {
            let mut out = Vec::with_capacity(nprocs);
            for (p, refs) in pattern.refs.iter().enumerate() {
                machine.charge_compute(p, refs.len() as f64);
                out.push(
                    refs.iter()
                        .map(|&g| {
                            let (o, off) = data_dist.locate(g as usize);
                            (o as u32, off as u32)
                        })
                        .collect(),
                );
            }
            out
        }
    };

    let mut ghost_sources: Vec<Vec<(u32, u32)>> = Vec::with_capacity(nprocs);
    let mut localized: Vec<Vec<LocalRef>> = Vec::with_capacity(nprocs);
    for p in 0..nprocs {
        let mut offproc: Vec<(u32, u32)> = located[p]
            .iter()
            .copied()
            .filter(|&(owner, _)| owner as usize != p)
            .collect();
        offproc.sort_unstable();
        offproc.dedup();
        let slot_of: HashMap<(u32, u32), u32> = offproc
            .iter()
            .enumerate()
            .map(|(slot, &src)| (src, slot as u32))
            .collect();
        let locals: Vec<LocalRef> = located[p]
            .iter()
            .map(|&(owner, off)| {
                if owner as usize == p {
                    LocalRef::Owned(off)
                } else {
                    LocalRef::Ghost(slot_of[&(owner, off)])
                }
            })
            .collect();
        machine.charge_compute(p, 2.0 * located[p].len() as f64 + offproc.len() as f64);
        ghost_sources.push(offproc);
        localized.push(locals);
    }

    let ghost_counts: Vec<usize> = ghost_sources.iter().map(Vec::len).collect();
    let schedule = NaiveSchedule::build(machine, label, ghost_sources);
    NaiveInspectorResult {
        schedule,
        localized,
        ghost_counts,
    }
}

/// The seed's `gather`: pack payload vectors, run a real exchange, unpack.
pub fn gather<T: Clone + Default + Send>(
    machine: &mut Machine,
    label: &str,
    schedule: &NaiveSchedule,
    array: &DistArray<T>,
) -> Vec<Vec<T>> {
    let nprocs = machine.nprocs();
    assert_eq!(schedule.nprocs, nprocs);
    let mut ghosts: Vec<Vec<T>> = (0..nprocs)
        .map(|p| vec![T::default(); schedule.ghost_count(p)])
        .collect();
    let mut plan: ExchangePlan<T> = ExchangePlan::new(nprocs);
    for owner in 0..nprocs {
        let local = array.local(owner);
        for send in &schedule.send_lists[owner] {
            let payload: Vec<T> = send
                .offsets
                .iter()
                .map(|&off| local[off as usize].clone())
                .collect();
            machine.charge_memory(owner, payload.len() as f64);
            plan.push(owner, send.to as usize, payload);
        }
    }
    machine.exchange(&format!("{label}:gather"), plan);
    for owner in 0..nprocs {
        let local = array.local(owner);
        for send in &schedule.send_lists[owner] {
            let dest = send.to as usize;
            machine.charge_memory(dest, send.offsets.len() as f64);
            for (&off, &slot) in send.offsets.iter().zip(&send.ghost_slots) {
                ghosts[dest][slot as usize] = local[off as usize].clone();
            }
        }
    }
    ghosts
}

/// The seed's `scatter_add`: ship contributions through a real exchange and
/// combine at the owners via an intermediate update list.
pub fn scatter_add(
    machine: &mut Machine,
    label: &str,
    schedule: &NaiveSchedule,
    array: &mut DistArray<f64>,
    contributions: &[Vec<f64>],
) {
    let nprocs = machine.nprocs();
    assert_eq!(schedule.nprocs, nprocs);
    let mut plan: ExchangePlan<f64> = ExchangePlan::new(nprocs);
    for owner in 0..nprocs {
        for send in &schedule.send_lists[owner] {
            let requester = send.to as usize;
            let payload: Vec<f64> = send
                .ghost_slots
                .iter()
                .map(|&slot| contributions[requester][slot as usize])
                .collect();
            machine.charge_memory(requester, payload.len() as f64);
            plan.push(requester, owner, payload);
        }
    }
    machine.exchange(&format!("{label}:scatter"), plan);
    for owner in 0..nprocs {
        let updates: Vec<(u32, f64)> = schedule.send_lists[owner]
            .iter()
            .flat_map(|send| {
                let requester = send.to as usize;
                send.offsets
                    .iter()
                    .zip(&send.ghost_slots)
                    .map(move |(&off, &slot)| (off, contributions[requester][slot as usize]))
                    .collect::<Vec<_>>()
            })
            .collect();
        machine.charge_compute(owner, updates.len() as f64);
        let local = array.local_mut(owner);
        for (off, value) in updates {
            local[off as usize] += value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::MachineConfig;

    #[test]
    fn naive_pipeline_round_trips() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let x = DistArray::from_global(
            "x",
            dist.clone(),
            &(0..8).map(|i| i as f64).collect::<Vec<_>>(),
        );
        let pattern = AccessPattern {
            refs: vec![vec![4, 5, 5], vec![0]],
        };
        let r = localize(&mut m, "L", &dist, &pattern);
        assert_eq!(r.ghost_counts, vec![2, 1]);
        let ghosts = gather(&mut m, "L", &r.schedule, &x);
        assert_eq!(ghosts[0], vec![4.0, 5.0]);
        let mut y = DistArray::from_global("y", dist, &[0.0; 8]);
        scatter_add(&mut m, "L", &r.schedule, &mut y, &ghosts);
        assert_eq!(y.to_global()[4], 4.0);
        assert_eq!(y.to_global()[0], 0.0);
    }
}
