//! Distributed arrays: the runtime representation of a Fortran D array
//! `ALIGN`ed to a distribution.
//!
//! A `DistArray<T>` owns one local segment per processor (the simulator
//! shares an address space, so "per processor" is an index into a `Vec` of
//! segments). Elements are addressed either *globally* (for convenience,
//! tests and workload generation) or by `(processor, local offset)` — the
//! form the executor uses after the inspector has translated indices.

use crate::dad::Dad;
use crate::dist::Distribution;

/// A distributed array of `T`.
#[derive(Debug, Clone)]
pub struct DistArray<T> {
    name: String,
    dist: Distribution,
    local: Vec<Vec<T>>,
}

impl<T: Clone + Default> DistArray<T> {
    /// Create an array filled with `T::default()`.
    pub fn new(name: &str, dist: Distribution) -> Self {
        let local = (0..dist.nprocs())
            .map(|p| vec![T::default(); dist.local_size(p)])
            .collect();
        DistArray {
            name: name.to_string(),
            dist,
            local,
        }
    }

    /// Create an array by scattering a global vector according to `dist`.
    ///
    /// # Panics
    /// Panics if `global.len() != dist.len()`.
    pub fn from_global(name: &str, dist: Distribution, global: &[T]) -> Self {
        assert_eq!(
            global.len(),
            dist.len(),
            "global data length does not match the distribution"
        );
        let mut arr = Self::new(name, dist);
        for (g, v) in global.iter().enumerate() {
            let (p, off) = arr.dist.locate(g);
            arr.local[p][off] = v.clone();
        }
        arr
    }

    /// Gather the array back into a single global vector (test / verification
    /// helper; a real application would never do this).
    pub fn to_global(&self) -> Vec<T> {
        let mut out = vec![T::default(); self.dist.len()];
        for (g, slot) in out.iter_mut().enumerate() {
            let (p, off) = self.dist.locate(g);
            *slot = self.local[p][off].clone();
        }
        out
    }
}

impl<T> DistArray<T> {
    /// The array's name (used in diagnostics and the language front end).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Global length.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// True when the global length is zero.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// The distribution the array is aligned to.
    pub fn dist(&self) -> &Distribution {
        &self.dist
    }

    /// The array's current data access descriptor.
    pub fn dad(&self) -> Dad {
        Dad::of(&self.dist)
    }

    /// Local segment of processor `proc`.
    pub fn local(&self, proc: usize) -> &[T] {
        &self.local[proc]
    }

    /// Mutable local segment of processor `proc`.
    pub fn local_mut(&mut self, proc: usize) -> &mut [T] {
        &mut self.local[proc]
    }

    /// Borrow every processor's local segment at once.
    pub fn locals(&self) -> &[Vec<T>] {
        &self.local
    }

    /// Mutable access to every processor's local segment at once (used by
    /// the executor which updates all processors within one simulated phase).
    pub fn locals_mut(&mut self) -> &mut [Vec<T>] {
        &mut self.local
    }

    /// Independently borrowable per-processor shards, in rank order — the
    /// form the rank-parallel executor kernels consume: each rank's kernel
    /// receives exclusive access to its own segment, so the shards can be
    /// distributed over threads (see `chaos_dmsim::Backend`).
    pub fn par_shards_mut(&mut self) -> impl Iterator<Item = &mut [T]> {
        self.local.iter_mut().map(Vec::as_mut_slice)
    }

    /// Read the element at global index `g`.
    pub fn get_global(&self, g: usize) -> &T {
        let (p, off) = self.dist.locate(g);
        &self.local[p][off]
    }

    /// Write the element at global index `g`.
    pub fn set_global(&mut self, g: usize, value: T) {
        let (p, off) = self.dist.locate(g);
        self.local[p][off] = value;
    }

    /// Overwrite this array's element values with `src`'s, shard by shard,
    /// without touching the distribution.
    ///
    /// This is the checkpoint/rollback primitive: a checkpoint is a clone of
    /// the array, and refreshing or restoring it is values-only — in steady
    /// state (same shapes on both sides) `Vec::clone_from` reuses the
    /// existing shard capacity, so no heap allocation occurs.
    ///
    /// # Panics
    /// Panics if the two arrays have different shard counts or any shard
    /// pair differs in length (i.e. the arrays were built from different
    /// distributions, or one was remapped since the checkpoint was taken).
    pub fn copy_values_from(&mut self, src: &Self)
    where
        T: Clone,
    {
        assert_eq!(
            self.local.len(),
            src.local.len(),
            "copy_values_from: shard counts differ (array was redistributed)"
        );
        for (dst, s) in self.local.iter_mut().zip(src.local.iter()) {
            assert_eq!(
                dst.len(),
                s.len(),
                "copy_values_from: shard lengths differ (array was remapped)"
            );
            dst.clone_from(s);
        }
    }

    /// Replace the distribution and local segments wholesale (used by
    /// [`crate::remap::remap`]); the two must be consistent.
    pub(crate) fn replace_storage(&mut self, dist: Distribution, local: Vec<Vec<T>>) {
        debug_assert_eq!(dist.nprocs(), local.len());
        debug_assert_eq!(
            (0..dist.nprocs())
                .map(|p| dist.local_size(p))
                .collect::<Vec<_>>(),
            local.iter().map(Vec::len).collect::<Vec<_>>()
        );
        self.dist = dist;
        self.local = local;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_and_gather_roundtrip_block() {
        let data: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let a = DistArray::from_global("x", Distribution::block(17, 4), &data);
        assert_eq!(a.to_global(), data);
        assert_eq!(a.local(0).len(), 5);
        assert_eq!(a.local(0), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn scatter_and_gather_roundtrip_irregular() {
        let map: Vec<u32> = (0..10).map(|i| (i % 3) as u32).collect();
        let data: Vec<i64> = (0..10).map(|i| 100 + i as i64).collect();
        let a = DistArray::from_global("y", Distribution::irregular_from_map(&map, 3), &data);
        assert_eq!(a.to_global(), data);
        assert_eq!(a.local(1), &[101, 104, 107]);
    }

    #[test]
    fn global_get_set() {
        let mut a: DistArray<f64> = DistArray::new("z", Distribution::cyclic(8, 2));
        a.set_global(5, 2.5);
        assert_eq!(*a.get_global(5), 2.5);
        assert_eq!(*a.get_global(0), 0.0);
        assert_eq!(a.local(1)[2], 2.5); // global 5 = cyclic (1, 2)
    }

    #[test]
    fn dad_reflects_distribution() {
        let a: DistArray<f64> = DistArray::new("x", Distribution::block(10, 2));
        let b: DistArray<f64> = DistArray::new("y", Distribution::block(10, 2));
        assert_eq!(a.dad().signature(), b.dad().signature());
        assert_eq!(a.dad().dist_kind, "BLOCK");
    }

    #[test]
    #[should_panic(expected = "does not match the distribution")]
    fn from_global_length_mismatch_panics() {
        let _ = DistArray::from_global("x", Distribution::block(4, 2), &[1.0, 2.0]);
    }

    #[test]
    fn locals_cover_whole_array() {
        let a: DistArray<u32> = DistArray::new("x", Distribution::block(11, 4));
        let total: usize = a.locals().iter().map(Vec::len).sum();
        assert_eq!(total, 11);
        assert_eq!(a.len(), 11);
        assert!(!a.is_empty());
    }
}
