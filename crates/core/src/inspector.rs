//! The inspector: PARTI's `localize` procedure.
//!
//! Given the global data-array indices a loop will reference on each
//! processor (obtained from the indirection arrays), the inspector
//!
//! 1. translates every global index to `(owner, local offset)` through the
//!    data array's distribution (dereferencing the translation table when
//!    the distribution is irregular — communication is charged),
//! 2. deduplicates off-processor references and assigns each distinct one a
//!    ghost-buffer slot,
//! 3. builds the [`CommSchedule`] that will move those elements, and
//! 4. rewrites the reference list into [`LocalRef`]s (owned offset or ghost
//!    slot) so the executor never touches a global index again.
//!
//! This is the work whose cost the paper amortizes via schedule reuse.

use crate::dist::Distribution;
use crate::schedule::CommSchedule;
use chaos_dmsim::Backend;

/// A localized reference produced by the inspector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalRef {
    /// The element is owned by the executing processor, at this local offset.
    Owned(u32),
    /// The element is an off-processor copy living in this ghost-buffer slot.
    Ghost(u32),
}

impl LocalRef {
    /// Resolve the reference against a local data slice and a ghost slice.
    #[inline]
    pub fn resolve<'a, T>(&self, local: &'a [T], ghosts: &'a [T]) -> &'a T {
        match *self {
            LocalRef::Owned(off) => &local[off as usize],
            LocalRef::Ghost(slot) => &ghosts[slot as usize],
        }
    }

    /// True when the reference stays on-processor.
    #[inline]
    pub fn is_owned(&self) -> bool {
        matches!(self, LocalRef::Owned(_))
    }
}

/// The global data-array indices each processor's loop iterations reference,
/// flattened in iteration order. `refs[p]` belongs to processor `p`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessPattern {
    /// Per-processor reference lists (global indices).
    pub refs: Vec<Vec<u32>>,
}

impl AccessPattern {
    /// An empty pattern for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        AccessPattern {
            refs: vec![Vec::new(); nprocs],
        }
    }

    /// Total number of references across processors.
    pub fn total_refs(&self) -> usize {
        self.refs.iter().map(Vec::len).sum()
    }
}

/// Result of running the inspector for one loop against one data
/// distribution.
#[derive(Debug, Clone)]
pub struct InspectorResult {
    /// The communication schedule for the loop's off-processor references.
    pub schedule: CommSchedule,
    /// The localized references, same shape as the input pattern.
    pub localized: Vec<Vec<LocalRef>>,
    /// Ghost-buffer size required on each processor.
    pub ghost_counts: Vec<usize>,
}

impl InspectorResult {
    /// Fraction of references that stay on-processor (a locality measure the
    /// benches report alongside the timings).
    pub fn local_fraction(&self) -> f64 {
        let total: usize = self.localized.iter().map(Vec::len).sum();
        if total == 0 {
            return 1.0;
        }
        let owned: usize = self
            .localized
            .iter()
            .flat_map(|l| l.iter())
            .filter(|r| r.is_owned())
            .count();
        owned as f64 / total as f64
    }
}

/// Reusable intermediate buffers for [`Inspector::localize_with_scratch`].
///
/// The inspector's working set — packed translated references, the per-
/// processor dedup buffer and the flat ghost-source arrays handed to the
/// schedule constructor — lives here, so a loop that re-runs its inspector
/// (the schedule-reuse miss path) stops allocating once the buffers have
/// grown to the workload's size.
#[derive(Debug, Clone, Default)]
pub struct LocalizeScratch {
    /// Packed `owner << 32 | offset` location of every reference, per proc.
    located: Vec<Vec<u64>>,
    /// Sorted, deduplicated off-processor keys, per proc (rank-local so the
    /// dedup kernels can run one per thread).
    offproc: Vec<Vec<u64>>,
    /// Flat CSR ghost-source arrays under construction.
    ghost_off: Vec<u32>,
    ghost_owner: Vec<u32>,
    ghost_src: Vec<u32>,
}

/// The inspector itself. Stateless; all state lives in the returned
/// [`InspectorResult`] (and optionally a caller-held [`LocalizeScratch`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Inspector;

impl Inspector {
    /// Run the inspector (PARTI `localize`).
    ///
    /// `data_dist` is the distribution of the data array being indirectly
    /// referenced; `pattern.refs[p]` are the global indices processor `p`'s
    /// iterations will access. Index translation, deduplication and schedule
    /// construction costs are charged to `machine`.
    pub fn localize<B: Backend>(
        &self,
        backend: &mut B,
        label: &str,
        data_dist: &Distribution,
        pattern: &AccessPattern,
    ) -> InspectorResult {
        let mut scratch = LocalizeScratch::default();
        self.localize_with_scratch(backend, label, data_dist, pattern, &mut scratch)
    }

    /// [`Inspector::localize`] reusing caller-held scratch buffers, so
    /// repeated inspector runs (schedule-reuse misses) stop allocating
    /// intermediates after the first call.
    ///
    /// Deduplication is hash-free: every reference is translated to a packed
    /// `owner << 32 | local_offset` key, the off-processor keys are sorted
    /// and deduplicated in one pass, and ghost slots are assigned by rank in
    /// that sorted order (identical slot numbering to the paper's
    /// owner-then-offset convention).
    ///
    /// Translation, dedup and reference rewriting are rank-local kernels
    /// (each rank touches only its own scratch rows), so on a threaded
    /// [`Backend`] they run one-per-thread; only the final CSR assembly and
    /// the schedule's request exchange remain on the driver.
    pub fn localize_with_scratch<B: Backend>(
        &self,
        backend: &mut B,
        label: &str,
        data_dist: &Distribution,
        pattern: &AccessPattern,
        scratch: &mut LocalizeScratch,
    ) -> InspectorResult {
        self.localize_impl(backend, label, data_dist, pattern, scratch, true)
    }

    /// [`Inspector::localize`] with the schedule's request exchange
    /// **deferred**: translation, dedup and reference rewriting are charged
    /// as usual, but the returned schedule has not paid its build exchange.
    ///
    /// Used by callers that [merge](crate::schedule::CommSchedule::merge)
    /// several groups' schedules into one and then charge a single
    /// [`CommSchedule::charge_build_exchange`](crate::schedule::CommSchedule::charge_build_exchange)
    /// for the union — PARTI's schedule merging. Callers that do not merge
    /// must charge the exchange themselves or the inspector cost is
    /// under-counted.
    pub fn localize_deferred_exchange<B: Backend>(
        &self,
        backend: &mut B,
        label: &str,
        data_dist: &Distribution,
        pattern: &AccessPattern,
        scratch: &mut LocalizeScratch,
    ) -> InspectorResult {
        self.localize_impl(backend, label, data_dist, pattern, scratch, false)
    }

    fn localize_impl<B: Backend>(
        &self,
        backend: &mut B,
        label: &str,
        data_dist: &Distribution,
        pattern: &AccessPattern,
        scratch: &mut LocalizeScratch,
        charge_exchange: bool,
    ) -> InspectorResult {
        let nprocs = backend.nprocs();
        assert_eq!(
            pattern.refs.len(),
            nprocs,
            "access pattern must have one reference list per processor"
        );
        assert_eq!(
            data_dist.nprocs(),
            nprocs,
            "data distribution processor count must match the machine"
        );

        // Step 1: translate all references to packed (owner, offset) keys.
        // For irregular distributions this dereferences the translation
        // table in one batched pass (charging its comm/compute); for regular
        // distributions it is rank-local arithmetic.
        match data_dist {
            Distribution::Irregular { table } => {
                table.dereference_packed(backend, label, &pattern.refs, &mut scratch.located);
            }
            _ => {
                scratch.located.resize_with(nprocs, Vec::new);
                backend.run_compute(scratch.located.iter_mut(), |ctx, row: &mut Vec<u64>| {
                    let refs = &pattern.refs[ctx.rank()];
                    ctx.charge_compute(ctx.rank(), refs.len() as f64);
                    row.clear();
                    row.reserve(refs.len());
                    for &g in refs {
                        let (o, off) = data_dist.locate(g as usize);
                        row.push(((o as u64) << 32) | off as u64);
                    }
                });
            }
        }

        // Steps 2 & 4 (rank-local kernels): dedup off-processor references
        // per processor with a single sort + dedup over the packed keys,
        // assign ghost slots (rank in sorted order — owner-major, then
        // offset), and rewrite every reference to an owned offset or a
        // ghost slot.
        let located = &scratch.located;
        let offproc = &mut scratch.offproc;
        offproc.resize_with(nprocs, Vec::new);
        let mut localized: Vec<Vec<LocalRef>> = Vec::new();
        localized.resize_with(nprocs, Vec::new);
        backend.run_compute(
            offproc.iter_mut().zip(localized.iter_mut()),
            |ctx, (offproc, locals): (&mut Vec<u64>, &mut Vec<LocalRef>)| {
                let me = ctx.rank() as u64;
                let located = &located[ctx.rank()];
                offproc.clear();
                offproc.extend(located.iter().copied().filter(|&k| (k >> 32) != me));
                offproc.sort_unstable();
                offproc.dedup();
                *locals = located
                    .iter()
                    .map(|&k| {
                        if (k >> 32) == me {
                            LocalRef::Owned(k as u32)
                        } else {
                            let slot = offproc.binary_search(&k).expect("key present after dedup");
                            LocalRef::Ghost(slot as u32)
                        }
                    })
                    .collect();
                // Charge dedup / rewrite work: ~2 ops per reference plus 1
                // per distinct off-processor element (same model as the
                // paper's hash-table accounting — the layout changed, not
                // the cost).
                ctx.charge_compute(
                    ctx.rank(),
                    2.0 * located.len() as f64 + offproc.len() as f64,
                );
            },
        );

        // Serial CSR assembly of the per-rank dedup results (cheap: one
        // append pass over the ghost sets).
        scratch.ghost_off.clear();
        scratch.ghost_owner.clear();
        scratch.ghost_src.clear();
        scratch.ghost_off.push(0);
        let mut ghost_counts: Vec<usize> = Vec::with_capacity(nprocs);
        for offproc in scratch.offproc.iter() {
            for &k in offproc {
                scratch.ghost_owner.push((k >> 32) as u32);
                scratch.ghost_src.push(k as u32);
            }
            scratch.ghost_off.push(scratch.ghost_owner.len() as u32);
            ghost_counts.push(offproc.len());
        }

        // Step 3: build the communication schedule (request exchange charged
        // inside unless deferred for merging). The schedule owns its arenas,
        // so the scratch arrays are cloned out — their capacity stays with
        // the scratch for the next run.
        let schedule = CommSchedule::from_csr_parts_local(
            nprocs,
            scratch.ghost_off.clone(),
            scratch.ghost_owner.clone(),
            scratch.ghost_src.clone(),
        );
        if charge_exchange {
            schedule.charge_build_exchange(backend.machine_mut(), label);
        }

        InspectorResult {
            schedule,
            localized,
            ghost_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::{Machine, MachineConfig};

    /// 8-element block array over 2 procs; proc 0 references globals
    /// [0, 5, 5, 1], proc 1 references [7, 2].
    fn pattern() -> AccessPattern {
        AccessPattern {
            refs: vec![vec![0, 5, 5, 1], vec![7, 2]],
        }
    }

    #[test]
    fn localize_block_distribution() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let r = Inspector.localize(&mut m, "L", &dist, &pattern());

        // Proc 0: 0 and 1 are owned (offsets 0, 1); 5 is ghost (dedup to one slot).
        assert_eq!(
            r.localized[0],
            vec![
                LocalRef::Owned(0),
                LocalRef::Ghost(0),
                LocalRef::Ghost(0),
                LocalRef::Owned(1)
            ]
        );
        // Proc 1: 7 owned at offset 3; 2 is ghost slot 0.
        assert_eq!(r.localized[1], vec![LocalRef::Owned(3), LocalRef::Ghost(0)]);
        assert_eq!(r.ghost_counts, vec![1, 1]);
        assert_eq!(r.schedule.total_ghosts(), 2);
        assert_eq!(r.schedule.message_count(), 2);
        assert!((r.local_fraction() - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn localize_irregular_distribution() {
        let mut m = Machine::new(MachineConfig::unit(2));
        // Interleave ownership: evens on 0, odds on 1.
        let map: Vec<u32> = (0..8).map(|i| (i % 2) as u32).collect();
        let dist = Distribution::irregular_from_map(&map, 2);
        let r = Inspector.localize(&mut m, "L", &dist, &pattern());
        // Proc 0 refs [0,5,5,1]: 0 owned (offset 0), 5 ghost, 1 ghost.
        assert_eq!(r.localized[0][0], LocalRef::Owned(0));
        assert!(matches!(r.localized[0][1], LocalRef::Ghost(_)));
        assert_eq!(r.localized[0][1], r.localized[0][2]);
        assert_eq!(r.ghost_counts[0], 2); // globals 5 and 1
                                          // Proc 1 refs [7,2]: 7 owned (local offset 3), 2 ghost.
        assert_eq!(r.localized[1][0], LocalRef::Owned(3));
        assert_eq!(r.ghost_counts[1], 1);
    }

    #[test]
    fn localize_charges_the_machine() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let _ = Inspector.localize(&mut m, "L", &dist, &pattern());
        assert!(m.elapsed().max_seconds() > 0.0);
        assert!(m.stats().grand_totals().messages > 0);
    }

    #[test]
    fn fully_local_pattern_has_no_ghosts() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let p = AccessPattern {
            refs: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
        };
        let r = Inspector.localize(&mut m, "L", &dist, &p);
        assert_eq!(r.schedule.total_ghosts(), 0);
        assert_eq!(r.local_fraction(), 1.0);
        assert!(r.localized.iter().flatten().all(LocalRef::is_owned));
    }

    #[test]
    fn empty_pattern_is_fine() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let r = Inspector.localize(&mut m, "L", &dist, &AccessPattern::new(2));
        assert_eq!(r.schedule.total_ghosts(), 0);
        assert_eq!(r.local_fraction(), 1.0);
        assert_eq!(AccessPattern::new(2).total_refs(), 0);
    }

    #[test]
    fn scratch_can_be_reused_across_machine_sizes() {
        // The per-rank scratch rows must follow the machine size in both
        // directions (resize_with truncates as well as grows), so one
        // scratch can serve inspectors on differently-sized machines.
        let mut scratch = LocalizeScratch::default();
        let mut big = Machine::new(MachineConfig::unit(4));
        let dist4 = Distribution::block(8, 4);
        let p4 = AccessPattern {
            refs: vec![vec![0, 7], vec![1], vec![6], vec![2, 3]],
        };
        let r4 = Inspector.localize_with_scratch(&mut big, "L", &dist4, &p4, &mut scratch);
        assert_eq!(r4.localized.len(), 4);

        let mut small = Machine::new(MachineConfig::unit(2));
        let dist2 = Distribution::block(8, 2);
        let r2 = Inspector.localize_with_scratch(&mut small, "L", &dist2, &pattern(), &mut scratch);
        assert_eq!(r2.localized.len(), 2);
        assert_eq!(r2.ghost_counts, vec![1, 1]);
        // Same result as a fresh-scratch run.
        let mut fresh = Machine::new(MachineConfig::unit(2));
        let reference = Inspector.localize(&mut fresh, "L", &dist2, &pattern());
        assert_eq!(r2.localized, reference.localized);
        assert_eq!(r2.schedule, reference.schedule);
    }

    #[test]
    fn resolve_reads_from_the_right_buffer() {
        let local = [10.0, 11.0];
        let ghosts = [99.0];
        assert_eq!(*LocalRef::Owned(1).resolve(&local, &ghosts), 11.0);
        assert_eq!(*LocalRef::Ghost(0).resolve(&local, &ghosts), 99.0);
    }

    #[test]
    #[should_panic(expected = "one reference list per processor")]
    fn wrong_pattern_shape_panics() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let dist = Distribution::block(8, 4);
        let _ = Inspector.localize(&mut m, "L", &dist, &AccessPattern::new(2));
    }
}
