//! The inspector: PARTI's `localize` procedure.
//!
//! Given the global data-array indices a loop will reference on each
//! processor (obtained from the indirection arrays), the inspector
//!
//! 1. translates every global index to `(owner, local offset)` through the
//!    data array's distribution (dereferencing the translation table when
//!    the distribution is irregular — communication is charged),
//! 2. deduplicates off-processor references and assigns each distinct one a
//!    ghost-buffer slot,
//! 3. builds the [`CommSchedule`] that will move those elements, and
//! 4. rewrites the reference list into [`LocalRef`]s (owned offset or ghost
//!    slot) so the executor never touches a global index again.
//!
//! This is the work whose cost the paper amortizes via schedule reuse.

use crate::dist::Distribution;
use crate::schedule::CommSchedule;
use chaos_dmsim::Machine;
use std::collections::HashMap;

/// A localized reference produced by the inspector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalRef {
    /// The element is owned by the executing processor, at this local offset.
    Owned(u32),
    /// The element is an off-processor copy living in this ghost-buffer slot.
    Ghost(u32),
}

impl LocalRef {
    /// Resolve the reference against a local data slice and a ghost slice.
    #[inline]
    pub fn resolve<'a, T>(&self, local: &'a [T], ghosts: &'a [T]) -> &'a T {
        match *self {
            LocalRef::Owned(off) => &local[off as usize],
            LocalRef::Ghost(slot) => &ghosts[slot as usize],
        }
    }

    /// True when the reference stays on-processor.
    #[inline]
    pub fn is_owned(&self) -> bool {
        matches!(self, LocalRef::Owned(_))
    }
}

/// The global data-array indices each processor's loop iterations reference,
/// flattened in iteration order. `refs[p]` belongs to processor `p`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessPattern {
    /// Per-processor reference lists (global indices).
    pub refs: Vec<Vec<u32>>,
}

impl AccessPattern {
    /// An empty pattern for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        AccessPattern {
            refs: vec![Vec::new(); nprocs],
        }
    }

    /// Total number of references across processors.
    pub fn total_refs(&self) -> usize {
        self.refs.iter().map(Vec::len).sum()
    }
}

/// Result of running the inspector for one loop against one data
/// distribution.
#[derive(Debug, Clone)]
pub struct InspectorResult {
    /// The communication schedule for the loop's off-processor references.
    pub schedule: CommSchedule,
    /// The localized references, same shape as the input pattern.
    pub localized: Vec<Vec<LocalRef>>,
    /// Ghost-buffer size required on each processor.
    pub ghost_counts: Vec<usize>,
}

impl InspectorResult {
    /// Fraction of references that stay on-processor (a locality measure the
    /// benches report alongside the timings).
    pub fn local_fraction(&self) -> f64 {
        let total: usize = self.localized.iter().map(Vec::len).sum();
        if total == 0 {
            return 1.0;
        }
        let owned: usize = self
            .localized
            .iter()
            .flat_map(|l| l.iter())
            .filter(|r| r.is_owned())
            .count();
        owned as f64 / total as f64
    }
}

/// The inspector itself. Stateless; all state lives in the returned
/// [`InspectorResult`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Inspector;

impl Inspector {
    /// Run the inspector (PARTI `localize`).
    ///
    /// `data_dist` is the distribution of the data array being indirectly
    /// referenced; `pattern.refs[p]` are the global indices processor `p`'s
    /// iterations will access. Index translation, deduplication and schedule
    /// construction costs are charged to `machine`.
    pub fn localize(
        &self,
        machine: &mut Machine,
        label: &str,
        data_dist: &Distribution,
        pattern: &AccessPattern,
    ) -> InspectorResult {
        let nprocs = machine.nprocs();
        assert_eq!(
            pattern.refs.len(),
            nprocs,
            "access pattern must have one reference list per processor"
        );
        assert_eq!(
            data_dist.nprocs(),
            nprocs,
            "data distribution processor count must match the machine"
        );

        // Step 1: translate all references. For irregular distributions this
        // dereferences the translation table (charging its comm/compute); for
        // regular distributions it is local arithmetic.
        let located: Vec<Vec<(u32, u32)>> = match data_dist {
            Distribution::Irregular { table } => {
                table.dereference(machine, label, &pattern.refs)
            }
            _ => {
                let mut out = Vec::with_capacity(nprocs);
                for (p, refs) in pattern.refs.iter().enumerate() {
                    machine.charge_compute(p, refs.len() as f64);
                    out.push(
                        refs.iter()
                            .map(|&g| {
                                let (o, off) = data_dist.locate(g as usize);
                                (o as u32, off as u32)
                            })
                            .collect(),
                    );
                }
                out
            }
        };

        // Step 2 & 4: dedup off-processor references per processor, assign
        // ghost slots (sorted by owner then offset for determinism), and
        // rewrite references.
        let mut ghost_sources: Vec<Vec<(u32, u32)>> = Vec::with_capacity(nprocs);
        let mut localized: Vec<Vec<LocalRef>> = Vec::with_capacity(nprocs);
        for p in 0..nprocs {
            let mut offproc: Vec<(u32, u32)> = located[p]
                .iter()
                .copied()
                .filter(|&(owner, _)| owner as usize != p)
                .collect();
            offproc.sort_unstable();
            offproc.dedup();
            let slot_of: HashMap<(u32, u32), u32> = offproc
                .iter()
                .enumerate()
                .map(|(slot, &src)| (src, slot as u32))
                .collect();

            let locals: Vec<LocalRef> = located[p]
                .iter()
                .map(|&(owner, off)| {
                    if owner as usize == p {
                        LocalRef::Owned(off)
                    } else {
                        LocalRef::Ghost(slot_of[&(owner, off)])
                    }
                })
                .collect();

            // Charge hashing / dedup / rewrite work: ~2 ops per reference
            // plus 1 per distinct off-processor element.
            machine.charge_compute(p, 2.0 * located[p].len() as f64 + offproc.len() as f64);

            ghost_sources.push(offproc);
            localized.push(locals);
        }

        // Step 3: build the communication schedule (request exchange charged
        // inside).
        let ghost_counts: Vec<usize> = ghost_sources.iter().map(Vec::len).collect();
        let schedule = CommSchedule::build(machine, label, ghost_sources);

        InspectorResult {
            schedule,
            localized,
            ghost_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::MachineConfig;

    /// 8-element block array over 2 procs; proc 0 references globals
    /// [0, 5, 5, 1], proc 1 references [7, 2].
    fn pattern() -> AccessPattern {
        AccessPattern {
            refs: vec![vec![0, 5, 5, 1], vec![7, 2]],
        }
    }

    #[test]
    fn localize_block_distribution() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let r = Inspector.localize(&mut m, "L", &dist, &pattern());

        // Proc 0: 0 and 1 are owned (offsets 0, 1); 5 is ghost (dedup to one slot).
        assert_eq!(
            r.localized[0],
            vec![
                LocalRef::Owned(0),
                LocalRef::Ghost(0),
                LocalRef::Ghost(0),
                LocalRef::Owned(1)
            ]
        );
        // Proc 1: 7 owned at offset 3; 2 is ghost slot 0.
        assert_eq!(r.localized[1], vec![LocalRef::Owned(3), LocalRef::Ghost(0)]);
        assert_eq!(r.ghost_counts, vec![1, 1]);
        assert_eq!(r.schedule.total_ghosts(), 2);
        assert_eq!(r.schedule.message_count(), 2);
        assert!((r.local_fraction() - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn localize_irregular_distribution() {
        let mut m = Machine::new(MachineConfig::unit(2));
        // Interleave ownership: evens on 0, odds on 1.
        let map: Vec<u32> = (0..8).map(|i| (i % 2) as u32).collect();
        let dist = Distribution::irregular_from_map(&map, 2);
        let r = Inspector.localize(&mut m, "L", &dist, &pattern());
        // Proc 0 refs [0,5,5,1]: 0 owned (offset 0), 5 ghost, 1 ghost.
        assert_eq!(r.localized[0][0], LocalRef::Owned(0));
        assert!(matches!(r.localized[0][1], LocalRef::Ghost(_)));
        assert_eq!(r.localized[0][1], r.localized[0][2]);
        assert_eq!(r.ghost_counts[0], 2); // globals 5 and 1
        // Proc 1 refs [7,2]: 7 owned (local offset 3), 2 ghost.
        assert_eq!(r.localized[1][0], LocalRef::Owned(3));
        assert_eq!(r.ghost_counts[1], 1);
    }

    #[test]
    fn localize_charges_the_machine() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let _ = Inspector.localize(&mut m, "L", &dist, &pattern());
        assert!(m.elapsed().max_seconds() > 0.0);
        assert!(m.stats().grand_totals().messages > 0);
    }

    #[test]
    fn fully_local_pattern_has_no_ghosts() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let p = AccessPattern {
            refs: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
        };
        let r = Inspector.localize(&mut m, "L", &dist, &p);
        assert_eq!(r.schedule.total_ghosts(), 0);
        assert_eq!(r.local_fraction(), 1.0);
        assert!(r.localized.iter().flatten().all(LocalRef::is_owned));
    }

    #[test]
    fn empty_pattern_is_fine() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let r = Inspector.localize(&mut m, "L", &dist, &AccessPattern::new(2));
        assert_eq!(r.schedule.total_ghosts(), 0);
        assert_eq!(r.local_fraction(), 1.0);
        assert_eq!(AccessPattern::new(2).total_refs(), 0);
    }

    #[test]
    fn resolve_reads_from_the_right_buffer() {
        let local = [10.0, 11.0];
        let ghosts = [99.0];
        assert_eq!(*LocalRef::Owned(1).resolve(&local, &ghosts), 11.0);
        assert_eq!(*LocalRef::Ghost(0).resolve(&local, &ghosts), 99.0);
    }

    #[test]
    #[should_panic(expected = "one reference list per processor")]
    fn wrong_pattern_shape_panics() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let dist = Distribution::block(8, 4);
        let _ = Inspector.localize(&mut m, "L", &dist, &AccessPattern::new(2));
    }
}
