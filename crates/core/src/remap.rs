//! Array remapping: move a distributed array from one distribution to
//! another (the runtime work behind the `REDISTRIBUTE` directive and
//! Figure 2's phase C).
//!
//! A remap builds a one-shot communication schedule from the old
//! distribution to the new one, ships every element whose owner changes, and
//! rebuilds the array's local segments in the new layout. The paper's
//! "Remap" table rows are exactly this cost (for the data arrays plus the
//! indirection arrays that follow the loop iterations).
//!
//! The global data-movement pass runs **rank-parallel** through
//! [`Backend::run_exchange`] mailboxes: each old owner scans its own local
//! segment, posts `(new offset, value)` payloads for the elements whose
//! owner changes and charges the per-pair transfer volume from its side of
//! the exchange; each new owner copies the elements it keeps straight
//! across from its old segment and unpacks the movers from its inbox. On
//! the threaded and pooled engines REDISTRIBUTE therefore scales with
//! ranks, while the charge model — one memory word per element that stays,
//! a pack/unpack word plus one point-to-point message per moving pair — is
//! the same on every engine, replayed in ascending rank order.

use crate::darray::DistArray;
use crate::dist::Distribution;
use chaos_dmsim::{Backend, Inbox, Outbox, PhaseEnd, RankCtx};

/// Remap `array` in place to `new_dist`, charging the data movement to
/// `backend`'s machine. Returns the number of elements that changed owner.
///
/// Values are placed directly into the new layout (the simulator shares one
/// address space) through per-rank exchange mailboxes; the per-pair
/// transfer volume is tallied rank-locally in one counting pass and charged
/// through the rank's [`RankCtx`], so the modeled clocks and statistics are
/// engine-independent by the `Backend` determinism contract.
///
/// # Panics
/// Panics if the new distribution has a different global length or processor
/// count than the old one.
pub fn remap<T, B>(
    backend: &mut B,
    label: &str,
    array: &mut DistArray<T>,
    new_dist: Distribution,
) -> usize
where
    T: Clone + Default + Send + Sync,
    B: Backend,
{
    let old_dist = array.dist().clone();
    assert_eq!(
        old_dist.len(),
        new_dist.len(),
        "remap cannot change the global array length"
    );
    assert_eq!(
        old_dist.nprocs(),
        new_dist.nprocs(),
        "remap cannot change the processor count"
    );
    let nprocs = old_dist.nprocs();

    // New local storage, built per rank in the unpack stage, plus a per-rank
    // tally of how many elements arrived from *other* ranks.
    let mut new_local: Vec<Vec<T>> = (0..nprocs)
        .map(|p| vec![T::default(); new_dist.local_size(p)])
        .collect();
    let mut moved_in = vec![0usize; nprocs];

    // One driver-side O(n) grouping pass (exactly the locate work the old
    // global scan performed): each rank's old-owned elements as
    // (old offset, new owner, new offset) triples, in local-offset order.
    // Both exchange stages iterate these rank-local lists, so the rank
    // kernels are pure data movement and charging — no per-element
    // translation lookups, and O(n/P) work per rank regardless of the
    // distribution kind.
    let mut owned: Vec<Vec<(u32, u32, u32)>> = (0..nprocs)
        .map(|p| Vec::with_capacity(old_dist.local_size(p)))
        .collect();
    for g in 0..old_dist.len() {
        let (old_p, old_off) = old_dist.locate(g);
        let (new_p, new_off) = new_dist.locate(g);
        owned[old_p].push((old_off as u32, new_p as u32, new_off as u32));
    }

    {
        let array = &*array;
        let owned = &owned;
        backend.run_exchange(
            PhaseEnd::Labelled(&format!("{label}:remap")),
            |ctx: &mut RankCtx<'_>, outbox: &mut Outbox<'_, (u32, T)>| {
                // Pack (as old owner): scan this rank's segment in local
                // order, post the elements whose owner changes to their new
                // owners, charge one memory word per element that stays and
                // tally the per-pair words for the movers.
                let src = ctx.rank();
                let local = array.local(src);
                let mut pair_words = vec![0u32; nprocs];
                for &(old_off, new_p, new_off) in &owned[src] {
                    if new_p as usize == src {
                        ctx.charge_memory(src, 1.0);
                    } else {
                        pair_words[new_p as usize] += 1;
                        outbox.post(new_p as usize, [(new_off, local[old_off as usize].clone())]);
                    }
                }
                for (dst, &words) in pair_words.iter().enumerate() {
                    if words > 0 {
                        ctx.charge_memory(src, words as f64);
                        ctx.charge_memory(dst, words as f64);
                        ctx.charge_p2p(src, dst, words as usize);
                    }
                }
            },
            new_local.iter_mut().zip(moved_in.iter_mut()),
            |ctx: &mut RankCtx<'_>,
             (segment, moved): (&mut Vec<T>, &mut usize),
             inbox: &Inbox<'_, (u32, T)>| {
                // Unpack (as new owner): copy the elements this rank keeps
                // straight across from its own old segment, then place every
                // arriving mover at its new offset.
                let me = ctx.rank();
                let local = array.local(me);
                for &(old_off, new_p, new_off) in &owned[me] {
                    if new_p as usize == me {
                        segment[new_off as usize] = local[old_off as usize].clone();
                    }
                }
                for from in 0..ctx.nprocs() {
                    let payload = inbox.from_rank(from);
                    *moved += payload.len();
                    for &(new_off, ref value) in payload {
                        segment[new_off as usize] = value.clone();
                    }
                }
            },
        );
    }

    array.replace_storage(new_dist, new_local);
    moved_in.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::{Machine, MachineConfig};

    #[test]
    fn remap_block_to_irregular_preserves_values() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let data: Vec<f64> = (0..16).map(|i| i as f64 * 1.5).collect();
        let mut a = DistArray::from_global("x", Distribution::block(16, 4), &data);
        let map: Vec<u32> = (0..16).map(|i| ((i * 7) % 4) as u32).collect();
        let new_dist = Distribution::irregular_from_map(&map, 4);
        let moved = remap(&mut m, "test", &mut a, new_dist);
        assert_eq!(a.to_global(), data, "values survive the remap");
        assert_eq!(a.dad().dist_kind, "IRREGULAR");
        assert!(moved > 0);
        assert!(m.stats().grand_totals().messages > 0);
    }

    #[test]
    fn identity_remap_moves_nothing() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut a = DistArray::from_global("x", Distribution::block(16, 4), &data);
        let moved = remap(&mut m, "test", &mut a, Distribution::block(16, 4));
        assert_eq!(moved, 0);
        assert_eq!(m.stats().grand_totals().messages, 0);
        assert_eq!(a.to_global(), data);
    }

    #[test]
    fn remap_back_and_forth_roundtrips() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let data: Vec<i64> = (0..9).map(|i| i as i64 * 3).collect();
        let mut a = DistArray::from_global("x", Distribution::block(9, 2), &data);
        remap(&mut m, "to-cyclic", &mut a, Distribution::cyclic(9, 2));
        assert_eq!(a.to_global(), data);
        assert_eq!(a.local(0).len(), 5);
        remap(&mut m, "back", &mut a, Distribution::block(9, 2));
        assert_eq!(a.to_global(), data);
        assert_eq!(a.local(0), &[0, 3, 6, 9, 12]);
    }

    #[test]
    fn remap_changes_the_dad() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let mut a = DistArray::from_global(
            "x",
            Distribution::block(8, 2),
            &(0..8).map(|i| i as f64).collect::<Vec<_>>(),
        );
        let before = a.dad().signature();
        let map: Vec<u32> = (0..8).map(|i| (i % 2) as u32).collect();
        remap(
            &mut m,
            "test",
            &mut a,
            Distribution::irregular_from_map(&map, 2),
        );
        assert_ne!(a.dad().signature(), before);
    }

    #[test]
    #[should_panic(expected = "global array length")]
    fn remap_rejects_length_change() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let mut a: DistArray<f64> = DistArray::new("x", Distribution::block(8, 2));
        remap(&mut m, "bad", &mut a, Distribution::block(9, 2));
    }
}
