//! Array remapping: move a distributed array from one distribution to
//! another (the runtime work behind the `REDISTRIBUTE` directive and
//! Figure 2's phase C).
//!
//! A remap builds a one-shot communication schedule from the old
//! distribution to the new one, ships every element whose owner changes, and
//! rebuilds the array's local segments in the new layout. The paper's
//! "Remap" table rows are exactly this cost (for the data arrays plus the
//! indirection arrays that follow the loop iterations).

use crate::darray::DistArray;
use crate::dist::Distribution;
use chaos_dmsim::{Machine, PhaseCharge};

/// Remap `array` in place to `new_dist`, charging the data movement to
/// `machine`. Returns the number of elements that changed owner.
///
/// Values are placed directly into the new layout (the simulator shares one
/// address space); the per-pair transfer volume is tallied in one counting
/// pass and charged through [`Machine::charge_p2p`], so no payload vectors
/// are materialized just to model the exchange.
///
/// # Panics
/// Panics if the new distribution has a different global length or processor
/// count than the old one.
pub fn remap<T: Clone + Default + Send>(
    machine: &mut Machine,
    label: &str,
    array: &mut DistArray<T>,
    new_dist: Distribution,
) -> usize {
    let old_dist = array.dist().clone();
    assert_eq!(
        old_dist.len(),
        new_dist.len(),
        "remap cannot change the global array length"
    );
    assert_eq!(
        old_dist.nprocs(),
        new_dist.nprocs(),
        "remap cannot change the processor count"
    );
    let nprocs = old_dist.nprocs();

    // New local storage.
    let mut new_local: Vec<Vec<T>> = (0..nprocs)
        .map(|p| vec![T::default(); new_dist.local_size(p)])
        .collect();

    // Move data and tally the transfer volume per (old owner, new owner)
    // pair. Elements that stay on the same processor are local copies
    // (memory cost only).
    let mut moved = 0usize;
    let mut pair_words = vec![0u32; nprocs * nprocs];
    for g in 0..old_dist.len() {
        let (old_p, old_off) = old_dist.locate(g);
        let (new_p, new_off) = new_dist.locate(g);
        if old_p == new_p {
            machine.charge_memory(old_p, 1.0);
        } else {
            moved += 1;
            pair_words[old_p * nprocs + new_p] += 1;
        }
        new_local[new_p][new_off] = array.local(old_p)[old_off].clone();
    }
    let mut phase = PhaseCharge::new();
    for src in 0..nprocs {
        for dst in 0..nprocs {
            let words = pair_words[src * nprocs + dst] as usize;
            if words > 0 {
                machine.charge_memory(src, words as f64);
                machine.charge_memory(dst, words as f64);
                machine.charge_p2p(&mut phase, src, dst, words);
            }
        }
    }
    machine.end_phase(&format!("{label}:remap"), phase);

    array.replace_storage(new_dist, new_local);
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::MachineConfig;

    #[test]
    fn remap_block_to_irregular_preserves_values() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let data: Vec<f64> = (0..16).map(|i| i as f64 * 1.5).collect();
        let mut a = DistArray::from_global("x", Distribution::block(16, 4), &data);
        let map: Vec<u32> = (0..16).map(|i| ((i * 7) % 4) as u32).collect();
        let new_dist = Distribution::irregular_from_map(&map, 4);
        let moved = remap(&mut m, "test", &mut a, new_dist);
        assert_eq!(a.to_global(), data, "values survive the remap");
        assert_eq!(a.dad().dist_kind, "IRREGULAR");
        assert!(moved > 0);
        assert!(m.stats().grand_totals().messages > 0);
    }

    #[test]
    fn identity_remap_moves_nothing() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut a = DistArray::from_global("x", Distribution::block(16, 4), &data);
        let moved = remap(&mut m, "test", &mut a, Distribution::block(16, 4));
        assert_eq!(moved, 0);
        assert_eq!(m.stats().grand_totals().messages, 0);
        assert_eq!(a.to_global(), data);
    }

    #[test]
    fn remap_back_and_forth_roundtrips() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let data: Vec<i64> = (0..9).map(|i| i as i64 * 3).collect();
        let mut a = DistArray::from_global("x", Distribution::block(9, 2), &data);
        remap(&mut m, "to-cyclic", &mut a, Distribution::cyclic(9, 2));
        assert_eq!(a.to_global(), data);
        assert_eq!(a.local(0).len(), 5);
        remap(&mut m, "back", &mut a, Distribution::block(9, 2));
        assert_eq!(a.to_global(), data);
        assert_eq!(a.local(0), &[0, 3, 6, 9, 12]);
    }

    #[test]
    fn remap_changes_the_dad() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let mut a = DistArray::from_global(
            "x",
            Distribution::block(8, 2),
            &(0..8).map(|i| i as f64).collect::<Vec<_>>(),
        );
        let before = a.dad().signature();
        let map: Vec<u32> = (0..8).map(|i| (i % 2) as u32).collect();
        remap(
            &mut m,
            "test",
            &mut a,
            Distribution::irregular_from_map(&map, 2),
        );
        assert_ne!(a.dad().signature(), before);
    }

    #[test]
    #[should_panic(expected = "global array length")]
    fn remap_rejects_length_change() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let mut a: DistArray<f64> = DistArray::new("x", Distribution::block(8, 2));
        remap(&mut m, "bad", &mut a, Distribution::block(9, 2));
    }
}
