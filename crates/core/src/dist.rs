//! Distributions: how a global index space is split across processors.
//!
//! Fortran D / HPF give the user `BLOCK` and `CYCLIC` regular distributions;
//! the paper's whole point is supporting *irregular* distributions described
//! by a map array (`DISTRIBUTE irreg(map)`), which in CHAOS are implemented
//! with a translation table. A [`Distribution`] answers two questions for
//! every global index: which processor owns it, and at which local offset it
//! lives there.

use crate::ttable::TranslationTable;
use std::sync::Arc;

/// A distribution of `n` global indices over `p` processors.
#[derive(Debug, Clone)]
pub enum Distribution {
    /// Contiguous blocks of `ceil(n/p)` elements (HPF `BLOCK`).
    Block {
        /// Global array size.
        n: usize,
        /// Processor count.
        p: usize,
    },
    /// Round-robin assignment (HPF `CYCLIC`).
    Cyclic {
        /// Global array size.
        n: usize,
        /// Processor count.
        p: usize,
    },
    /// Arbitrary assignment described by a translation table (the paper's
    /// `DISTRIBUTE irreg(map)`).
    Irregular {
        /// Shared translation table.
        table: Arc<TranslationTable>,
    },
}

impl Distribution {
    /// A block distribution of `n` elements over `p` processors.
    pub fn block(n: usize, p: usize) -> Self {
        assert!(p > 0, "distribution needs at least one processor");
        Distribution::Block { n, p }
    }

    /// A cyclic distribution of `n` elements over `p` processors.
    pub fn cyclic(n: usize, p: usize) -> Self {
        assert!(p > 0, "distribution needs at least one processor");
        Distribution::Cyclic { n, p }
    }

    /// An irregular distribution backed by a translation table.
    pub fn irregular(table: Arc<TranslationTable>) -> Self {
        Distribution::Irregular { table }
    }

    /// An irregular distribution built directly from a map array
    /// (`map[i]` = owning processor of global element `i`), using a
    /// replicated translation table.
    pub fn irregular_from_map(map: &[u32], p: usize) -> Self {
        Distribution::Irregular {
            table: Arc::new(TranslationTable::from_map(map, p)),
        }
    }

    /// An irregular distribution with an explicit translation-table layout
    /// policy. The CHAOS default (and the mapper coupler's choice) is the
    /// distributed, paged table: lookups for other processors' pages cost a
    /// request/response message pair, which is the dominant inspector cost
    /// the paper's tables show.
    pub fn irregular_from_map_with_policy(
        map: &[u32],
        p: usize,
        policy: crate::ttable::TTablePolicy,
    ) -> Self {
        Distribution::Irregular {
            table: Arc::new(TranslationTable::from_map_with_policy(map, p, policy)),
        }
    }

    /// Global array size.
    pub fn len(&self) -> usize {
        match self {
            Distribution::Block { n, .. } | Distribution::Cyclic { n, .. } => *n,
            Distribution::Irregular { table } => table.len(),
        }
    }

    /// True if the global size is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Processor count.
    pub fn nprocs(&self) -> usize {
        match self {
            Distribution::Block { p, .. } | Distribution::Cyclic { p, .. } => *p,
            Distribution::Irregular { table } => table.nprocs(),
        }
    }

    /// Short name of the distribution kind (as printed in tables).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Distribution::Block { .. } => "BLOCK",
            Distribution::Cyclic { .. } => "CYCLIC",
            Distribution::Irregular { .. } => "IRREGULAR",
        }
    }

    /// Block size used by the block distribution for this size/proc count.
    pub fn block_size(n: usize, p: usize) -> usize {
        n.div_ceil(p).max(1)
    }

    /// Owning processor of `global`.
    #[inline]
    pub fn owner(&self, global: usize) -> usize {
        debug_assert!(global < self.len(), "global index {global} out of range");
        match self {
            Distribution::Block { n, p } => (global / Self::block_size(*n, *p)).min(p - 1),
            Distribution::Cyclic { p, .. } => global % p,
            Distribution::Irregular { table } => table.owner(global),
        }
    }

    /// Local offset of `global` on its owning processor.
    #[inline]
    pub fn local_offset(&self, global: usize) -> usize {
        match self {
            Distribution::Block { n, p } => global - self.owner(global) * Self::block_size(*n, *p),
            Distribution::Cyclic { p, .. } => global / p,
            Distribution::Irregular { table } => table.local_offset(global),
        }
    }

    /// `(owner, local_offset)` of `global`.
    #[inline]
    pub fn locate(&self, global: usize) -> (usize, usize) {
        (self.owner(global), self.local_offset(global))
    }

    /// Number of elements owned by processor `proc`.
    pub fn local_size(&self, proc: usize) -> usize {
        match self {
            Distribution::Block { n, p } => {
                let b = Self::block_size(*n, *p);
                let start = proc * b;
                if start >= *n {
                    0
                } else {
                    (*n - start).min(b)
                }
            }
            Distribution::Cyclic { n, p } => {
                let full = n / p;
                full + usize::from(proc < n % p)
            }
            Distribution::Irregular { table } => table.local_size(proc),
        }
    }

    /// Global indices owned by `proc`, in ascending local-offset order.
    pub fn owned_globals(&self, proc: usize) -> Vec<usize> {
        match self {
            Distribution::Block { n, p } => {
                let b = Self::block_size(*n, *p);
                let start = (proc * b).min(*n);
                let end = ((proc + 1) * b).min(*n);
                (start..end).collect()
            }
            Distribution::Cyclic { n, p } => (proc..*n).step_by(*p).collect(),
            Distribution::Irregular { table } => table.owned_globals(proc),
        }
    }

    /// A stable signature identifying this distribution for DAD comparison.
    /// Two block (or cyclic) distributions of the same size over the same
    /// processor count are identical; irregular distributions are identified
    /// by their translation table's unique id (a remap always produces a new
    /// table, hence a new signature — exactly the paper's "if the array is
    /// remapped, DAD(a) changes").
    pub fn signature(&self) -> u64 {
        match self {
            Distribution::Block { n, p } => 0x1000_0000_0000_0000 | ((*n as u64) << 20) | *p as u64,
            Distribution::Cyclic { n, p } => {
                0x2000_0000_0000_0000 | ((*n as u64) << 20) | *p as u64
            }
            Distribution::Irregular { table } => 0x3000_0000_0000_0000 | table.id(),
        }
    }

    /// True when two distributions are observably identical (same signature).
    pub fn same_as(&self, other: &Distribution) -> bool {
        self.signature() == other.signature()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_distribution_layout() {
        let d = Distribution::block(10, 4);
        assert_eq!(d.len(), 10);
        assert_eq!(d.nprocs(), 4);
        // block size = ceil(10/4) = 3 -> sizes 3,3,3,1
        assert_eq!(
            (0..4).map(|p| d.local_size(p)).collect::<Vec<_>>(),
            vec![3, 3, 3, 1]
        );
        assert_eq!(d.locate(0), (0, 0));
        assert_eq!(d.locate(2), (0, 2));
        assert_eq!(d.locate(3), (1, 0));
        assert_eq!(d.locate(9), (3, 0));
        assert_eq!(d.owned_globals(1), vec![3, 4, 5]);
        assert_eq!(d.owned_globals(3), vec![9]);
    }

    #[test]
    fn block_never_exceeds_proc_range_for_tiny_arrays() {
        let d = Distribution::block(2, 8);
        assert!(d.owner(0) < 8 && d.owner(1) < 8);
        let sizes: Vec<usize> = (0..8).map(|p| d.local_size(p)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 2);
    }

    #[test]
    fn cyclic_distribution_layout() {
        let d = Distribution::cyclic(10, 4);
        assert_eq!(
            (0..4).map(|p| d.local_size(p)).collect::<Vec<_>>(),
            vec![3, 3, 2, 2]
        );
        assert_eq!(d.locate(0), (0, 0));
        assert_eq!(d.locate(4), (0, 1));
        assert_eq!(d.locate(7), (3, 1));
        assert_eq!(d.owned_globals(1), vec![1, 5, 9]);
    }

    #[test]
    fn irregular_distribution_from_map() {
        let map = vec![2u32, 0, 0, 1, 2, 1];
        let d = Distribution::irregular_from_map(&map, 3);
        assert_eq!(d.len(), 6);
        assert_eq!(d.owner(0), 2);
        assert_eq!(d.owner(3), 1);
        // local offsets follow ascending global order within each proc
        assert_eq!(d.locate(1), (0, 0));
        assert_eq!(d.locate(2), (0, 1));
        assert_eq!(d.locate(4), (2, 1));
        assert_eq!(d.local_size(0), 2);
        assert_eq!(d.local_size(1), 2);
        assert_eq!(d.local_size(2), 2);
        assert_eq!(d.owned_globals(2), vec![0, 4]);
    }

    #[test]
    fn owned_globals_and_locate_are_consistent() {
        for d in [
            Distribution::block(23, 4),
            Distribution::cyclic(23, 4),
            Distribution::irregular_from_map(
                &(0..23).map(|i| (i * 7 % 4) as u32).collect::<Vec<_>>(),
                4,
            ),
        ] {
            for p in 0..4 {
                for (off, g) in d.owned_globals(p).iter().enumerate() {
                    assert_eq!(d.locate(*g), (p, off), "{} idx {g}", d.kind_name());
                }
            }
            let total: usize = (0..4).map(|p| d.local_size(p)).sum();
            assert_eq!(total, 23);
        }
    }

    #[test]
    fn signatures_distinguish_kinds_and_sizes() {
        let a = Distribution::block(100, 4);
        let b = Distribution::block(100, 4);
        let c = Distribution::block(101, 4);
        let d = Distribution::cyclic(100, 4);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
        assert!(!a.same_as(&d));
        let m = vec![0u32; 100];
        let i1 = Distribution::irregular_from_map(&m, 4);
        let i2 = Distribution::irregular_from_map(&m, 4);
        // Each irregular build is a *new* mapping event and therefore a new DAD.
        assert!(!i1.same_as(&i2));
        assert!(i1.same_as(&i1.clone()));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        let _ = Distribution::block(10, 0);
    }
}
