//! The translation table: the CHAOS/PARTI data structure that records, for
//! every global index of an irregularly distributed array, the owning
//! processor and the local offset there.
//!
//! PARTI supports two physical layouts:
//!
//! * **replicated** — every processor holds the whole table; lookups are
//!   local but the memory cost is `O(n)` per processor, and building it
//!   requires an all-gather of the map array;
//! * **distributed (paged)** — processor `p` holds the table entries for the
//!   block of global indices `p` would own under a BLOCK distribution
//!   ("pages"); lookups for other processors' pages require a
//!   request/response message pair (the *dereference* step of the
//!   inspector).
//!
//! Both layouts answer lookups identically; they differ only in the
//! communication charged by [`TranslationTable::dereference`]. The
//! `translation` ablation bench compares them.

use chaos_dmsim::{Backend, PhaseEnd};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Physical layout policy for the translation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TTablePolicy {
    /// Whole table replicated on every processor.
    Replicated,
    /// Table pages distributed block-wise over processors.
    Distributed,
}

static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// Translation table for one irregular distribution.
#[derive(Debug)]
pub struct TranslationTable {
    id: u64,
    nprocs: usize,
    /// `owner << 32 | local_offset` per global index — the single arena
    /// every lookup answers from (one load instead of two parallel-array
    /// loads, and no duplicated state).
    packed: Vec<u64>,
    local_sizes: Vec<usize>,
    policy: TTablePolicy,
}

impl TranslationTable {
    /// Build a table from a map array (`map[i]` = owner of global index `i`)
    /// with the replicated policy.
    ///
    /// Local offsets are assigned in ascending global-index order within each
    /// processor, the same convention PARTI uses.
    pub fn from_map(map: &[u32], nprocs: usize) -> Self {
        Self::from_map_with_policy(map, nprocs, TTablePolicy::Replicated)
    }

    /// Build a table from a map array with an explicit layout policy.
    pub fn from_map_with_policy(map: &[u32], nprocs: usize, policy: TTablePolicy) -> Self {
        assert!(nprocs > 0, "translation table needs at least one processor");
        let mut local_sizes = vec![0usize; nprocs];
        let mut packed = vec![0u64; map.len()];
        for (g, &o) in map.iter().enumerate() {
            let o = o as usize;
            assert!(
                o < nprocs,
                "map[{g}] = {o} exceeds processor count {nprocs}"
            );
            packed[g] = ((o as u64) << 32) | local_sizes[o] as u64;
            local_sizes[o] += 1;
        }
        TranslationTable {
            id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
            nprocs,
            packed,
            local_sizes,
            policy,
        }
    }

    /// Unique id of this table (used in DAD signatures).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Global array size covered by the table.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// True when the table covers no elements.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Processor count.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The layout policy.
    pub fn policy(&self) -> TTablePolicy {
        self.policy
    }

    /// Owner of `global`.
    #[inline]
    pub fn owner(&self, global: usize) -> usize {
        (self.packed[global] >> 32) as usize
    }

    /// Local offset of `global` on its owner.
    #[inline]
    pub fn local_offset(&self, global: usize) -> usize {
        self.packed[global] as u32 as usize
    }

    /// Number of elements owned by `proc`.
    pub fn local_size(&self, proc: usize) -> usize {
        self.local_sizes[proc]
    }

    /// Global indices owned by `proc` in ascending local-offset order.
    pub fn owned_globals(&self, proc: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.local_sizes[proc]);
        let me = proc as u64;
        for (g, &k) in self.packed.iter().enumerate() {
            if (k >> 32) == me {
                out.push(g);
            }
        }
        out
    }

    /// Size of one table page (the block of the BLOCK distribution of the
    /// index space used by the distributed layout).
    #[inline]
    fn page_block(&self) -> usize {
        self.len().div_ceil(self.nprocs).max(1)
    }

    /// Which processor holds the table *page* for `global` under the
    /// distributed layout (a BLOCK distribution of the index space).
    #[inline]
    pub fn page_owner(&self, global: usize) -> usize {
        (global / self.page_block()).min(self.nprocs - 1)
    }

    /// Charge the machine for dereferencing `requests` (the cost side of
    /// [`TranslationTable::dereference`], shared by the packed variant).
    ///
    /// With the replicated policy the lookups are free of communication
    /// (only local table-probe compute is charged); with the distributed
    /// policy each request batch to a remote page owner incurs a
    /// request/response message pair, which is the dominant inspector cost
    /// the paper measures. Each requesting rank counts its own requests per
    /// page (a rank-local kernel, so the counting pass parallelizes on the
    /// threaded engine) — no per-index dispatch, no payload materialization
    /// (the simulator answers from the shared table; only the transfer cost
    /// is modeled, identically to shipping the indices).
    fn charge_dereference<B: Backend>(&self, backend: &mut B, label: &str, requests: &[Vec<u32>]) {
        let nprocs = self.nprocs;
        match self.policy {
            TTablePolicy::Replicated => {
                backend.run_charges(|ctx| {
                    // One table probe per request.
                    ctx.charge_compute(ctx.rank(), requests[ctx.rank()].len() as f64);
                });
            }
            TTablePolicy::Distributed => {
                // Counting pass: how many of each rank's requests land on
                // each table page. Rank r fills row r.
                let block = self.page_block();
                let mut counts = vec![0u32; nprocs * nprocs];
                backend.run_compute(counts.chunks_mut(nprocs), |ctx, row| {
                    for &g in &requests[ctx.rank()] {
                        row[(g as usize / block).min(nprocs - 1)] += 1;
                    }
                });
                // Round 1: ship requests to page owners (one word per index).
                backend.run_charge_phase(
                    PhaseEnd::Labelled(&format!("{label}:deref-request")),
                    |ctx| {
                        let p = ctx.rank();
                        for page in 0..nprocs {
                            let cnt = counts[p * nprocs + page] as usize;
                            if cnt > 0 {
                                ctx.charge_p2p(p, page, cnt);
                            }
                        }
                    },
                );
                // Round 2: page owners probe their pages and answer with
                // (owner, offset) pairs — twice the volume of the request.
                backend.run_charge_phase(
                    PhaseEnd::Labelled(&format!("{label}:deref-reply")),
                    |ctx| {
                        let p = ctx.rank();
                        for page in 0..nprocs {
                            let cnt = counts[p * nprocs + page] as usize;
                            if cnt > 0 {
                                ctx.charge_compute(page, cnt as f64);
                                ctx.charge_p2p(page, p, 2 * cnt);
                            }
                        }
                    },
                );
            }
        }
    }

    /// Dereference a batch of global indices on behalf of each requesting
    /// processor, charging the machine for any table-page traffic.
    ///
    /// `requests[p]` is the list of global indices processor `p` needs to
    /// translate; the result mirrors that shape with `(owner, local_offset)`
    /// pairs. See [`TranslationTable::dereference_packed`] for the
    /// allocation-friendly variant the inspector uses.
    pub fn dereference<B: Backend>(
        &self,
        backend: &mut B,
        label: &str,
        requests: &[Vec<u32>],
    ) -> Vec<Vec<(u32, u32)>> {
        assert_eq!(requests.len(), self.nprocs);
        self.charge_dereference(backend, label, requests);
        // The actual answers (exact, independent of the cost policy), read
        // from the packed arena in one load per lookup.
        requests
            .iter()
            .map(|reqs| {
                reqs.iter()
                    .map(|&g| {
                        let k = self.packed[g as usize];
                        ((k >> 32) as u32, k as u32)
                    })
                    .collect()
            })
            .collect()
    }

    /// [`TranslationTable::dereference`] writing packed
    /// `owner << 32 | local_offset` keys into caller-owned buffers
    /// (`out[p]` is cleared and refilled, so repeated inspector runs reuse
    /// capacity instead of reallocating). Charges the machine identically to
    /// `dereference`; the per-rank answer fill is a rank-local kernel, so it
    /// parallelizes on the threaded engine.
    pub fn dereference_packed<B: Backend>(
        &self,
        backend: &mut B,
        label: &str,
        requests: &[Vec<u32>],
        out: &mut Vec<Vec<u64>>,
    ) {
        assert_eq!(requests.len(), self.nprocs);
        self.charge_dereference(backend, label, requests);
        out.resize_with(self.nprocs, Vec::new);
        backend.run_compute(out.iter_mut(), |ctx, row: &mut Vec<u64>| {
            row.clear();
            row.extend(
                requests[ctx.rank()]
                    .iter()
                    .map(|&g| self.packed[g as usize]),
            );
        });
    }

    /// Words of table state stored on processor `proc`, used to charge the
    /// cost of building / shipping the table.
    pub fn storage_words(&self, proc: usize) -> usize {
        match self.policy {
            TTablePolicy::Replicated => 2 * self.len(),
            TTablePolicy::Distributed => {
                let block = self.page_block();
                let start = (proc * block).min(self.len());
                let end = ((proc + 1) * block).min(self.len());
                2 * (end - start)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::{Machine, MachineConfig};

    fn sample_map() -> Vec<u32> {
        vec![2, 0, 0, 1, 2, 1, 0, 3]
    }

    #[test]
    fn offsets_follow_ascending_global_order() {
        let t = TranslationTable::from_map(&sample_map(), 4);
        assert_eq!(t.len(), 8);
        assert_eq!(t.owner(0), 2);
        assert_eq!(t.local_offset(0), 0);
        assert_eq!(t.local_offset(4), 1); // second element owned by proc 2
        assert_eq!(t.local_offset(6), 2); // third element owned by proc 0
        assert_eq!(t.local_size(0), 3);
        assert_eq!(t.local_size(3), 1);
        assert_eq!(t.owned_globals(1), vec![3, 5]);
    }

    #[test]
    fn ids_are_unique() {
        let a = TranslationTable::from_map(&sample_map(), 4);
        let b = TranslationTable::from_map(&sample_map(), 4);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    #[should_panic(expected = "exceeds processor count")]
    fn rejects_out_of_range_owner() {
        let _ = TranslationTable::from_map(&[0, 9], 4);
    }

    #[test]
    fn replicated_dereference_is_comm_free() {
        let t = TranslationTable::from_map(&sample_map(), 4);
        let mut m = Machine::new(MachineConfig::unit(4));
        let answers = t.dereference(&mut m, "test", &[vec![0, 3], vec![], vec![7], vec![]]);
        assert_eq!(answers[0], vec![(2, 0), (1, 0)]);
        assert_eq!(answers[2], vec![(3, 0)]);
        assert_eq!(m.stats().grand_totals().messages, 0);
    }

    #[test]
    fn distributed_dereference_charges_messages() {
        let t = TranslationTable::from_map_with_policy(&sample_map(), 4, TTablePolicy::Distributed);
        let mut m = Machine::new(MachineConfig::unit(4));
        // proc 0 asks about global 7 whose page (block size 2) lives on proc 3.
        let answers = t.dereference(&mut m, "test", &[vec![7], vec![], vec![], vec![]]);
        assert_eq!(answers[0], vec![(3, 0)]);
        assert!(
            m.stats().grand_totals().messages >= 2,
            "request + reply expected"
        );
    }

    #[test]
    fn distributed_dereference_local_page_is_message_free() {
        let t = TranslationTable::from_map_with_policy(&sample_map(), 4, TTablePolicy::Distributed);
        let mut m = Machine::new(MachineConfig::unit(4));
        // proc 0 asks about globals 0 and 1: page owner of both is proc 0.
        let answers = t.dereference(&mut m, "test", &[vec![0, 1], vec![], vec![], vec![]]);
        assert_eq!(answers[0], vec![(2, 0), (0, 0)]);
        assert_eq!(m.stats().grand_totals().messages, 0);
    }

    #[test]
    fn page_owner_covers_whole_range() {
        let t = TranslationTable::from_map(&[0; 10], 4);
        for g in 0..10 {
            assert!(t.page_owner(g) < 4);
        }
        assert_eq!(t.page_owner(0), 0);
        assert_eq!(t.page_owner(9), 3);
    }

    #[test]
    fn storage_words_reflect_policy() {
        let rep = TranslationTable::from_map(&sample_map(), 4);
        let dist =
            TranslationTable::from_map_with_policy(&sample_map(), 4, TTablePolicy::Distributed);
        assert_eq!(rep.storage_words(0), 16);
        assert_eq!(dist.storage_words(0), 4);
        let total: usize = (0..4).map(|p| dist.storage_words(p)).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn answers_identical_across_policies() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let rep = TranslationTable::from_map(&sample_map(), 4);
        let dist =
            TranslationTable::from_map_with_policy(&sample_map(), 4, TTablePolicy::Distributed);
        let reqs = vec![vec![0, 1, 2], vec![3], vec![4, 5], vec![6, 7]];
        assert_eq!(
            rep.dereference(&mut m, "a", &reqs),
            dist.dereference(&mut m, "b", &reqs)
        );
    }
}
