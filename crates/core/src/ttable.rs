//! The translation table: the CHAOS/PARTI data structure that records, for
//! every global index of an irregularly distributed array, the owning
//! processor and the local offset there.
//!
//! PARTI supports two physical layouts:
//!
//! * **replicated** — every processor holds the whole table; lookups are
//!   local but the memory cost is `O(n)` per processor, and building it
//!   requires an all-gather of the map array;
//! * **distributed (paged)** — processor `p` holds the table entries for the
//!   block of global indices `p` would own under a BLOCK distribution
//!   ("pages"); lookups for other processors' pages require a
//!   request/response message pair (the *dereference* step of the
//!   inspector).
//!
//! Both layouts answer lookups identically; they differ only in the
//! communication charged by [`TranslationTable::dereference`]. The
//! `translation` ablation bench compares them.

use chaos_dmsim::{ExchangePlan, Machine};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Physical layout policy for the translation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TTablePolicy {
    /// Whole table replicated on every processor.
    Replicated,
    /// Table pages distributed block-wise over processors.
    Distributed,
}

static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// Translation table for one irregular distribution.
#[derive(Debug)]
pub struct TranslationTable {
    id: u64,
    nprocs: usize,
    owners: Vec<u32>,
    local_offsets: Vec<u32>,
    local_sizes: Vec<usize>,
    policy: TTablePolicy,
}

impl TranslationTable {
    /// Build a table from a map array (`map[i]` = owner of global index `i`)
    /// with the replicated policy.
    ///
    /// Local offsets are assigned in ascending global-index order within each
    /// processor, the same convention PARTI uses.
    pub fn from_map(map: &[u32], nprocs: usize) -> Self {
        Self::from_map_with_policy(map, nprocs, TTablePolicy::Replicated)
    }

    /// Build a table from a map array with an explicit layout policy.
    pub fn from_map_with_policy(map: &[u32], nprocs: usize, policy: TTablePolicy) -> Self {
        assert!(nprocs > 0, "translation table needs at least one processor");
        let mut local_sizes = vec![0usize; nprocs];
        let mut local_offsets = vec![0u32; map.len()];
        for (g, &o) in map.iter().enumerate() {
            let o = o as usize;
            assert!(o < nprocs, "map[{g}] = {o} exceeds processor count {nprocs}");
            local_offsets[g] = local_sizes[o] as u32;
            local_sizes[o] += 1;
        }
        TranslationTable {
            id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
            nprocs,
            owners: map.to_vec(),
            local_offsets,
            local_sizes,
            policy,
        }
    }

    /// Unique id of this table (used in DAD signatures).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Global array size covered by the table.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True when the table covers no elements.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Processor count.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The layout policy.
    pub fn policy(&self) -> TTablePolicy {
        self.policy
    }

    /// Owner of `global`.
    #[inline]
    pub fn owner(&self, global: usize) -> usize {
        self.owners[global] as usize
    }

    /// Local offset of `global` on its owner.
    #[inline]
    pub fn local_offset(&self, global: usize) -> usize {
        self.local_offsets[global] as usize
    }

    /// Number of elements owned by `proc`.
    pub fn local_size(&self, proc: usize) -> usize {
        self.local_sizes[proc]
    }

    /// Global indices owned by `proc` in ascending local-offset order.
    pub fn owned_globals(&self, proc: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.local_sizes[proc]);
        for (g, &o) in self.owners.iter().enumerate() {
            if o as usize == proc {
                out.push(g);
            }
        }
        out
    }

    /// Which processor holds the table *page* for `global` under the
    /// distributed layout (a BLOCK distribution of the index space).
    pub fn page_owner(&self, global: usize) -> usize {
        let block = self.len().div_ceil(self.nprocs).max(1);
        (global / block).min(self.nprocs - 1)
    }

    /// Dereference a batch of global indices on behalf of each requesting
    /// processor, charging the machine for any table-page traffic.
    ///
    /// `requests[p]` is the list of global indices processor `p` needs to
    /// translate; the result mirrors that shape with `(owner, local_offset)`
    /// pairs. With the replicated policy the lookups are free of
    /// communication (only local table-probe compute is charged); with the
    /// distributed policy each off-page request incurs a request/response
    /// message pair to the page owner, which is the dominant inspector cost
    /// the paper measures.
    pub fn dereference(
        &self,
        machine: &mut Machine,
        label: &str,
        requests: &[Vec<u32>],
    ) -> Vec<Vec<(u32, u32)>> {
        assert_eq!(requests.len(), self.nprocs);
        match self.policy {
            TTablePolicy::Replicated => {
                for (p, reqs) in requests.iter().enumerate() {
                    // One table probe per request.
                    machine.charge_compute(p, reqs.len() as f64);
                }
            }
            TTablePolicy::Distributed => {
                // Round 1: ship requests to page owners.
                let mut plan: ExchangePlan<u32> = ExchangePlan::new(self.nprocs);
                let mut counts = vec![vec![0usize; self.nprocs]; self.nprocs];
                for (p, reqs) in requests.iter().enumerate() {
                    let mut per_dest: Vec<Vec<u32>> = vec![Vec::new(); self.nprocs];
                    for &g in reqs {
                        let page = self.page_owner(g as usize);
                        per_dest[page].push(g);
                        counts[p][page] += 1;
                    }
                    for (dest, payload) in per_dest.into_iter().enumerate() {
                        plan.push(p, dest, payload);
                    }
                }
                machine.exchange(&format!("{label}:deref-request"), plan);
                // Round 2: page owners answer with (owner, offset) pairs —
                // twice the volume of the request.
                let mut reply: ExchangePlan<u32> = ExchangePlan::new(self.nprocs);
                for (p, row) in counts.iter().enumerate() {
                    for (page, &cnt) in row.iter().enumerate() {
                        if cnt > 0 {
                            // Page owner does cnt probes...
                            machine.charge_compute(page, cnt as f64);
                            // ...and replies with 2 words per probe.
                            reply.push(page, p, vec![0u32; 2 * cnt]);
                        }
                    }
                }
                machine.exchange(&format!("{label}:deref-reply"), reply);
            }
        }
        // The actual answers (exact, independent of the cost policy).
        requests
            .iter()
            .map(|reqs| {
                reqs.iter()
                    .map(|&g| (self.owners[g as usize], self.local_offsets[g as usize]))
                    .collect()
            })
            .collect()
    }

    /// Words of table state stored on processor `proc`, used to charge the
    /// cost of building / shipping the table.
    pub fn storage_words(&self, proc: usize) -> usize {
        match self.policy {
            TTablePolicy::Replicated => 2 * self.len(),
            TTablePolicy::Distributed => {
                let block = self.len().div_ceil(self.nprocs).max(1);
                let start = (proc * block).min(self.len());
                let end = ((proc + 1) * block).min(self.len());
                2 * (end - start)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::MachineConfig;

    fn sample_map() -> Vec<u32> {
        vec![2, 0, 0, 1, 2, 1, 0, 3]
    }

    #[test]
    fn offsets_follow_ascending_global_order() {
        let t = TranslationTable::from_map(&sample_map(), 4);
        assert_eq!(t.len(), 8);
        assert_eq!(t.owner(0), 2);
        assert_eq!(t.local_offset(0), 0);
        assert_eq!(t.local_offset(4), 1); // second element owned by proc 2
        assert_eq!(t.local_offset(6), 2); // third element owned by proc 0
        assert_eq!(t.local_size(0), 3);
        assert_eq!(t.local_size(3), 1);
        assert_eq!(t.owned_globals(1), vec![3, 5]);
    }

    #[test]
    fn ids_are_unique() {
        let a = TranslationTable::from_map(&sample_map(), 4);
        let b = TranslationTable::from_map(&sample_map(), 4);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    #[should_panic(expected = "exceeds processor count")]
    fn rejects_out_of_range_owner() {
        let _ = TranslationTable::from_map(&[0, 9], 4);
    }

    #[test]
    fn replicated_dereference_is_comm_free() {
        let t = TranslationTable::from_map(&sample_map(), 4);
        let mut m = Machine::new(MachineConfig::unit(4));
        let answers = t.dereference(&mut m, "test", &[vec![0, 3], vec![], vec![7], vec![]]);
        assert_eq!(answers[0], vec![(2, 0), (1, 0)]);
        assert_eq!(answers[2], vec![(3, 0)]);
        assert_eq!(m.stats().grand_totals().messages, 0);
    }

    #[test]
    fn distributed_dereference_charges_messages() {
        let t = TranslationTable::from_map_with_policy(&sample_map(), 4, TTablePolicy::Distributed);
        let mut m = Machine::new(MachineConfig::unit(4));
        // proc 0 asks about global 7 whose page (block size 2) lives on proc 3.
        let answers = t.dereference(&mut m, "test", &[vec![7], vec![], vec![], vec![]]);
        assert_eq!(answers[0], vec![(3, 0)]);
        assert!(m.stats().grand_totals().messages >= 2, "request + reply expected");
    }

    #[test]
    fn distributed_dereference_local_page_is_message_free() {
        let t = TranslationTable::from_map_with_policy(&sample_map(), 4, TTablePolicy::Distributed);
        let mut m = Machine::new(MachineConfig::unit(4));
        // proc 0 asks about globals 0 and 1: page owner of both is proc 0.
        let answers = t.dereference(&mut m, "test", &[vec![0, 1], vec![], vec![], vec![]]);
        assert_eq!(answers[0], vec![(2, 0), (0, 0)]);
        assert_eq!(m.stats().grand_totals().messages, 0);
    }

    #[test]
    fn page_owner_covers_whole_range() {
        let t = TranslationTable::from_map(&vec![0; 10], 4);
        for g in 0..10 {
            assert!(t.page_owner(g) < 4);
        }
        assert_eq!(t.page_owner(0), 0);
        assert_eq!(t.page_owner(9), 3);
    }

    #[test]
    fn storage_words_reflect_policy() {
        let rep = TranslationTable::from_map(&sample_map(), 4);
        let dist =
            TranslationTable::from_map_with_policy(&sample_map(), 4, TTablePolicy::Distributed);
        assert_eq!(rep.storage_words(0), 16);
        assert_eq!(dist.storage_words(0), 4);
        let total: usize = (0..4).map(|p| dist.storage_words(p)).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn answers_identical_across_policies() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let rep = TranslationTable::from_map(&sample_map(), 4);
        let dist =
            TranslationTable::from_map_with_policy(&sample_map(), 4, TTablePolicy::Distributed);
        let reqs = vec![vec![0, 1, 2], vec![3], vec![4, 5], vec![6, 7]];
        assert_eq!(
            rep.dereference(&mut m, "a", &reqs),
            dist.dereference(&mut m, "b", &reqs)
        );
    }
}
