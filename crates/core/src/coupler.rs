//! The mapper coupler: runtime procedures behind the paper's `CONSTRUCT`,
//! `SET ... BY PARTITIONING ... USING ...` and `REDISTRIBUTE` directives
//! (Section 4, Figures 4–6).
//!
//! The coupler runs the first three phases of Figure 2:
//!
//! * **Phase A** — build the GeoCoL structure from program arrays
//!   (geometry / connectivity / load sections) and run a partitioner on it,
//! * **Phase B** — partition loop iterations using the new data
//!   distribution (delegated to [`crate::iterpart`]),
//! * **Phase C** — remap distributed arrays (and the iteration-aligned
//!   indirection arrays) to the new distribution.
//!
//! All communication and computation is charged to the simulated machine,
//! with phase kinds set so the harness can report the same rows as Table 2
//! (graph generation, partitioner, remap, ...).

use crate::darray::DistArray;
use crate::dist::Distribution;
use crate::remap::remap;
use crate::reuse::ReuseRegistry;
use chaos_dmsim::{Backend, Machine, PhaseKind};
use chaos_geocol::{
    scan_chunk, GeoCoL, GeoColBuilder, Partitioner, Partitioning, RankScans, ScanKernel,
};

/// Description of the arrays feeding a `CONSTRUCT` directive.
///
/// Every section is optional, mirroring the directive: geometry
/// (`GEOMETRY(dim, xc, yc, zc)`), load (`LOAD(weight)`) and connectivity
/// (`LINK(E, end_pt1, end_pt2)`).
#[derive(Debug, Default)]
pub struct GeoColSpec<'a> {
    /// Number of GeoCoL vertices (the size of the decomposition being
    /// partitioned).
    pub nvertices: usize,
    /// Coordinate arrays, one per spatial axis, each aligned with the
    /// decomposition being partitioned.
    pub geometry: Vec<&'a DistArray<f64>>,
    /// Per-vertex computational load.
    pub load: Option<&'a DistArray<f64>>,
    /// Edge endpoint arrays (aligned with the *edge* decomposition).
    pub link: Option<(&'a DistArray<u32>, &'a DistArray<u32>)>,
}

impl<'a> GeoColSpec<'a> {
    /// Start a spec for `nvertices` vertices.
    pub fn new(nvertices: usize) -> Self {
        GeoColSpec {
            nvertices,
            ..Default::default()
        }
    }

    /// Add a GEOMETRY section.
    pub fn with_geometry(mut self, axes: Vec<&'a DistArray<f64>>) -> Self {
        self.geometry = axes;
        self
    }

    /// Add a LOAD section.
    pub fn with_load(mut self, load: &'a DistArray<f64>) -> Self {
        self.load = Some(load);
        self
    }

    /// Add a LINK section.
    pub fn with_link(mut self, e1: &'a DistArray<u32>, e2: &'a DistArray<u32>) -> Self {
        self.link = Some((e1, e2));
        self
    }
}

/// [`RankScans`] executor backed by [`Backend::run_compute`]: each scan
/// chunks the item range over the machine's virtual processors, runs one
/// fold kernel per rank (charging `ops_per_item` compute units per item to
/// that rank's clock) and returns the rank-major partials for driver-side
/// combination in ascending rank order. This is how partitioners that
/// implement `partition_with_scans` — RSB's power-iteration matvecs and
/// moment reductions, RCB's extent/histogram median scans, the inertial
/// partitioner's moment scans — run rank-parallel on every engine. The
/// partitioners build every pass from `chaos_geocol`'s `map_scan` /
/// `block_scan` conventions (disjoint per-item writes; fixed-size-block
/// partial sums), so the partitioning they produce through any backend is
/// bit-identical to the pure serial `Partitioner::partition` oracle.
struct BackendScans<'a, B: Backend> {
    backend: &'a mut B,
    /// Total compute units charged through the scans (all ranks), so the
    /// coupler can deduct the routed work from the partitioner's lump-sum
    /// `cost_estimate` and avoid charging it twice.
    charged_ops: f64,
}

impl<B: Backend> RankScans for BackendScans<'_, B> {
    fn nranks(&self) -> usize {
        self.backend.nprocs()
    }

    fn scan(
        &mut self,
        n_items: usize,
        width: usize,
        ops_per_item: f64,
        kernel: &ScanKernel<'_>,
    ) -> Vec<f64> {
        let nranks = self.backend.nprocs();
        let mut partials = vec![0.0; width * nranks];
        self.backend
            .run_compute(partials.chunks_mut(width), |ctx, acc: &mut [f64]| {
                let rank = ctx.rank();
                let range = scan_chunk(n_items, nranks, rank);
                ctx.charge_compute(rank, ops_per_item * range.len() as f64);
                kernel(rank, range, acc);
            });
        self.charged_ops += ops_per_item * n_items as f64;
        partials
    }
}

/// The result of `SET distfmt BY PARTITIONING G USING <partitioner>`.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// The vertex → processor assignment (the paper's `map` array).
    pub partitioning: Partitioning,
    /// The irregular distribution built from it (the paper's `distfmt`).
    pub distribution: Distribution,
}

/// The mapper coupler. Stateless; every call charges the machine it is
/// given.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapperCoupler;

impl MapperCoupler {
    /// Phase A, first half: generate the GeoCoL structure from program
    /// arrays (the `CONSTRUCT` directive).
    ///
    /// The sections are distributed arrays; assembling the standardized
    /// structure requires gathering them (an all-gather-style exchange whose
    /// volume is the size of the sections), which is the "graph generation"
    /// row of Table 2.
    pub fn construct_geocol(&self, machine: &mut Machine, spec: &GeoColSpec<'_>) -> GeoCoL {
        let prev = machine.set_phase_kind(Some(PhaseKind::GraphGeneration));

        let mut builder = GeoColBuilder::new(spec.nvertices);
        let mut gathered_words = 0usize;

        if !spec.geometry.is_empty() {
            let axes: Vec<Vec<f64>> = spec
                .geometry
                .iter()
                .map(|a| {
                    gathered_words += a.len();
                    a.to_global()
                })
                .collect();
            builder = builder.geometry(axes);
        }
        if let Some(load) = spec.load {
            gathered_words += load.len();
            builder = builder.load(load.to_global());
        }
        if let Some((e1, e2)) = spec.link {
            assert_eq!(
                e1.len(),
                e2.len(),
                "LINK endpoint arrays must have the same length"
            );
            gathered_words += 2 * e1.len();
            builder = builder.link(e1.to_global(), e2.to_global());
        }

        // Charge the gather of the section arrays: every processor
        // contributes its local pieces and receives the assembled structure
        // (ring all-gather volume ≈ section size per processor).
        let nprocs = machine.nprocs();
        let per_proc_words = gathered_words as f64 / nprocs as f64;
        for p in 0..nprocs {
            machine.charge_memory(p, gathered_words as f64);
            machine.charge_compute(p, per_proc_words);
        }
        // One representative ring exchange to account for the messages (cost
        // only; the structure is assembled directly above).
        let mut phase = chaos_dmsim::PhaseCharge::new();
        for src in 0..nprocs {
            let dst = (src + 1) % nprocs;
            if src != dst {
                machine.charge_p2p(
                    &mut phase,
                    src,
                    dst,
                    (per_proc_words.ceil() as usize).max(1),
                );
            }
        }
        machine.end_phase("geocol:assemble", phase);

        let geocol = builder
            .build()
            .expect("CONSTRUCT directive produced an invalid GeoCoL structure");
        machine.set_phase_kind(prev);
        geocol
    }

    /// Phase A, second half: run a partitioner over the GeoCoL structure
    /// (the `SET ... BY PARTITIONING ... USING <name>` directive) and build
    /// the irregular distribution from its output.
    ///
    /// The partitioner itself runs as a parallelized library routine: its
    /// estimated operation count is divided across the processors, and the
    /// resulting map array is exchanged so that every processor learns the
    /// new distribution. Partitioners that implement `partition_with_scans`
    /// (RSB, RCB, inertial) additionally run their per-vertex map and
    /// reduction passes rank-parallel through the backend — on the
    /// threaded/pooled engines the `SET ... BY PARTITIONING` phase of a
    /// program therefore executes on the worker ranks, not the driver. The
    /// work those scans charge per rank is deducted from the lump-sum
    /// estimate so it is never counted twice, and the partitioning is
    /// bit-identical to the pure serial `Partitioner::partition` on every
    /// engine and rank count.
    pub fn partition<B: Backend>(
        &self,
        backend: &mut B,
        partitioner: &dyn Partitioner,
        geocol: &GeoCoL,
    ) -> PartitionOutcome {
        let prev = backend
            .machine_mut()
            .set_phase_kind(Some(PhaseKind::Partitioner));
        let nprocs = backend.nprocs();

        let mut scans = BackendScans {
            backend,
            charged_ops: 0.0,
        };
        let partitioning = partitioner.partition_with_scans(geocol, nprocs, &mut scans);
        let scan_ops = scans.charged_ops;
        let machine = backend.machine_mut();

        // Modeled cost: parallel share of the partitioner's remaining work
        // (what the rank-parallel scans already charged is deducted)…
        let ops = ((partitioner.cost_estimate(geocol, nprocs) - scan_ops) / nprocs as f64).max(0.0);
        machine.charge_compute_all(ops);
        // …plus an all-gather of the map array so every processor holds the
        // new translation information (cost only; the map is shared state).
        let map_words_per_proc = geocol.nvertices().div_ceil(nprocs).max(1);
        let mut phase = chaos_dmsim::PhaseCharge::new();
        for src in 0..nprocs {
            for dst in 0..nprocs {
                if src != dst {
                    machine.charge_p2p(&mut phase, src, dst, map_words_per_proc);
                }
            }
        }
        machine.end_phase("partition:map-allgather", phase);

        // The new irregular distribution uses the CHAOS-style distributed
        // (paged) translation table, so subsequent inspectors pay the
        // dereference communication the paper measures.
        let distribution = Distribution::irregular_from_map_with_policy(
            partitioning.owners(),
            nprocs,
            crate::ttable::TTablePolicy::Distributed,
        );
        machine.set_phase_kind(prev);
        PartitionOutcome {
            partitioning,
            distribution,
        }
    }

    /// Phase C: remap an array to the newly computed distribution (the
    /// `REDISTRIBUTE` directive), recording the DAD change in the reuse
    /// registry so that dependent inspectors are invalidated. The data
    /// movement runs rank-parallel through [`Backend::run_exchange`].
    pub fn redistribute<T: Clone + Default + Send + Sync, B: Backend>(
        &self,
        backend: &mut B,
        registry: &mut ReuseRegistry,
        array: &mut DistArray<T>,
        new_dist: &Distribution,
    ) -> usize {
        let prev = backend.machine_mut().set_phase_kind(Some(PhaseKind::Remap));
        let old_dad = array.dad();
        let label = array.name().to_string();
        let moved = remap(backend, &label, array, new_dist.clone());
        registry.record_remap(&old_dad, &array.dad());
        backend.machine_mut().set_phase_kind(prev);
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::MachineConfig;
    use chaos_geocol::{PartitionQuality, RcbPartitioner, RsbPartitioner};

    /// A small 2-D grid workload: node coordinate arrays plus an edge list,
    /// all block-distributed initially.
    struct Fixture {
        machine: Machine,
        xc: DistArray<f64>,
        yc: DistArray<f64>,
        e1: DistArray<u32>,
        e2: DistArray<u32>,
        nnodes: usize,
    }

    fn fixture(side: usize, nprocs: usize) -> Fixture {
        let nnodes = side * side;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for r in 0..side {
            for c in 0..side {
                xs.push(c as f64);
                ys.push(r as f64);
                let v = (r * side + c) as u32;
                if c + 1 < side {
                    e1.push(v);
                    e2.push(v + 1);
                }
                if r + 1 < side {
                    e1.push(v);
                    e2.push(v + side as u32);
                }
            }
        }
        let nedges = e1.len();
        let machine = Machine::new(MachineConfig::unit(nprocs));
        Fixture {
            machine,
            xc: DistArray::from_global("xc", Distribution::block(nnodes, nprocs), &xs),
            yc: DistArray::from_global("yc", Distribution::block(nnodes, nprocs), &ys),
            e1: DistArray::from_global("end_pt1", Distribution::block(nedges, nprocs), &e1),
            e2: DistArray::from_global("end_pt2", Distribution::block(nedges, nprocs), &e2),
            nnodes,
        }
    }

    #[test]
    fn construct_geocol_assembles_all_sections() {
        let mut f = fixture(6, 4);
        let spec = GeoColSpec::new(f.nnodes)
            .with_geometry(vec![&f.xc, &f.yc])
            .with_link(&f.e1, &f.e2);
        let g = MapperCoupler.construct_geocol(&mut f.machine, &spec);
        assert_eq!(g.nvertices(), 36);
        assert_eq!(g.nedges(), 60);
        assert!(g.has_geometry() && g.has_connectivity());
        // Graph-generation phase must have been charged.
        let stats = f.machine.stats().totals_for(PhaseKind::GraphGeneration);
        assert!(stats.phases > 0);
        assert!(f.machine.elapsed().max_seconds() > 0.0);
    }

    #[test]
    fn partition_produces_usable_irregular_distribution() {
        let mut f = fixture(8, 4);
        let spec = GeoColSpec::new(f.nnodes)
            .with_geometry(vec![&f.xc, &f.yc])
            .with_link(&f.e1, &f.e2);
        let g = MapperCoupler.construct_geocol(&mut f.machine, &spec);
        let out = MapperCoupler.partition(&mut f.machine, &RcbPartitioner, &g);
        assert_eq!(out.partitioning.len(), 64);
        assert_eq!(out.distribution.len(), 64);
        assert_eq!(out.distribution.kind_name(), "IRREGULAR");
        let q = PartitionQuality::evaluate(&g, &out.partitioning);
        assert!(q.load_imbalance < 1.1);
        assert!(f.machine.stats().totals_for(PhaseKind::Partitioner).phases > 0);
    }

    #[test]
    fn rsb_partition_charges_more_than_rcb() {
        let mut f1 = fixture(8, 4);
        let spec = GeoColSpec::new(f1.nnodes)
            .with_geometry(vec![&f1.xc, &f1.yc])
            .with_link(&f1.e1, &f1.e2);
        let g = MapperCoupler.construct_geocol(&mut f1.machine, &spec);
        let before = f1.machine.elapsed();
        let _ = MapperCoupler.partition(&mut f1.machine, &RcbPartitioner, &g);
        let rcb_time = f1.machine.elapsed().since(&before).max_seconds();
        let before = f1.machine.elapsed();
        let _ = MapperCoupler.partition(&mut f1.machine, &RsbPartitioner::default(), &g);
        let rsb_time = f1.machine.elapsed().since(&before).max_seconds();
        assert!(
            rsb_time > 2.0 * rcb_time,
            "RSB ({rsb_time}) should cost much more than RCB ({rcb_time})"
        );
    }

    #[test]
    fn scan_partitioners_match_the_serial_oracle_on_every_engine() {
        use chaos_dmsim::{PooledBackend, ThreadedBackend};
        use chaos_geocol::{InertialPartitioner, Partitioner};
        // RSB, RCB and inertial route their scans through the backend; the
        // resulting partitioning must equal the pure serial partition()
        // bit for bit on all three engines, and the engines must agree on
        // the modeled clocks.
        let mut f = fixture(12, 4);
        let spec = GeoColSpec::new(f.nnodes)
            .with_geometry(vec![&f.xc, &f.yc])
            .with_link(&f.e1, &f.e2);
        let g = MapperCoupler.construct_geocol(&mut f.machine, &spec);
        let rsb = RsbPartitioner::default();
        let inertial = InertialPartitioner::default();
        let partitioners: [&dyn Partitioner; 3] = [&RcbPartitioner, &rsb, &inertial];
        for p in partitioners {
            let oracle = p.partition(&g, 4);
            let mut seq = Machine::new(MachineConfig::unit(4));
            let mut thr = ThreadedBackend::from_config(MachineConfig::unit(4));
            let mut pool = PooledBackend::with_workers(Machine::new(MachineConfig::unit(4)), 3);
            let a = MapperCoupler.partition(&mut seq, p, &g);
            let b = MapperCoupler.partition(&mut thr, p, &g);
            let c = MapperCoupler.partition(&mut pool, p, &g);
            assert_eq!(a.partitioning, oracle, "{} vs serial oracle", p.name());
            assert_eq!(b.partitioning, oracle, "{} threaded", p.name());
            assert_eq!(c.partitioning, oracle, "{} pooled", p.name());
            assert_eq!(seq.elapsed(), thr.machine().elapsed(), "{}", p.name());
            assert_eq!(seq.elapsed(), pool.machine().elapsed(), "{}", p.name());
        }
    }

    #[test]
    fn redistribute_moves_data_and_invalidates_dads() {
        let mut f = fixture(6, 4);
        let data: Vec<f64> = (0..f.nnodes).map(|i| i as f64).collect();
        let mut x = DistArray::from_global("x", Distribution::block(f.nnodes, 4), &data);
        let mut registry = ReuseRegistry::new();

        let spec = GeoColSpec::new(f.nnodes)
            .with_geometry(vec![&f.xc, &f.yc])
            .with_link(&f.e1, &f.e2);
        let g = MapperCoupler.construct_geocol(&mut f.machine, &spec);
        let out = MapperCoupler.partition(&mut f.machine, &RcbPartitioner, &g);

        let old_dad = x.dad();
        let nmod_before = registry.nmod();
        let moved =
            MapperCoupler.redistribute(&mut f.machine, &mut registry, &mut x, &out.distribution);
        assert_eq!(x.to_global(), data, "redistribution preserves values");
        assert!(moved > 0);
        assert!(registry.nmod() > nmod_before);
        assert_ne!(x.dad().signature(), old_dad.signature());
        assert!(f.machine.stats().totals_for(PhaseKind::Remap).phases > 0);
    }

    #[test]
    fn load_only_spec_builds() {
        let mut f = fixture(4, 2);
        let load =
            DistArray::from_global("w", Distribution::block(f.nnodes, 2), &vec![2.0; f.nnodes]);
        let spec = GeoColSpec::new(f.nnodes).with_load(&load);
        let g = MapperCoupler.construct_geocol(&mut f.machine, &spec);
        assert!(g.has_load());
        assert!(!g.has_geometry());
        assert_eq!(g.total_load(), 32.0);
    }
}
