//! Conservative inspector / communication-schedule reuse (Section 3 of the
//! paper).
//!
//! The registry maintains the paper's runtime record:
//!
//! * `nmod` — a global counter of how many loops / array intrinsics /
//!   statements have modified *any* distributed array ("a global time
//!   stamp"; note it counts executed writing blocks, not individual element
//!   assignments),
//! * `last_mod(DAD)` — for each data access descriptor, the value of `nmod`
//!   when an array with that DAD was last (possibly) written,
//! * per-loop records of the DADs of the loop's data arrays, the DADs of its
//!   indirection arrays, and the `last_mod` stamps of the indirection arrays
//!   at the time the loop's inspector last ran.
//!
//! Before re-executing a loop the generated code asks [`ReuseRegistry::check`];
//! the saved inspector results (schedules, iteration partitions, ghost-buffer
//! bindings) may be reused only when every data-array DAD and every
//! indirection-array DAD is unchanged **and** no indirection array may have
//! been written since the last inspector. Anything else conservatively
//! triggers a fresh inspector.

use crate::dad::{Dad, DadSignature};
use chaos_dmsim::{collectives, Machine, ReduceOp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The process-wide loop-name interner behind [`LoopId`]: name → dense id
/// plus the reverse table for diagnostics.
#[derive(Debug, Default)]
struct LoopInterner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static Mutex<LoopInterner> {
    static INTERNER: OnceLock<Mutex<LoopInterner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(LoopInterner::default()))
}

/// Identifier of an irregular loop (one per source-level FORALL).
///
/// A `LoopId` is a dense interned `u32` handle: the loop's source label is
/// hashed exactly once, when the id is created, and every subsequent use —
/// in particular the per-sweep [`ReuseRegistry::check`] — is a plain array
/// index with no `String` hashing or cloning. Two ids are equal iff their
/// labels are equal. The handle is process-local (it indexes this
/// process's interner), so it is deliberately *not* serializable; persist
/// the loop label ([`LoopId::name`]) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(u32);

impl LoopId {
    /// Intern `name`, returning its dense id (stable for the lifetime of
    /// the process; creating the same name twice yields the same id).
    pub fn new(name: &str) -> Self {
        let mut interner = interner().lock().expect("loop interner poisoned");
        if let Some(&id) = interner.ids.get(name) {
            return LoopId(id);
        }
        let id = interner.names.len() as u32;
        interner.names.push(name.to_string());
        interner.ids.insert(name.to_string(), id);
        LoopId(id)
    }

    /// The dense index of this id (used by [`ReuseRegistry`] to address its
    /// per-loop records without hashing).
    #[inline]
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// The interned loop label.
    pub fn name(&self) -> String {
        interner().lock().expect("loop interner poisoned").names[self.0 as usize].clone()
    }
}

impl std::fmt::Display for LoopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// What a loop's inspector recorded the last time it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRecord {
    /// `L.DAD(x_i)` for each data array.
    pub data_dads: Vec<Dad>,
    /// `L.DAD(ind_j)` for each indirection array.
    pub ind_dads: Vec<Dad>,
    /// `L.last_mod(DAD(ind_j))` for each indirection array.
    pub ind_stamps: Vec<u64>,
}

/// Why an inspector had to be re-run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RerunReason {
    /// The loop has never run an inspector.
    FirstExecution,
    /// The number of data or indirection arrays changed (conservative
    /// structural mismatch).
    ShapeChanged,
    /// Data array `index` now has a different DAD (e.g. it was remapped).
    DataDadChanged {
        /// Position of the array in the loop's data-array list.
        index: usize,
    },
    /// Indirection array `index` now has a different DAD.
    IndirectionDadChanged {
        /// Position of the array in the loop's indirection-array list.
        index: usize,
    },
    /// Indirection array `index` may have been written since the last
    /// inspector ran.
    IndirectionModified {
        /// Position of the array in the loop's indirection-array list.
        index: usize,
    },
}

/// The outcome of a reuse check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReuseDecision {
    /// Every condition holds: reuse the saved inspector results.
    Reuse,
    /// At least one condition failed: re-run the inspector. The reasons are
    /// reported for diagnostics and for the benches' bookkeeping.
    Rerun(Vec<RerunReason>),
}

impl ReuseDecision {
    /// True when the saved results may be reused.
    pub fn can_reuse(&self) -> bool {
        matches!(self, ReuseDecision::Reuse)
    }
}

/// The global runtime record (`nmod`, `last_mod`, per-loop records).
#[derive(Debug, Clone, Default)]
pub struct ReuseRegistry {
    nmod: u64,
    last_mod: HashMap<DadSignature, u64>,
    /// Per-loop records, dense-indexed by [`LoopId::index`] — the per-sweep
    /// reuse check is a bounds-checked array load, never a string hash.
    records: Vec<Option<LoopRecord>>,
    /// Counters for reporting: how many checks reused vs re-ran.
    reuse_hits: u64,
    reuse_misses: u64,
}

impl ReuseRegistry {
    /// Fresh registry (program start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of the global modification stamp.
    pub fn nmod(&self) -> u64 {
        self.nmod
    }

    /// `last_mod` for a DAD (0 when never written).
    pub fn last_mod(&self, dad: &Dad) -> u64 {
        self.last_mod.get(&dad.signature()).copied().unwrap_or(0)
    }

    /// Record that one block of code (a loop, an array intrinsic or a
    /// statement) has possibly written the arrays with the given DADs.
    /// Increments `nmod` once for the block, then stamps every DAD — this is
    /// the "once per loop or array intrinsic call" bookkeeping the paper
    /// argues keeps the overhead low.
    pub fn record_write_block(&mut self, dads: &[&Dad]) {
        if dads.is_empty() {
            return;
        }
        self.nmod += 1;
        for dad in dads {
            self.last_mod.insert(dad.signature(), self.nmod);
        }
    }

    /// Record a write to a single distributed array.
    pub fn record_write(&mut self, dad: &Dad) {
        self.record_write_block(&[dad]);
    }

    /// Record that an array was remapped: its DAD changed from `old` to
    /// `new`. The paper: "If the array a is remapped, it means that DAD(a)
    /// changes. In this case, we increment nmod and then set
    /// last_mod(DAD(a)) = nmod."
    pub fn record_remap(&mut self, old: &Dad, new: &Dad) {
        self.nmod += 1;
        self.last_mod.insert(old.signature(), self.nmod);
        self.last_mod.insert(new.signature(), self.nmod);
    }

    /// Store what loop `id`'s inspector saw (call right after running the
    /// inspector).
    pub fn save_inspector(&mut self, id: LoopId, data_dads: Vec<Dad>, ind_dads: Vec<Dad>) {
        let ind_stamps = ind_dads.iter().map(|d| self.last_mod(d)).collect();
        if self.records.len() <= id.index() {
            self.records.resize_with(id.index() + 1, || None);
        }
        self.records[id.index()] = Some(LoopRecord {
            data_dads,
            ind_dads,
            ind_stamps,
        });
    }

    /// The saved record for a loop, if any.
    pub fn record(&self, id: &LoopId) -> Option<&LoopRecord> {
        self.records.get(id.index()).and_then(Option::as_ref)
    }

    /// Perform the reuse check for loop `id` given the arrays' *current*
    /// DADs. Does not mutate the registry except for the hit/miss counters.
    pub fn check(&mut self, id: &LoopId, data_dads: &[Dad], ind_dads: &[Dad]) -> ReuseDecision {
        let decision = self.check_inner(id, data_dads, ind_dads);
        match &decision {
            ReuseDecision::Reuse => self.reuse_hits += 1,
            ReuseDecision::Rerun(_) => self.reuse_misses += 1,
        }
        decision
    }

    fn check_inner(&self, id: &LoopId, data_dads: &[Dad], ind_dads: &[Dad]) -> ReuseDecision {
        let Some(record) = self.record(id) else {
            return ReuseDecision::Rerun(vec![RerunReason::FirstExecution]);
        };
        let mut reasons = Vec::new();
        if record.data_dads.len() != data_dads.len() || record.ind_dads.len() != ind_dads.len() {
            return ReuseDecision::Rerun(vec![RerunReason::ShapeChanged]);
        }
        // Condition 1: DAD(x_i) == L.DAD(x_i)
        for (i, (cur, saved)) in data_dads.iter().zip(&record.data_dads).enumerate() {
            if cur.signature() != saved.signature() {
                reasons.push(RerunReason::DataDadChanged { index: i });
            }
        }
        // Condition 2: DAD(ind_j) == L.DAD(ind_j)
        for (j, (cur, saved)) in ind_dads.iter().zip(&record.ind_dads).enumerate() {
            if cur.signature() != saved.signature() {
                reasons.push(RerunReason::IndirectionDadChanged { index: j });
            }
        }
        // Condition 3: last_mod(DAD(ind_j)) == L.last_mod(DAD(ind_j))
        for (j, (cur, &saved_stamp)) in ind_dads.iter().zip(&record.ind_stamps).enumerate() {
            if self.last_mod(cur) != saved_stamp {
                reasons.push(RerunReason::IndirectionModified { index: j });
            }
        }
        if reasons.is_empty() {
            ReuseDecision::Reuse
        } else {
            ReuseDecision::Rerun(reasons)
        }
    }

    /// Perform the reuse check *on the simulated machine*, charging the small
    /// global agreement it costs: every processor evaluates its local view of
    /// the conditions and the results are combined with a single-word
    /// all-reduce (all processors must agree before anyone may skip its
    /// inspector). Returns the same decision as [`ReuseRegistry::check`].
    pub fn check_on_machine(
        &mut self,
        machine: &mut Machine,
        label: &str,
        id: &LoopId,
        data_dads: &[Dad],
        ind_dads: &[Dad],
    ) -> ReuseDecision {
        // Local evaluation: a handful of comparisons per array per processor.
        let narrays = (data_dads.len() + 2 * ind_dads.len()) as f64;
        machine.charge_compute_all(narrays);
        let decision = self.check(id, data_dads, ind_dads);
        let flag = u64::from(!decision.can_reuse());
        let votes = vec![flag; machine.nprocs()];
        let combined = collectives::all_reduce_scalar_u64(
            machine,
            &format!("{label}:reuse-check"),
            ReduceOp::Max,
            &votes,
        );
        debug_assert_eq!(combined, flag, "simulated processors always agree");
        decision
    }

    /// `(hits, misses)` counters for reporting.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.reuse_hits, self.reuse_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use chaos_dmsim::MachineConfig;

    fn block_dad(n: usize) -> Dad {
        Dad::of(&Distribution::block(n, 4))
    }

    #[test]
    fn loop_ids_are_interned_dense_handles() {
        let a = LoopId::new("interning-test-L1");
        let b = LoopId::new("interning-test-L1");
        let c = LoopId::new("interning-test-L2");
        assert_eq!(a, b, "same label interns to the same id");
        assert_eq!(a.index(), b.index());
        assert_ne!(a, c);
        assert_eq!(a.name(), "interning-test-L1");
        assert_eq!(format!("{c}"), "interning-test-L2");
    }

    #[test]
    fn first_execution_requires_inspector() {
        let mut reg = ReuseRegistry::new();
        let d = block_dad(100);
        let decision = reg.check(
            &LoopId::new("L2"),
            std::slice::from_ref(&d),
            std::slice::from_ref(&d),
        );
        assert_eq!(
            decision,
            ReuseDecision::Rerun(vec![RerunReason::FirstExecution])
        );
    }

    #[test]
    fn unchanged_arrays_reuse() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        let d = reg.check(&LoopId::new("L"), &[data], &[ind]);
        assert!(d.can_reuse());
        assert_eq!(reg.hit_miss(), (1, 0));
    }

    #[test]
    fn writing_an_indirection_array_invalidates() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        // Some loop writes an array with the indirection array's DAD.
        reg.record_write(&ind);
        let d = reg.check(&LoopId::new("L"), &[data], &[ind]);
        assert_eq!(
            d,
            ReuseDecision::Rerun(vec![RerunReason::IndirectionModified { index: 0 }])
        );
    }

    #[test]
    fn writing_only_data_arrays_does_not_invalidate() {
        // The executor writes y every iteration; as long as y is not used as
        // an indirection array the schedule stays valid. (Conservatively,
        // arrays sharing y's DAD are also stamped — but the indirection
        // array here has a different DAD.)
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        reg.record_write(&data);
        reg.record_write(&data);
        assert!(reg.check(&LoopId::new("L"), &[data], &[ind]).can_reuse());
    }

    #[test]
    fn conservative_false_sharing_of_dads_invalidates() {
        // Two different arrays with the *same* DAD (same size, same block
        // distribution): writing one conservatively invalidates loops whose
        // indirection array shares that DAD. This is exactly the
        // over-approximation the paper accepts.
        let mut reg = ReuseRegistry::new();
        let ind = block_dad(300);
        let same_dad_other_array = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![block_dad(100)], vec![ind.clone()]);
        reg.record_write(&same_dad_other_array);
        assert!(!reg
            .check(&LoopId::new("L"), &[block_dad(100)], &[ind])
            .can_reuse());
    }

    #[test]
    fn remap_of_data_array_invalidates_via_dad_change() {
        let mut reg = ReuseRegistry::new();
        let data_old = Dad::of(&Distribution::block(100, 4));
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data_old.clone()], vec![ind.clone()]);
        // Remap: the data array now has an irregular distribution.
        let map: Vec<u32> = (0..100).map(|i| (i % 4) as u32).collect();
        let data_new = Dad::of(&Distribution::irregular_from_map(&map, 4));
        reg.record_remap(&data_old, &data_new);
        let d = reg.check(&LoopId::new("L"), &[data_new], &[ind]);
        assert_eq!(
            d,
            ReuseDecision::Rerun(vec![RerunReason::DataDadChanged { index: 0 }])
        );
    }

    #[test]
    fn rerunning_inspector_restores_reuse() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        reg.record_write(&ind);
        assert!(!reg
            .check(
                &LoopId::new("L"),
                std::slice::from_ref(&data),
                std::slice::from_ref(&ind)
            )
            .can_reuse());
        // Re-run the inspector (records the new stamp).
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        assert!(reg.check(&LoopId::new("L"), &[data], &[ind]).can_reuse());
        assert_eq!(reg.hit_miss(), (1, 1));
    }

    #[test]
    fn shape_change_is_conservative() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        let d = reg.check(&LoopId::new("L"), &[data.clone(), data.clone()], &[ind]);
        assert_eq!(d, ReuseDecision::Rerun(vec![RerunReason::ShapeChanged]));
    }

    #[test]
    fn nmod_counts_blocks_not_elements() {
        let mut reg = ReuseRegistry::new();
        let a = block_dad(10);
        let b = block_dad(20);
        reg.record_write_block(&[&a, &b]);
        assert_eq!(reg.nmod(), 1);
        assert_eq!(reg.last_mod(&a), 1);
        assert_eq!(reg.last_mod(&b), 1);
        reg.record_write_block(&[]);
        assert_eq!(reg.nmod(), 1, "empty blocks do not advance nmod");
        reg.record_write(&a);
        assert_eq!(reg.nmod(), 2);
        assert_eq!(reg.last_mod(&b), 1);
    }

    #[test]
    fn check_on_machine_charges_an_allreduce() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        let mut m = Machine::new(MachineConfig::unit(4));
        let d = reg.check_on_machine(&mut m, "L", &LoopId::new("L"), &[data], &[ind]);
        assert!(d.can_reuse());
        assert!(m.stats().grand_totals().messages > 0);
        assert!(m.elapsed().max_seconds() > 0.0);
    }
}
