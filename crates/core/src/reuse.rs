//! Conservative inspector / communication-schedule reuse (Section 3 of the
//! paper).
//!
//! The registry maintains the paper's runtime record:
//!
//! * `nmod` — a global counter of how many loops / array intrinsics /
//!   statements have modified *any* distributed array ("a global time
//!   stamp"; note it counts executed writing blocks, not individual element
//!   assignments),
//! * `last_mod(DAD)` — for each data access descriptor, the value of `nmod`
//!   when an array with that DAD was last (possibly) written,
//! * per-loop records of the DADs of the loop's data arrays, the DADs of its
//!   indirection arrays, and the `last_mod` stamps of the indirection arrays
//!   at the time the loop's inspector last ran.
//!
//! Before re-executing a loop the generated code asks [`ReuseRegistry::check`];
//! the saved inspector results (schedules, iteration partitions, ghost-buffer
//! bindings) may be reused only when every data-array DAD and every
//! indirection-array DAD is unchanged **and** no indirection array may have
//! been written since the last inspector. Anything else conservatively
//! triggers a fresh inspector.

use crate::dad::{Dad, DadSignature};
use crate::schedule::CommSchedule;
use chaos_dmsim::{collectives, Machine, ReduceOp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The process-wide loop-name interner behind [`LoopId`]: name → dense id
/// plus the reverse table for diagnostics.
#[derive(Debug, Default)]
struct LoopInterner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static Mutex<LoopInterner> {
    static INTERNER: OnceLock<Mutex<LoopInterner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(LoopInterner::default()))
}

/// Identifier of an irregular loop (one per source-level FORALL).
///
/// A `LoopId` is a dense interned `u32` handle: the loop's source label is
/// hashed exactly once, when the id is created, and every subsequent use —
/// in particular the per-sweep [`ReuseRegistry::check`] — is a plain array
/// index with no `String` hashing or cloning. Two ids are equal iff their
/// labels are equal. The handle is process-local (it indexes this
/// process's interner), so it is deliberately *not* serializable; persist
/// the loop label ([`LoopId::name`]) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(u32);

impl LoopId {
    /// Intern `name`, returning its dense id (stable for the lifetime of
    /// the process; creating the same name twice yields the same id).
    pub fn new(name: &str) -> Self {
        let mut interner = interner().lock().expect("loop interner poisoned");
        if let Some(&id) = interner.ids.get(name) {
            return LoopId(id);
        }
        let id = interner.names.len() as u32;
        interner.names.push(name.to_string());
        interner.ids.insert(name.to_string(), id);
        LoopId(id)
    }

    /// The dense index of this id (used by [`ReuseRegistry`] to address its
    /// per-loop records without hashing).
    #[inline]
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// The interned loop label.
    pub fn name(&self) -> String {
        interner().lock().expect("loop interner poisoned").names[self.0 as usize].clone()
    }
}

impl std::fmt::Display for LoopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// What a loop's inspector recorded the last time it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRecord {
    /// `L.DAD(x_i)` for each data array.
    pub data_dads: Vec<Dad>,
    /// `L.DAD(ind_j)` for each indirection array.
    pub ind_dads: Vec<Dad>,
    /// `L.last_mod(DAD(ind_j))` for each indirection array.
    pub ind_stamps: Vec<u64>,
}

/// Why an inspector had to be re-run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RerunReason {
    /// The loop has never run an inspector.
    FirstExecution,
    /// The number of data or indirection arrays changed (conservative
    /// structural mismatch).
    ShapeChanged,
    /// Data array `index` now has a different DAD (e.g. it was remapped).
    DataDadChanged {
        /// Position of the array in the loop's data-array list.
        index: usize,
    },
    /// Indirection array `index` now has a different DAD.
    IndirectionDadChanged {
        /// Position of the array in the loop's indirection-array list.
        index: usize,
    },
    /// Indirection array `index` may have been written since the last
    /// inspector ran.
    IndirectionModified {
        /// Position of the array in the loop's indirection-array list.
        index: usize,
    },
}

/// The outcome of a reuse check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReuseDecision {
    /// Every condition holds: reuse the saved inspector results.
    Reuse,
    /// At least one condition failed: re-run the inspector. The reasons are
    /// reported for diagnostics and for the benches' bookkeeping.
    Rerun(Vec<RerunReason>),
}

impl ReuseDecision {
    /// True when the saved results may be reused.
    pub fn can_reuse(&self) -> bool {
        matches!(self, ReuseDecision::Reuse)
    }
}

/// The union of ghost elements every loop over one distribution signature
/// has bound so far — the shared resident ghost region incremental
/// schedules fetch into.
///
/// The region is **append-only**: each [`ReuseRegistry::region_bind`] adds
/// one *chunk* (possibly empty) of newly requested sources per processor,
/// and existing slot numbers never move — so the re-binding maps earlier
/// loops received stay valid forever. A chunk whose loop re-binds (its
/// inspector re-ran) is marked dead; dead chunks keep their slots (offset
/// stability) but no loop's binding points at them anymore, and value
/// freshness is tracked per chunk by the consumer.
#[derive(Debug, Clone)]
pub struct GhostRegion {
    /// Union schedule over all chunks, per-processor in chunk order (NOT
    /// globally canonical — each chunk is internally `(owner, offset)`
    /// sorted).
    resident: CommSchedule,
    /// Per processor, the chunk boundaries: chunk `c`'s slots on processor
    /// `p` are `chunk_off[p][c] .. chunk_off[p][c+1]`. Length `nchunks + 1`.
    chunk_off: Vec<Vec<u32>>,
    /// The loop key each chunk was bound for.
    chunk_loop: Vec<u32>,
    /// False once the chunk's loop has re-bound (stale binding).
    chunk_live: Vec<bool>,
}

impl GhostRegion {
    fn empty(nprocs: usize) -> Self {
        GhostRegion {
            resident: CommSchedule::from_csr_parts_local(
                nprocs,
                vec![0; nprocs + 1],
                Vec::new(),
                Vec::new(),
            ),
            chunk_off: vec![vec![0]; nprocs],
            chunk_loop: Vec::new(),
            chunk_live: Vec::new(),
        }
    }

    /// The resident union schedule (all chunks).
    pub fn resident(&self) -> &CommSchedule {
        &self.resident
    }

    /// Number of chunks bound so far (live or dead).
    pub fn nchunks(&self) -> usize {
        self.chunk_loop.len()
    }

    /// Region row length (total resident ghost slots) for processor `p`.
    pub fn size(&self, p: usize) -> usize {
        self.resident.ghost_count(p)
    }

    /// Whether chunk `c`'s owning loop still points at it.
    pub fn chunk_is_live(&self, c: usize) -> bool {
        self.chunk_live[c]
    }
}

/// A loop's binding into a [`GhostRegion`]: which chunk it appended, which
/// earlier chunks its re-used slots live in, and how its own schedule's
/// ghost slots map into the region rows.
#[derive(Debug, Clone)]
pub struct RegionBinding {
    /// The distribution signature whose region this binds into.
    pub sig: DadSignature,
    /// The chunk this bind appended (may be empty on every processor).
    pub chunk: u32,
    /// Earlier chunks (sorted, deduplicated) holding slots this loop reads —
    /// the chunks that must be value-fresh for the incremental fetch to be
    /// sufficient. Never includes [`RegionBinding::chunk`] itself.
    pub deps: Vec<u32>,
    /// Per processor, the region slot of each of the loop's own ghost slots.
    pub slot_map: Vec<Vec<u32>>,
    /// The sources this loop needed that no earlier chunk held — the
    /// incremental fetch schedule.
    pub diff: CommSchedule,
    /// Per processor, the region offset this bind's chunk starts at (the
    /// base the [`crate::executor::gather_rows_offset`] fetch lands at).
    pub base: Vec<u32>,
}

/// The global runtime record (`nmod`, `last_mod`, per-loop records).
#[derive(Debug, Clone, Default)]
pub struct ReuseRegistry {
    nmod: u64,
    last_mod: HashMap<DadSignature, u64>,
    /// Per-loop records, dense-indexed by [`LoopId::index`] — the per-sweep
    /// reuse check is a bounds-checked array load, never a string hash.
    records: Vec<Option<LoopRecord>>,
    /// Counters for reporting: how many checks reused vs re-ran.
    reuse_hits: u64,
    reuse_misses: u64,
    /// Shared resident ghost regions, one per distribution signature.
    regions: HashMap<DadSignature, GhostRegion>,
    /// Global counter behind the per-array write stamps.
    array_clock: u64,
    /// Per *array* (by name) write stamps. DAD-keyed `last_mod` deliberately
    /// over-approximates (two arrays on the same distribution share a
    /// stamp); region value freshness must not, or one array's resident
    /// ghosts would be served for another's.
    array_stamps: HashMap<String, u64>,
}

impl ReuseRegistry {
    /// Fresh registry (program start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of the global modification stamp.
    pub fn nmod(&self) -> u64 {
        self.nmod
    }

    /// `last_mod` for a DAD (0 when never written).
    pub fn last_mod(&self, dad: &Dad) -> u64 {
        self.last_mod.get(&dad.signature()).copied().unwrap_or(0)
    }

    /// Record that one block of code (a loop, an array intrinsic or a
    /// statement) has possibly written the arrays with the given DADs.
    /// Increments `nmod` once for the block, then stamps every DAD — this is
    /// the "once per loop or array intrinsic call" bookkeeping the paper
    /// argues keeps the overhead low.
    pub fn record_write_block(&mut self, dads: &[&Dad]) {
        if dads.is_empty() {
            return;
        }
        self.nmod += 1;
        for dad in dads {
            self.last_mod.insert(dad.signature(), self.nmod);
        }
    }

    /// Record a write to a single distributed array.
    pub fn record_write(&mut self, dad: &Dad) {
        self.record_write_block(&[dad]);
    }

    /// Record that an array was remapped: its DAD changed from `old` to
    /// `new`. The paper: "If the array a is remapped, it means that DAD(a)
    /// changes. In this case, we increment nmod and then set
    /// last_mod(DAD(a)) = nmod."
    pub fn record_remap(&mut self, old: &Dad, new: &Dad) {
        self.nmod += 1;
        self.last_mod.insert(old.signature(), self.nmod);
        self.last_mod.insert(new.signature(), self.nmod);
    }

    /// Store what loop `id`'s inspector saw (call right after running the
    /// inspector).
    pub fn save_inspector(&mut self, id: LoopId, data_dads: Vec<Dad>, ind_dads: Vec<Dad>) {
        let ind_stamps = ind_dads.iter().map(|d| self.last_mod(d)).collect();
        if self.records.len() <= id.index() {
            self.records.resize_with(id.index() + 1, || None);
        }
        self.records[id.index()] = Some(LoopRecord {
            data_dads,
            ind_dads,
            ind_stamps,
        });
    }

    /// The saved record for a loop, if any.
    pub fn record(&self, id: &LoopId) -> Option<&LoopRecord> {
        self.records.get(id.index()).and_then(Option::as_ref)
    }

    /// Perform the reuse check for loop `id` given the arrays' *current*
    /// DADs. Does not mutate the registry except for the hit/miss counters.
    pub fn check(&mut self, id: &LoopId, data_dads: &[Dad], ind_dads: &[Dad]) -> ReuseDecision {
        let decision = self.check_inner(id, data_dads, ind_dads);
        match &decision {
            ReuseDecision::Reuse => self.reuse_hits += 1,
            ReuseDecision::Rerun(_) => self.reuse_misses += 1,
        }
        decision
    }

    fn check_inner(&self, id: &LoopId, data_dads: &[Dad], ind_dads: &[Dad]) -> ReuseDecision {
        let Some(record) = self.record(id) else {
            return ReuseDecision::Rerun(vec![RerunReason::FirstExecution]);
        };
        let mut reasons = Vec::new();
        if record.data_dads.len() != data_dads.len() || record.ind_dads.len() != ind_dads.len() {
            return ReuseDecision::Rerun(vec![RerunReason::ShapeChanged]);
        }
        // Condition 1: DAD(x_i) == L.DAD(x_i)
        for (i, (cur, saved)) in data_dads.iter().zip(&record.data_dads).enumerate() {
            if cur.signature() != saved.signature() {
                reasons.push(RerunReason::DataDadChanged { index: i });
            }
        }
        // Condition 2: DAD(ind_j) == L.DAD(ind_j)
        for (j, (cur, saved)) in ind_dads.iter().zip(&record.ind_dads).enumerate() {
            if cur.signature() != saved.signature() {
                reasons.push(RerunReason::IndirectionDadChanged { index: j });
            }
        }
        // Condition 3: last_mod(DAD(ind_j)) == L.last_mod(DAD(ind_j))
        for (j, (cur, &saved_stamp)) in ind_dads.iter().zip(&record.ind_stamps).enumerate() {
            if self.last_mod(cur) != saved_stamp {
                reasons.push(RerunReason::IndirectionModified { index: j });
            }
        }
        if reasons.is_empty() {
            ReuseDecision::Reuse
        } else {
            ReuseDecision::Rerun(reasons)
        }
    }

    /// Perform the reuse check *on the simulated machine*, charging the small
    /// global agreement it costs: every processor evaluates its local view of
    /// the conditions and the results are combined with a single-word
    /// all-reduce (all processors must agree before anyone may skip its
    /// inspector). Returns the same decision as [`ReuseRegistry::check`].
    pub fn check_on_machine(
        &mut self,
        machine: &mut Machine,
        label: &str,
        id: &LoopId,
        data_dads: &[Dad],
        ind_dads: &[Dad],
    ) -> ReuseDecision {
        // Local evaluation: a handful of comparisons per array per processor.
        let narrays = (data_dads.len() + 2 * ind_dads.len()) as f64;
        machine.charge_compute_all(narrays);
        let decision = self.check(id, data_dads, ind_dads);
        let flag = u64::from(!decision.can_reuse());
        let votes = vec![flag; machine.nprocs()];
        let combined = collectives::all_reduce_scalar_u64(
            machine,
            &format!("{label}:reuse-check"),
            ReduceOp::Max,
            &votes,
        );
        debug_assert_eq!(combined, flag, "simulated processors always agree");
        decision
    }

    /// `(hits, misses)` counters for reporting.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.reuse_hits, self.reuse_misses)
    }

    /// Bind loop `loop_key`'s schedule into the shared resident ghost region
    /// of distribution signature `sig`, creating the region on first use.
    ///
    /// Any chunks the loop bound before are retired (its inspector re-ran,
    /// so the old binding is stale — the REDISTRIBUTE / indirection-write
    /// invalidation path), then the loop's still-missing sources are
    /// appended as a new chunk. The returned binding carries the difference
    /// schedule to fetch, the per-processor chunk bases, the slot map into
    /// the region, and the earlier chunks whose values the loop piggybacks
    /// on. Purely local bookkeeping — no communication is charged here; the
    /// caller owns the (folded) request exchange for `diff`.
    pub fn region_bind(
        &mut self,
        sig: DadSignature,
        loop_key: u32,
        schedule: &CommSchedule,
    ) -> RegionBinding {
        let nprocs = schedule.nprocs();
        let region = self
            .regions
            .entry(sig)
            .or_insert_with(|| GhostRegion::empty(nprocs));
        assert_eq!(
            region.resident.nprocs(),
            nprocs,
            "region/schedule machine size mismatch"
        );
        for (c, &l) in region.chunk_loop.iter().enumerate() {
            if l == loop_key {
                region.chunk_live[c] = false;
            }
        }
        let diff = schedule.difference(&region.resident);
        let (merged, slot_map) = region.resident.merge_incremental(schedule);
        let base: Vec<u32> = (0..nprocs)
            .map(|p| region.resident.ghost_count(p) as u32)
            .collect();
        let mut deps: Vec<u32> = Vec::new();
        for p in 0..nprocs {
            let offs = &region.chunk_off[p];
            for &slot in &slot_map[p] {
                if slot < base[p] {
                    deps.push((offs.partition_point(|&o| o <= slot) - 1) as u32);
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        let chunk = region.chunk_loop.len() as u32;
        region.chunk_loop.push(loop_key);
        region.chunk_live.push(true);
        for p in 0..nprocs {
            region.chunk_off[p].push(merged.ghost_count(p) as u32);
        }
        region.resident = merged;
        RegionBinding {
            sig,
            chunk,
            deps,
            slot_map,
            diff,
            base,
        }
    }

    /// The resident ghost region for a distribution signature, if any loop
    /// has bound into it.
    pub fn region(&self, sig: DadSignature) -> Option<&GhostRegion> {
        self.regions.get(&sig)
    }

    /// Record that the named array's values may have changed. Unlike
    /// [`ReuseRegistry::record_write_block`] this is keyed by array *name*,
    /// not DAD — it answers "are the resident ghost values of this array
    /// still current?", which must not be shared between arrays that merely
    /// have the same distribution. Allocation-free once the array has been
    /// stamped once.
    pub fn note_array_write(&mut self, name: &str) {
        self.array_clock += 1;
        if let Some(stamp) = self.array_stamps.get_mut(name) {
            *stamp = self.array_clock;
        } else {
            self.array_stamps.insert(name.to_string(), self.array_clock);
        }
    }

    /// The named array's current write stamp (0 when never written).
    pub fn array_stamp(&self, name: &str) -> u64 {
        self.array_stamps.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use chaos_dmsim::MachineConfig;

    fn block_dad(n: usize) -> Dad {
        Dad::of(&Distribution::block(n, 4))
    }

    #[test]
    fn loop_ids_are_interned_dense_handles() {
        let a = LoopId::new("interning-test-L1");
        let b = LoopId::new("interning-test-L1");
        let c = LoopId::new("interning-test-L2");
        assert_eq!(a, b, "same label interns to the same id");
        assert_eq!(a.index(), b.index());
        assert_ne!(a, c);
        assert_eq!(a.name(), "interning-test-L1");
        assert_eq!(format!("{c}"), "interning-test-L2");
    }

    #[test]
    fn first_execution_requires_inspector() {
        let mut reg = ReuseRegistry::new();
        let d = block_dad(100);
        let decision = reg.check(
            &LoopId::new("L2"),
            std::slice::from_ref(&d),
            std::slice::from_ref(&d),
        );
        assert_eq!(
            decision,
            ReuseDecision::Rerun(vec![RerunReason::FirstExecution])
        );
    }

    #[test]
    fn unchanged_arrays_reuse() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        let d = reg.check(&LoopId::new("L"), &[data], &[ind]);
        assert!(d.can_reuse());
        assert_eq!(reg.hit_miss(), (1, 0));
    }

    #[test]
    fn writing_an_indirection_array_invalidates() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        // Some loop writes an array with the indirection array's DAD.
        reg.record_write(&ind);
        let d = reg.check(&LoopId::new("L"), &[data], &[ind]);
        assert_eq!(
            d,
            ReuseDecision::Rerun(vec![RerunReason::IndirectionModified { index: 0 }])
        );
    }

    #[test]
    fn writing_only_data_arrays_does_not_invalidate() {
        // The executor writes y every iteration; as long as y is not used as
        // an indirection array the schedule stays valid. (Conservatively,
        // arrays sharing y's DAD are also stamped — but the indirection
        // array here has a different DAD.)
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        reg.record_write(&data);
        reg.record_write(&data);
        assert!(reg.check(&LoopId::new("L"), &[data], &[ind]).can_reuse());
    }

    #[test]
    fn conservative_false_sharing_of_dads_invalidates() {
        // Two different arrays with the *same* DAD (same size, same block
        // distribution): writing one conservatively invalidates loops whose
        // indirection array shares that DAD. This is exactly the
        // over-approximation the paper accepts.
        let mut reg = ReuseRegistry::new();
        let ind = block_dad(300);
        let same_dad_other_array = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![block_dad(100)], vec![ind.clone()]);
        reg.record_write(&same_dad_other_array);
        assert!(!reg
            .check(&LoopId::new("L"), &[block_dad(100)], &[ind])
            .can_reuse());
    }

    #[test]
    fn remap_of_data_array_invalidates_via_dad_change() {
        let mut reg = ReuseRegistry::new();
        let data_old = Dad::of(&Distribution::block(100, 4));
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data_old.clone()], vec![ind.clone()]);
        // Remap: the data array now has an irregular distribution.
        let map: Vec<u32> = (0..100).map(|i| (i % 4) as u32).collect();
        let data_new = Dad::of(&Distribution::irregular_from_map(&map, 4));
        reg.record_remap(&data_old, &data_new);
        let d = reg.check(&LoopId::new("L"), &[data_new], &[ind]);
        assert_eq!(
            d,
            ReuseDecision::Rerun(vec![RerunReason::DataDadChanged { index: 0 }])
        );
    }

    #[test]
    fn rerunning_inspector_restores_reuse() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        reg.record_write(&ind);
        assert!(!reg
            .check(
                &LoopId::new("L"),
                std::slice::from_ref(&data),
                std::slice::from_ref(&ind)
            )
            .can_reuse());
        // Re-run the inspector (records the new stamp).
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        assert!(reg.check(&LoopId::new("L"), &[data], &[ind]).can_reuse());
        assert_eq!(reg.hit_miss(), (1, 1));
    }

    #[test]
    fn shape_change_is_conservative() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        let d = reg.check(&LoopId::new("L"), &[data.clone(), data.clone()], &[ind]);
        assert_eq!(d, ReuseDecision::Rerun(vec![RerunReason::ShapeChanged]));
    }

    #[test]
    fn nmod_counts_blocks_not_elements() {
        let mut reg = ReuseRegistry::new();
        let a = block_dad(10);
        let b = block_dad(20);
        reg.record_write_block(&[&a, &b]);
        assert_eq!(reg.nmod(), 1);
        assert_eq!(reg.last_mod(&a), 1);
        assert_eq!(reg.last_mod(&b), 1);
        reg.record_write_block(&[]);
        assert_eq!(reg.nmod(), 1, "empty blocks do not advance nmod");
        reg.record_write(&a);
        assert_eq!(reg.nmod(), 2);
        assert_eq!(reg.last_mod(&b), 1);
    }

    /// A 2-proc schedule from proc 0's and proc 1's ghost source lists,
    /// built without charging (region tests care about bookkeeping only).
    fn sched2(p0: Vec<(u32, u32)>, p1: Vec<(u32, u32)>) -> CommSchedule {
        let rows = [p0, p1];
        let mut off = vec![0u32];
        let mut owner = Vec::new();
        let mut src = Vec::new();
        for row in &rows {
            for &(o, s) in row {
                owner.push(o);
                src.push(s);
            }
            off.push(owner.len() as u32);
        }
        CommSchedule::from_csr_parts_local(2, off, owner, src)
    }

    #[test]
    fn region_bind_appends_chunks_and_diffs_against_residents() {
        let mut reg = ReuseRegistry::new();
        let sig = block_dad(64).signature();
        let a = sched2(vec![(1, 3), (1, 5)], vec![(0, 0)]);
        let b = sched2(vec![(1, 5), (1, 7)], vec![(0, 0), (0, 2)]);
        // First bind: everything is missing; identity binding at base 0.
        let ra = reg.region_bind(sig, 0, &a);
        assert_eq!(ra.chunk, 0);
        assert!(ra.deps.is_empty());
        assert_eq!(ra.base, vec![0, 0]);
        assert_eq!(ra.diff, a);
        assert_eq!(ra.slot_map, vec![vec![0, 1], vec![0]]);
        // Second bind: only (1,7) on proc 0 and (0,2) on proc 1 are new;
        // the shared slots come from chunk 0.
        let rb = reg.region_bind(sig, 1, &b);
        assert_eq!(rb.chunk, 1);
        assert_eq!(rb.deps, vec![0]);
        assert_eq!(rb.base, vec![2, 1]);
        assert_eq!(rb.diff.total_ghosts(), 2);
        assert_eq!(rb.diff.ghost_sources(0).collect::<Vec<_>>(), vec![(1, 7)]);
        assert_eq!(rb.diff.ghost_sources(1).collect::<Vec<_>>(), vec![(0, 2)]);
        // b's slot (1,5) resolves to chunk 0's slot 1; (1,7) to the appended
        // slot 2.
        assert_eq!(rb.slot_map[0], vec![1, 2]);
        assert_eq!(rb.slot_map[1], vec![0, 1]);
        let region = reg.region(sig).unwrap();
        assert_eq!(region.nchunks(), 2);
        assert_eq!(region.size(0), 3);
        assert_eq!(region.size(1), 2);
        assert!(region.chunk_is_live(0) && region.chunk_is_live(1));
        // A fully covered third loop appends an empty chunk and fetches
        // nothing.
        let rc = reg.region_bind(sig, 2, &sched2(vec![(1, 3)], vec![]));
        assert_eq!(rc.diff.total_ghosts(), 0);
        assert_eq!(rc.deps, vec![0]);
        assert_eq!(reg.region(sig).unwrap().size(0), 3, "nothing appended");
    }

    #[test]
    fn region_rebind_retires_the_loops_previous_chunk() {
        // An inspector re-run (indirection write, REDISTRIBUTE of the
        // pattern, ...) re-binds the loop: the old chunk must be retired so
        // no binding points at it, while its slots stay put — earlier
        // offsets into the region remain valid.
        let mut reg = ReuseRegistry::new();
        let sig = block_dad(64).signature();
        let _ = reg.region_bind(sig, 7, &sched2(vec![(1, 3)], vec![]));
        let r2 = reg.region_bind(sig, 7, &sched2(vec![(1, 4)], vec![]));
        let region = reg.region(sig).unwrap();
        assert!(!region.chunk_is_live(0), "re-bound loop retires its chunk");
        assert!(region.chunk_is_live(1));
        assert_eq!(r2.chunk, 1);
        assert_eq!(r2.base, vec![1, 0], "dead chunk keeps its slots");
        assert_eq!(region.size(0), 2);
        // A different signature gets an independent region.
        let other = block_dad(128).signature();
        assert!(reg.region(other).is_none());
    }

    #[test]
    fn array_stamps_are_per_name_not_per_dad() {
        let mut reg = ReuseRegistry::new();
        assert_eq!(reg.array_stamp("x"), 0);
        reg.note_array_write("x");
        let x1 = reg.array_stamp("x");
        assert!(x1 > 0);
        assert_eq!(reg.array_stamp("y"), 0, "y's ghosts stay fresh");
        reg.note_array_write("y");
        reg.note_array_write("x");
        assert!(reg.array_stamp("x") > reg.array_stamp("y"));
        assert!(reg.array_stamp("x") > x1);
    }

    #[test]
    fn check_on_machine_charges_an_allreduce() {
        let mut reg = ReuseRegistry::new();
        let data = block_dad(100);
        let ind = block_dad(300);
        reg.save_inspector(LoopId::new("L"), vec![data.clone()], vec![ind.clone()]);
        let mut m = Machine::new(MachineConfig::unit(4));
        let d = reg.check_on_machine(&mut m, "L", &LoopId::new("L"), &[data], &[ind]);
        assert!(d.can_reuse());
        assert!(m.stats().grand_totals().messages > 0);
        assert!(m.elapsed().max_seconds() > 0.0);
    }
}
