//! # chaos-runtime — a CHAOS/PARTI-style runtime library
//!
//! This crate is the reproduction of the paper's primary contribution: the
//! CHAOS runtime support (a superset of PARTI) plus the two new mechanisms
//! the SC'93 paper adds on top of it:
//!
//! 1. **the mapper coupler** — runtime procedures that build a GeoCoL
//!    structure from program arrays, invoke a user-chosen partitioner,
//!    produce an irregular distribution and remap distributed arrays and
//!    loop iterations accordingly (Section 4 / Figure 2 phases A–C), and
//! 2. **conservative inspector/schedule reuse** — data access descriptors
//!    (DADs), the global modification stamp `nmod`, `last_mod` tracking and
//!    the per-loop validity check (Section 3).
//!
//! Around those sit the classical PARTI pieces the paper builds on
//! (Figure 2 phases D–E): distributed arrays with block / cyclic / irregular
//! distributions, a translation table for irregular distributions, the
//! inspector (`localize`) that deduplicates off-processor references, builds
//! communication schedules, allocates ghost buffers and translates global
//! indices to local ones, and the executor primitives (`gather`,
//! `scatter_add`) that carry the actual communication of each iteration.
//!
//! Everything runs on the simulated distributed-memory machine from
//! [`chaos_dmsim`]: data movement is exact, costs are charged to per-processor
//! virtual clocks, and the benchmark harness reads those clocks to regenerate
//! the paper's tables.
//!
//! The primitives execute behind [`chaos_dmsim::Backend`]: each is a driver
//! handing rank-local kernels to an SPMD engine, so any call site can pass
//! either `&mut Machine` (sequential, the deterministic oracle) or a
//! `&mut ThreadedBackend` (one OS thread per virtual processor) and get
//! byte-identical values, ghost buffers, clocks and statistics.
//!
//! ## Module map
//!
//! | module | paper concept |
//! |--------|---------------|
//! | [`dist`] | BLOCK / CYCLIC / irregular distributions, `DISTRIBUTE` |
//! | [`ttable`] | translation table for irregularly distributed arrays; batched (per-page) dereference |
//! | [`dad`] | data access descriptors |
//! | [`darray`] | distributed arrays (`ALIGN`ed to a distribution) |
//! | [`schedule`] | communication schedules as flat CSR arenas (gather / scatter) |
//! | [`inspector`] | inspector: localize with hash-free sort+dedup over packed keys |
//! | [`iterpart`] | loop-iteration partitioning (almost-owner-computes) |
//! | [`executor`] | executor: gather → compute → scatter-add reduction, allocation-free in steady state |
//! | [`mod@remap`] | array remapping between distributions |
//! | [`reuse`] | `nmod`, `last_mod`, per-loop inspector-reuse records |
//! | [`coupler`] | CONSTRUCT / SET ... BY PARTITIONING / REDISTRIBUTE |
//! | [`ckpt`] | modeled cost of epoch checkpoint/rollback (scan charges deducted from the lump estimate) |
//! | [`naive`] | retained nested-`Vec` reference implementation (property-test oracle) |
//!
//! ## Hot-path layout
//!
//! Schedule *use* is the cost every executor iteration pays, so
//! [`schedule::CommSchedule`] stores its ghost sources and send lists as
//! flat CSR offset arrays (struct-of-arrays payloads) exactly like the
//! original PARTI/CHAOS C runtime; [`executor::gather_into`] /
//! [`executor::scatter_op`] iterate contiguous slices, charge transfers
//! through [`chaos_dmsim::Machine::charge_p2p`] and perform **no heap
//! allocation** with reused buffers. The original nested-`Vec` formulation
//! survives in [`naive`] as the oracle the property tests compare against.
//! `ARCHITECTURE.md` § "The inspector → executor CSR data flow" draws the
//! whole pipeline.

#![warn(missing_docs)]

pub mod ckpt;
pub mod coupler;
pub mod dad;
pub mod darray;
pub mod dist;
pub mod executor;
pub mod inspector;
pub mod iterpart;
pub mod naive;
pub mod remap;
pub mod reuse;
pub mod schedule;
pub mod ttable;

pub use ckpt::{charge_checkpoint, checkpoint_cost_estimate};
pub use coupler::{GeoColSpec, MapperCoupler, PartitionOutcome};
pub use dad::{Dad, DadSignature};
pub use darray::DistArray;
pub use dist::Distribution;
pub use executor::{
    charge_local_compute, gather, gather_inline, gather_inline_mapped, gather_inline_offset,
    gather_into, gather_rows, gather_rows_mapped, gather_rows_offset, scatter_add,
    scatter_combine_rows, scatter_op, scatter_pack_kernel, scatter_reduce, scatter_reduce_rows,
    ScatterKind,
};
pub use inspector::{AccessPattern, Inspector, InspectorResult, LocalRef, LocalizeScratch};
pub use iterpart::{IterPartitionPolicy, IterationPartition};
pub use remap::remap;
pub use reuse::{GhostRegion, LoopId, LoopRecord, RegionBinding, ReuseDecision, ReuseRegistry};
pub use schedule::{charge_merged_request_exchange, CommSchedule, SendRef};
pub use ttable::{TTablePolicy, TranslationTable};

/// Convenient prelude for downstream crates and examples.
pub mod prelude {
    pub use crate::coupler::{GeoColSpec, MapperCoupler};
    pub use crate::darray::DistArray;
    pub use crate::dist::Distribution;
    pub use crate::executor::{gather, scatter_add};
    pub use crate::inspector::{AccessPattern, Inspector};
    pub use crate::iterpart::{IterPartitionPolicy, IterationPartition};
    pub use crate::remap::remap;
    pub use crate::reuse::{LoopId, ReuseRegistry};
    pub use chaos_dmsim::{Backend, Machine, MachineConfig, PooledBackend, ThreadedBackend};
    pub use chaos_geocol::{GeoColBuilder, Partitioner};
}
