//! Executor primitives: the communication that runs *every* loop iteration.
//!
//! PARTI's executor phase is two collective operations around the local
//! computation:
//!
//! * [`gather`] — prefetch the off-processor elements named by a
//!   [`CommSchedule`] into each processor's ghost buffer, and
//! * [`scatter_add`] / [`scatter_op`] — push ghost-buffer accumulations back
//!   to the owning processors and combine them into the owned elements
//!   (the paper's left-hand-side `REDUCE (ADD, ...)` loops).
//!
//! Both walk the schedule's flat CSR arenas (see [`crate::schedule`]): every
//! send is a pair of contiguous `&[u32]` slices, so the per-iteration inner
//! loop is a strided copy with no nested-`Vec` pointer chasing, and the
//! transfer is charged through [`Machine::charge_p2p`] without materializing
//! an exchange plan. The `*_into` variants reuse caller-owned buffers and
//! perform **zero heap allocations** in steady state (verified by the
//! counting-allocator integration test), which is what makes an inspector
//! schedule worth reusing.
//!
//! The local computation between gather and scatter belongs to the
//! application (see the workload crates); [`charge_local_compute`] lets it
//! charge its flops to the simulated machine so executor rows in the tables
//! include both communication and computation.

use crate::darray::DistArray;
use crate::schedule::CommSchedule;
use chaos_dmsim::{Machine, PhaseCharge};

pub use crate::inspector::LocalRef;

/// Gather the off-processor elements described by `schedule` from `array`
/// into per-processor ghost buffers.
///
/// Returns `ghosts[p][slot]` aligned with the schedule's ghost slots for
/// processor `p`. Allocates the buffers; iteration loops that reuse a
/// schedule should allocate once and call [`gather_into`].
pub fn gather<T: Clone + Default + Send>(
    machine: &mut Machine,
    label: &str,
    schedule: &CommSchedule,
    array: &DistArray<T>,
) -> Vec<Vec<T>> {
    let nprocs = machine.nprocs();
    assert_eq!(schedule.nprocs(), nprocs, "schedule/machine size mismatch");
    let mut ghosts: Vec<Vec<T>> = (0..nprocs)
        .map(|p| vec![T::default(); schedule.ghost_count(p)])
        .collect();
    gather_into(machine, label, schedule, array, &mut ghosts);
    ghosts
}

/// [`gather`] into caller-owned ghost buffers (`ghosts[p]` must have exactly
/// `schedule.ghost_count(p)` elements). Performs no heap allocation.
pub fn gather_into<T: Clone + Send>(
    machine: &mut Machine,
    _label: &str,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    ghosts: &mut [Vec<T>],
) {
    let nprocs = machine.nprocs();
    assert_eq!(schedule.nprocs(), nprocs, "schedule/machine size mismatch");
    assert_eq!(
        ghosts.len(),
        nprocs,
        "ghost buffers must match machine size"
    );
    for (p, ghost) in ghosts.iter().enumerate() {
        assert_eq!(
            ghost.len(),
            schedule.ghost_count(p),
            "processor {p} ghost buffer length mismatch"
        );
    }

    // Packing on the owners plus the transfers, then the phase barrier,
    // then unpacking at the requesters — the same charge order as an
    // ExchangePlan-based gather, so modeled clocks agree with the naive
    // reference bit-for-bit.
    let mut phase = PhaseCharge::new();
    for owner in 0..nprocs {
        for send in schedule.sends(owner) {
            let words = send.offsets.len();
            machine.charge_memory(owner, words as f64);
            machine.charge_p2p(&mut phase, owner, send.to as usize, words);
        }
    }
    machine.end_phase_quiet(phase);

    for owner in 0..nprocs {
        let local = array.local(owner);
        for send in schedule.sends(owner) {
            let dest = send.to as usize;
            machine.charge_memory(dest, send.offsets.len() as f64);
            let ghost = ghosts[dest].as_mut_slice();
            for (&off, &slot) in send.offsets.iter().zip(send.ghost_slots) {
                ghost[slot as usize] = local[off as usize].clone();
            }
        }
    }
}

/// Scatter ghost-buffer contributions back to their owners, adding them into
/// the owned elements (`y(owner) += contribution`).
pub fn scatter_add(
    machine: &mut Machine,
    label: &str,
    schedule: &CommSchedule,
    array: &mut DistArray<f64>,
    contributions: &[Vec<f64>],
) {
    scatter_op(machine, label, schedule, array, contributions, |acc, c| {
        *acc += c
    });
}

/// Scatter ghost-buffer contributions back to their owners combining with an
/// arbitrary reduction operator (`add`, `max`, `min`, ... — the paper allows
/// any associative reduction on the left-hand side). Performs no heap
/// allocation.
pub fn scatter_op<T, F>(
    machine: &mut Machine,
    _label: &str,
    schedule: &CommSchedule,
    array: &mut DistArray<T>,
    contributions: &[Vec<T>],
    mut combine: F,
) where
    T: Clone + Send,
    F: FnMut(&mut T, T),
{
    let nprocs = machine.nprocs();
    assert_eq!(schedule.nprocs(), nprocs, "schedule/machine size mismatch");
    assert_eq!(
        contributions.len(),
        nprocs,
        "contributions must have one ghost buffer per processor"
    );
    for (p, contrib) in contributions.iter().enumerate() {
        assert_eq!(
            contrib.len(),
            schedule.ghost_count(p),
            "processor {p} ghost contribution length mismatch"
        );
    }

    // Reverse traffic: each requester sends its ghost slots back to the
    // owner, which combines them into its local elements. With the CSR
    // layout the owner's local segment and the requester's contribution
    // buffer are disjoint borrows, so the combine happens in the same pass
    // with no intermediate update list.
    // Pack charges and transfers first, then the phase barrier, then the
    // owner-side combine — the same charge order as the plan-based scatter.
    let mut phase = PhaseCharge::new();
    for owner in 0..nprocs {
        for send in schedule.sends(owner) {
            let requester = send.to as usize;
            let words = send.ghost_slots.len();
            machine.charge_memory(requester, words as f64);
            machine.charge_p2p(&mut phase, requester, owner, words);
        }
    }
    machine.end_phase_quiet(phase);

    for owner in 0..nprocs {
        let mut updates = 0usize;
        let local = array.local_mut(owner);
        for send in schedule.sends(owner) {
            let from = &contributions[send.to as usize];
            updates += send.ghost_slots.len();
            for (&off, &slot) in send.offsets.iter().zip(send.ghost_slots) {
                combine(&mut local[off as usize], from[slot as usize].clone());
            }
        }
        machine.charge_compute(owner, updates as f64);
    }
}

/// Charge `ops_per_proc[p]` computation units to each processor — the local
/// arithmetic of the executor's compute section.
pub fn charge_local_compute(machine: &mut Machine, ops_per_proc: &[f64]) {
    for (p, &ops) in ops_per_proc.iter().enumerate() {
        machine.charge_compute(p, ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::inspector::{AccessPattern, Inspector};
    use chaos_dmsim::MachineConfig;

    /// Set up: x = [0,10,20,...,70] block-distributed over 2 procs; proc 0
    /// references globals [4, 5], proc 1 references [0].
    fn setup() -> (Machine, DistArray<f64>, crate::inspector::InspectorResult) {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let x = DistArray::from_global(
            "x",
            dist.clone(),
            &(0..8).map(|i| (i * 10) as f64).collect::<Vec<_>>(),
        );
        let pattern = AccessPattern {
            refs: vec![vec![4, 5], vec![0]],
        };
        let r = Inspector.localize(&mut m, "L", &dist, &pattern);
        (m, x, r)
    }

    #[test]
    fn gather_fills_ghost_buffers() {
        let (mut m, x, r) = setup();
        let ghosts = gather(&mut m, "L", &r.schedule, &x);
        // Proc 0's ghosts are globals 4 and 5 (owner-local offsets 0 and 1).
        assert_eq!(ghosts[0], vec![40.0, 50.0]);
        // Proc 1's ghost is global 0.
        assert_eq!(ghosts[1], vec![0.0]);
        // The localized refs resolve to the right values.
        let v: Vec<f64> = r.localized[0]
            .iter()
            .map(|lr| *lr.resolve(x.local(0), &ghosts[0]))
            .collect();
        assert_eq!(v, vec![40.0, 50.0]);
    }

    #[test]
    fn gather_into_reuses_buffers() {
        let (mut m, x, r) = setup();
        let mut ghosts: Vec<Vec<f64>> = (0..2)
            .map(|p| vec![0.0; r.schedule.ghost_count(p)])
            .collect();
        gather_into(&mut m, "L", &r.schedule, &x, &mut ghosts);
        assert_eq!(ghosts[0], vec![40.0, 50.0]);
        assert_eq!(ghosts[1], vec![0.0]);
        // Second gather overwrites in place.
        ghosts[0][0] = -1.0;
        gather_into(&mut m, "L", &r.schedule, &x, &mut ghosts);
        assert_eq!(ghosts[0], vec![40.0, 50.0]);
    }

    #[test]
    fn gather_charges_messages() {
        let (mut m, x, r) = setup();
        let before = m.stats().grand_totals().messages;
        let _ = gather(&mut m, "L", &r.schedule, &x);
        assert_eq!(m.stats().grand_totals().messages - before, 2);
    }

    #[test]
    fn scatter_add_accumulates_at_owners() {
        let (mut m, _x, r) = setup();
        let mut y = DistArray::from_global("y", Distribution::block(8, 2), &[1.0; 8]);
        // Proc 0 contributes 5.0 to each of its ghost slots (globals 4, 5);
        // proc 1 contributes 7.0 to its ghost (global 0).
        let contributions = vec![vec![5.0, 5.0], vec![7.0]];
        scatter_add(&mut m, "L", &r.schedule, &mut y, &contributions);
        let g = y.to_global();
        assert_eq!(g[0], 8.0);
        assert_eq!(g[4], 6.0);
        assert_eq!(g[5], 6.0);
        assert_eq!(g[1], 1.0, "untouched elements keep their value");
    }

    #[test]
    fn scatter_op_supports_max() {
        let (mut m, _x, r) = setup();
        let mut y = DistArray::from_global("y", Distribution::block(8, 2), &[3.0; 8]);
        let contributions = vec![vec![10.0, 1.0], vec![2.0]];
        scatter_op(&mut m, "L", &r.schedule, &mut y, &contributions, |a, b| {
            *a = f64::max(*a, b)
        });
        let g = y.to_global();
        assert_eq!(g[4], 10.0);
        assert_eq!(g[5], 3.0);
        assert_eq!(g[0], 3.0);
    }

    #[test]
    fn gather_scatter_roundtrip_conserves_sum() {
        // Property: scatter_add of gathered values doubles exactly the
        // referenced elements.
        let (mut m, x, r) = setup();
        let ghosts = gather(&mut m, "L", &r.schedule, &x);
        let mut y = x.clone();
        scatter_add(&mut m, "L", &r.schedule, &mut y, &ghosts);
        let xg = x.to_global();
        let yg = y.to_global();
        for g in 0..8 {
            let referenced_off_proc = [0usize, 4, 5].contains(&g);
            if referenced_off_proc {
                assert_eq!(yg[g], 2.0 * xg[g]);
            } else {
                assert_eq!(yg[g], xg[g]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "ghost contribution length mismatch")]
    fn scatter_rejects_wrong_ghost_shape() {
        let (mut m, _x, r) = setup();
        let mut y = DistArray::from_global("y", Distribution::block(8, 2), &[0.0; 8]);
        scatter_add(&mut m, "L", &r.schedule, &mut y, &[vec![1.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "ghost buffer length mismatch")]
    fn gather_into_rejects_wrong_buffer_shape() {
        let (mut m, x, r) = setup();
        let mut ghosts = vec![vec![0.0; 9], vec![0.0; 9]];
        gather_into(&mut m, "L", &r.schedule, &x, &mut ghosts);
    }

    #[test]
    fn charge_local_compute_advances_clocks() {
        let mut m = Machine::new(MachineConfig::unit(2));
        charge_local_compute(&mut m, &[10.0, 20.0]);
        let e = m.elapsed();
        assert_eq!(e.compute[0], 10.0);
        assert_eq!(e.compute[1], 20.0);
    }
}
